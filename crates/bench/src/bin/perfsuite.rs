//! Wall-clock perfsuite for the deterministic parallel execution layer
//! and the memory-locality work.
//!
//! Times four kernels — SpMV on the normalized Laplacian, a batch of
//! PPR push runs, the Lanczos Fiedler solve, and a quick NCP sweep —
//! on the Figure-1 social surrogate at 1/2/4/8 worker threads, checks
//! that every kernel's output is bit-identical across thread counts,
//! and writes the timings to `BENCH_parallel.json` in the working
//! directory (repo root, when run from there). A second, single-thread
//! section measures the locality layer — CSR bandwidth under the RCM
//! and degree orderings, reordered-vs-original SpMV and NCP timings,
//! and steady-state heap-allocation counts of `ppr_push` under the
//! process-wide counting allocator — and writes `BENCH_locality.json`.
//! Both files are re-read and validated before the process exits, so a
//! committed artifact always parses.
//!
//! ```text
//! cargo run --release -p acir-bench --bin perfsuite [-- --quick] [--seed N] [--threads N] [--reorder M]
//! ```
//!
//! `--threads N` caps the sweep at N (the env override applies to every
//! other binary; here the sweep *is* the thread axis, so the flag
//! truncates it instead). `--reorder rcm|degree` relabels the surrogate
//! before the parallel sweep (the locality section always compares
//! orderings regardless). Speedups are relative to the 1-thread row of
//! the same kernel; `host_cpus` records how much hardware parallelism
//! the host actually had, since speedup on a 1-CPU host is bounded by 1.

use std::collections::BTreeMap;
use std::time::Instant;

use acir::prelude::*;
use acir_bench::BinArgs;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::traversal::largest_component;
use acir_graph::{bandwidth_stats, Permutation};
use acir_local::{ppr_push, ppr_push_ctx, ppr_push_ws, PushResult, PushWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

/// Count every heap allocation the suite makes, so the locality section
/// can report allocs-per-call for the steady-state diffusion kernels.
#[global_allocator]
static ALLOC: acir_mem::CountingAlloc = acir_mem::CountingAlloc;

/// Thread counts the suite sweeps, ascending (validated on re-read).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Where the parallel-sweep artifact lands, relative to the working
/// directory.
const OUT_FILE: &str = "BENCH_parallel.json";

/// Where the locality artifact lands.
const LOCALITY_FILE: &str = "BENCH_locality.json";

struct KernelTiming {
    kernel: &'static str,
    /// `(threads, best-of-reps seconds)` in sweep order.
    rows: Vec<(usize, f64)>,
}

fn main() {
    let args = BinArgs::parse();
    let sweep: Vec<usize> = match args.threads {
        Some(cap) => THREAD_SWEEP.iter().copied().filter(|&t| t <= cap).collect(),
        None => THREAD_SWEEP.to_vec(),
    };
    assert!(
        !sweep.is_empty(),
        "--threads below 1 leaves nothing to sweep"
    );

    let mut rng = StdRng::seed_from_u64(args.seed);
    let params = if args.quick {
        SocialNetworkParams {
            core_nodes: 800,
            core_attach: 3,
            communities: 16,
            community_size_range: (6, 150),
            whiskers: 50,
            whisker_max_len: 8,
            ..Default::default()
        }
    } else {
        // Mid-size cut of the fig1 surrogate: big enough that every
        // kernel takes its parallel path, small enough that the full
        // 4-count sweep of the Lanczos solve stays in CI-friendly time.
        SocialNetworkParams {
            core_nodes: 3000,
            core_attach: 4,
            communities: 40,
            community_size_range: (8, 600),
            whiskers: 150,
            whisker_max_len: 12,
            ..Default::default()
        }
    };
    let pc = social_network(&mut rng, &params).expect("surrogate generation failed");
    let (g, _) = largest_component(&pc.graph);
    let g = match args.reorder.permutation(&g) {
        Some(p) => {
            let rg = g.permute(&p).expect("reorder permutation failed");
            println!(
                "perfsuite: --reorder {} shrank CSR bandwidth {} -> {}",
                args.reorder,
                bandwidth_stats(&g).max,
                bandwidth_stats(&rg).max,
            );
            rg
        }
        None => g,
    };
    let reps = if args.quick { 3 } else { 5 };
    println!(
        "perfsuite: fig1 surrogate LCC with {} nodes / {} edges; sweeping {:?} threads, best of {} reps",
        g.n(),
        g.m(),
        sweep,
        reps,
    );

    let timings = vec![
        bench_spmv(&g, &sweep, if args.quick { 20 } else { 50 }, reps),
        bench_ppr_batch(&g, &sweep, if args.quick { 8 } else { 32 }, reps),
        bench_fiedler(&g, &sweep, reps.min(2)),
        bench_ncp_quick(&g, &sweep, args.seed, reps),
    ];

    for t in &timings {
        let base = t.rows[0].1;
        for &(threads, secs) in &t.rows {
            println!(
                "  {:<14} threads={threads}  {:>9.3} ms  speedup {:.2}x",
                t.kernel,
                secs * 1e3,
                base / secs
            );
        }
    }

    let doc = render(&args, &g, &sweep, &timings);
    let text = serde_json::to_string_pretty(&doc);
    std::fs::write(OUT_FILE, format!("{text}\n")).expect("writing BENCH_parallel.json failed");

    validate(&std::fs::read_to_string(OUT_FILE).expect("re-reading artifact failed"));
    println!("wrote {OUT_FILE} (validated: parses, thread counts monotone)");

    let locality = bench_locality(&g, &args, reps);
    let text = serde_json::to_string_pretty(&locality);
    std::fs::write(LOCALITY_FILE, format!("{text}\n")).expect("writing BENCH_locality.json failed");
    validate_locality(&std::fs::read_to_string(LOCALITY_FILE).expect("re-reading artifact failed"));
    println!("wrote {LOCALITY_FILE} (validated: parses, zero steady-state allocs)");
}

/// Run `f` `reps` times under each thread count in `sweep`, returning
/// the best wall time per count; `check` receives every result and the
/// 1-thread reference so kernels prove bit-identity while being timed.
fn sweep_kernel<T>(
    kernel: &'static str,
    sweep: &[usize],
    reps: usize,
    mut f: impl FnMut() -> T,
    check: impl Fn(&T, &T),
) -> KernelTiming {
    let mut rows = Vec::new();
    let mut reference: Option<T> = None;
    for &threads in sweep {
        std::env::set_var(THREADS_ENV, threads.to_string());
        let mut best = f64::INFINITY; // first call doubles as warmup
        let mut last = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = f();
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(out);
        }
        let out = last.expect("reps >= 1");
        match &reference {
            None => reference = Some(out),
            Some(r) => check(r, &out),
        }
        rows.push((threads, best));
    }
    std::env::remove_var(THREADS_ENV);
    KernelTiming { kernel, rows }
}

fn bench_spmv(g: &Graph, sweep: &[usize], iters: usize, reps: usize) -> KernelTiming {
    let l = normalized_laplacian(g);
    let x: Vec<f64> = (0..l.ncols())
        .map(|i| 1.0 + (i % 17) as f64 / 17.0)
        .collect();
    sweep_kernel(
        "spmv",
        sweep,
        reps,
        || {
            let mut y = vec![0.0; l.nrows()];
            for _ in 0..iters {
                l.matvec(&x, &mut y);
            }
            y
        },
        |a, b| assert_eq!(a, b, "spmv must be bit-identical across thread counts"),
    )
}

fn bench_ppr_batch(g: &Graph, sweep: &[usize], batch: usize, reps: usize) -> KernelTiming {
    let seed_sets: Vec<Vec<NodeId>> = (0..batch)
        .map(|i| vec![(i * g.n() / batch) as NodeId])
        .collect();
    sweep_kernel(
        "ppr_batch",
        sweep,
        reps,
        || ppr_push_batch(g, &seed_sets, 0.05, 1e-4).expect("ppr_push_batch failed"),
        |a, b| {
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b) {
                assert_eq!(
                    ra.vector, rb.vector,
                    "ppr_batch must be bit-identical across thread counts"
                );
            }
        },
    )
}

fn bench_fiedler(g: &Graph, sweep: &[usize], reps: usize) -> KernelTiming {
    sweep_kernel(
        "lanczos_fiedler",
        sweep,
        reps,
        || fiedler_vector(g).expect("fiedler_vector failed"),
        |a, b| {
            assert_eq!(
                a.vector, b.vector,
                "fiedler must be bit-identical across thread counts"
            );
            assert_eq!(a.lambda2.to_bits(), b.lambda2.to_bits());
        },
    )
}

fn bench_ncp_quick(g: &Graph, sweep: &[usize], seed: u64, reps: usize) -> KernelTiming {
    let opts = NcpOptions {
        min_size: 2,
        max_size: 400,
        seeds: 12,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-3],
        rng_seed: seed ^ 0x5eed,
        ..Default::default()
    };
    sweep_kernel(
        "ncp_quick",
        sweep,
        reps,
        || ncp_local_spectral(g, &opts).expect("ncp_local_spectral failed"),
        |a, b| {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b) {
                assert_eq!(pa.size, pb.size);
                assert_eq!(
                    pa.conductance.to_bits(),
                    pb.conductance.to_bits(),
                    "ncp must be bit-identical across thread counts"
                );
            }
        },
    )
}

fn render(args: &BinArgs, g: &Graph, sweep: &[usize], timings: &[KernelTiming]) -> Value {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-parallel-v1"));
    root.insert("host_cpus".into(), Value::from(host_cpus));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    let mut graph = BTreeMap::new();
    graph.insert("nodes".into(), Value::from(g.n()));
    graph.insert("edges".into(), Value::from(g.m()));
    root.insert("graph".into(), Value::Object(graph));
    root.insert(
        "thread_counts".into(),
        Value::Array(sweep.iter().map(|&t| Value::from(t)).collect()),
    );
    let kernels = timings
        .iter()
        .map(|t| {
            let base = t.rows[0].1;
            let mut k = BTreeMap::new();
            k.insert("kernel".into(), Value::from(t.kernel));
            k.insert(
                "results".into(),
                Value::Array(
                    t.rows
                        .iter()
                        .map(|&(threads, secs)| {
                            let mut r = BTreeMap::new();
                            r.insert("threads".into(), Value::from(threads));
                            r.insert("secs".into(), Value::from(secs));
                            r.insert("speedup".into(), Value::from(base / secs));
                            Value::Object(r)
                        })
                        .collect(),
                ),
            );
            Value::Object(k)
        })
        .collect();
    root.insert("kernels".into(), Value::Array(kernels));
    Value::Object(root)
}

/// Best-of-`reps` wall time of `f` (first call doubles as warmup).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Per-call allocator traffic and wall time of `f` over `calls`
/// steady-state invocations (three warmup calls first).
fn steady_state_allocs<T>(calls: usize, mut f: impl FnMut() -> T) -> (f64, f64, f64) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let before = acir_mem::snapshot();
    let t0 = Instant::now();
    for _ in 0..calls {
        std::hint::black_box(f());
    }
    let secs = t0.elapsed().as_secs_f64();
    let delta = acir_mem::snapshot().since(&before);
    let n = calls as f64;
    (
        delta.heap_events() as f64 / n,
        delta.bytes as f64 / n,
        secs / n,
    )
}

/// The single-thread locality section: CSR bandwidth under each
/// ordering, reordered-vs-original SpMV and NCP wall times, and
/// steady-state allocation counts of the PPR push kernel.
fn bench_locality(g: &Graph, args: &BinArgs, reps: usize) -> Value {
    std::env::set_var(THREADS_ENV, "1");
    let bw_orig = bandwidth_stats(g);
    let rcm = Permutation::rcm(g);
    let g_rcm = g.permute(&rcm).expect("RCM permute failed");
    let bw_rcm = bandwidth_stats(&g_rcm);
    let deg = Permutation::degree_descending(g);
    let g_deg = g.permute(&deg).expect("degree permute failed");
    let bw_deg = bandwidth_stats(&g_deg);
    println!(
        "locality: CSR bandwidth max/mean  original {}/{:.1}  rcm {}/{:.1}  degree {}/{:.1}",
        bw_orig.max, bw_orig.mean, bw_rcm.max, bw_rcm.mean, bw_deg.max, bw_deg.mean,
    );

    // SpMV: same matvec count as the parallel sweep, original vs RCM.
    let iters = if args.quick { 20 } else { 50 };
    let mut kernels: Vec<(&str, &str, f64)> = Vec::new();
    for (variant, graph) in [("original", g), ("rcm", &g_rcm)] {
        let l = normalized_laplacian(graph);
        let x: Vec<f64> = (0..l.ncols())
            .map(|i| 1.0 + (i % 17) as f64 / 17.0)
            .collect();
        let mut y = vec![0.0; l.nrows()];
        let secs = best_of(reps, || {
            for _ in 0..iters {
                l.matvec(&x, &mut y);
            }
        });
        kernels.push(("spmv", variant, secs));
    }

    // Steady-state PPR push: the pooled public entry point and the
    // caller-owned-workspace variant, with allocator traffic per call.
    let seeds = [(g.n() / 2) as NodeId];
    let calls = if args.quick { 50 } else { 200 };
    let (pooled_allocs, pooled_bytes, pooled_secs) = steady_state_allocs(calls, || {
        ppr_push(g, &seeds, 0.05, 1e-4).expect("ppr_push failed")
    });
    let mut ws = PushWorkspace::new();
    let mut out = PushResult::empty();
    let (ws_allocs, ws_bytes, ws_secs) = steady_state_allocs(calls, || {
        ppr_push_ws(g, &seeds, 0.05, 1e-4, &mut ws, &mut out).expect("ppr_push_ws failed")
    });
    // The unified-core seam: an inert KernelCtx constructed directly at
    // the call site must cost the same as the plain pooled entry point.
    let (ctx_allocs, ctx_bytes, ctx_secs) = steady_state_allocs(calls, || {
        let mut ctx = KernelCtx::new();
        match ppr_push_ctx(g, &seeds, 0.05, 1e-4, &mut ctx).expect("ppr_push_ctx failed") {
            SolverOutcome::Converged { value, .. } => value,
            _ => unreachable!("inert context"),
        }
    });
    kernels.push(("ppr_push_steady", "pooled", pooled_secs));
    kernels.push(("ppr_push_steady", "workspace", ws_secs));
    kernels.push(("ppr_push_steady", "ctx", ctx_secs));
    println!(
        "locality: ppr_push steady state  pooled {pooled_allocs:.2} allocs/call ({pooled_bytes:.0} B)  workspace {ws_allocs:.2} allocs/call ({ws_bytes:.0} B)  ctx {ctx_allocs:.2} allocs/call ({ctx_bytes:.0} B)",
    );

    // NCP quick sweep, original vs RCM ordering (timing only: the
    // reordered run visits seeds under new labels, so outputs differ by
    // the relabeling while total work stays comparable).
    let opts = NcpOptions {
        min_size: 2,
        max_size: 400,
        seeds: 12,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-3],
        rng_seed: args.seed ^ 0x5eed,
        ..Default::default()
    };
    for (variant, graph) in [("original", g), ("rcm", &g_rcm)] {
        let secs = best_of(reps.min(2), || {
            ncp_local_spectral(graph, &opts).expect("ncp_local_spectral failed")
        });
        kernels.push(("ncp_quick", variant, secs));
    }
    std::env::remove_var(THREADS_ENV);

    for &(kernel, variant, secs) in &kernels {
        println!("  {kernel:<16} {variant:<9} {:>9.3} ms", secs * 1e3);
    }

    let bw = |s: acir_graph::BandwidthStats| {
        let mut m = BTreeMap::new();
        m.insert("max".into(), Value::from(s.max));
        m.insert("mean".into(), Value::from(s.mean));
        Value::Object(m)
    };
    let alloc_row = |allocs: f64, bytes: f64| {
        let mut m = BTreeMap::new();
        m.insert("allocs_per_call".into(), Value::from(allocs));
        m.insert("bytes_per_call".into(), Value::from(bytes));
        Value::Object(m)
    };
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-locality-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("reorder".into(), Value::from(args.reorder.to_string()));
    let mut graph = BTreeMap::new();
    graph.insert("nodes".into(), Value::from(g.n()));
    graph.insert("edges".into(), Value::from(g.m()));
    root.insert("graph".into(), Value::Object(graph));
    let mut bws = BTreeMap::new();
    bws.insert("original".into(), bw(bw_orig));
    bws.insert("rcm".into(), bw(bw_rcm));
    bws.insert("degree".into(), bw(bw_deg));
    root.insert("bandwidth".into(), Value::Object(bws));
    root.insert(
        "kernels".into(),
        Value::Array(
            kernels
                .iter()
                .map(|&(kernel, variant, secs)| {
                    let mut r = BTreeMap::new();
                    r.insert("kernel".into(), Value::from(kernel));
                    r.insert("variant".into(), Value::from(variant));
                    r.insert("secs".into(), Value::from(secs));
                    Value::Object(r)
                })
                .collect(),
        ),
    );
    let mut alloc = BTreeMap::new();
    alloc.insert("pooled".into(), alloc_row(pooled_allocs, pooled_bytes));
    alloc.insert("workspace".into(), alloc_row(ws_allocs, ws_bytes));
    root.insert("ppr_alloc".into(), Value::Object(alloc));
    Value::Object(root)
}

/// CI-grade checks on the locality artifact: it parses, names the
/// expected schema, records all three orderings with finite bandwidth,
/// has positive timings, and — the regression gate — the caller-owned
/// workspace path of `ppr_push` performed zero steady-state heap
/// allocations.
fn validate_locality(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_locality.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-locality-v1"),
        "schema marker missing"
    );
    let bws = doc
        .get("bandwidth")
        .and_then(Value::as_object)
        .expect("bandwidth object missing");
    for key in ["original", "rcm", "degree"] {
        let b = bws.get(key).and_then(Value::as_object).expect(key);
        assert!(b.get("max").and_then(Value::as_u64).is_some(), "{key}.max");
        assert!(
            b.get("mean").and_then(Value::as_f64).unwrap_or(-1.0) >= 0.0,
            "{key}.mean"
        );
    }
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_array)
        .expect("kernels array missing");
    assert!(!kernels.is_empty(), "no locality kernels recorded");
    for k in kernels {
        let secs = k.get("secs").and_then(Value::as_f64).expect("secs");
        assert!(secs > 0.0, "non-positive locality timing");
    }
    let ws = doc
        .get("ppr_alloc")
        .and_then(|a| a.get("workspace"))
        .and_then(Value::as_object)
        .expect("ppr_alloc.workspace missing");
    assert_eq!(
        ws.get("allocs_per_call").and_then(Value::as_f64),
        Some(0.0),
        "steady-state ppr_push_ws must not allocate"
    );
}

/// The same checks the CI smoke runs: the artifact parses, names the
/// expected schema, and every kernel's thread counts ascend strictly
/// with positive timings.
fn validate(text: &str) {
    let doc = serde_json::from_str(text).expect("BENCH_parallel.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-parallel-v1"),
        "schema marker missing"
    );
    assert!(doc.get("host_cpus").and_then(Value::as_u64).unwrap_or(0) >= 1);
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_array)
        .expect("kernels array missing");
    assert!(!kernels.is_empty(), "no kernels recorded");
    for k in kernels {
        let name = k
            .get("kernel")
            .and_then(Value::as_str)
            .expect("kernel name");
        let results = k
            .get("results")
            .and_then(Value::as_array)
            .expect("results array");
        assert!(!results.is_empty(), "{name}: empty results");
        let mut prev = 0u64;
        for r in results {
            let threads = r.get("threads").and_then(Value::as_u64).expect("threads");
            let secs = r.get("secs").and_then(Value::as_f64).expect("secs");
            assert!(
                threads > prev,
                "{name}: thread counts must be strictly increasing"
            );
            assert!(secs > 0.0, "{name}: non-positive timing");
            prev = threads;
        }
    }
}
