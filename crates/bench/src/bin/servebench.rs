//! Chaos load generator for the `acir-serve` query engine.
//!
//! Drives the engine with open-loop arrivals (inter-arrival gaps do not
//! wait for responses — the configuration under which overload and
//! admission control are actually observable) through a fixed set of
//! fault schedules: a clean baseline, worker panics, NaN injection,
//! budget starvation, a deadline storm, and a delta storm (streaming
//! edge deltas plus periodic relabeling compactions published while
//! requests are in flight). For every scenario it
//! checks the serving invariant — *every admitted request receives
//! exactly one certified response, and the process never panics* — and
//! records latency percentiles plus per-rung degradation counts to
//! `BENCH_serve.json`. The artifact is re-read and validated before the
//! process exits, so a committed file always parses.
//!
//! ```text
//! cargo run --release -p acir-bench --bin servebench [-- --quick] [--seed N] [--threads N]
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use acir::runtime::Backoff;
use acir::serve::{Admission, ChaosConfig, Engine, EngineConfig, Query, ResponseKind};
use acir_bench::BinArgs;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::snapshot::CompactionOrder;
use acir_graph::traversal::largest_component;
use acir_graph::{EdgeOp, Graph, NodeId};
use acir_serve::chaos::open_loop_gaps_us;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

/// Where the serving artifact lands, relative to the working directory.
const OUT_FILE: &str = "BENCH_serve.json";

/// One committed fault schedule the harness drives the engine through.
struct Scenario {
    name: &'static str,
    cfg: EngineConfig,
    /// Every `deadline_every`-th request carries an already-expired
    /// deadline (0 disables) — the deadline-storm knob.
    deadline_every: usize,
    /// Every `delta_every`-th request is chased by a single-edge delta
    /// published while earlier requests are still queued (0 disables)
    /// — the delta-storm knob.
    delta_every: usize,
    /// Every `compact_every`-th request is chased by a relabeling
    /// compaction likewise (0 disables).
    compact_every: usize,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    // Per-slot share (capacity / queue_cap) funds the ε = 1e-3 rung
    // (~4e4 work at α = 0.1) at full accuracy; ε = 1e-4 requests land
    // one rung down as `coarsened`.
    let base = EngineConfig {
        queue_cap: 16,
        capacity: 800_000,
        refill_per_cycle: 800_000,
        min_grant: 256,
        max_attempts: 3,
        backoff: Backoff::exponential(Duration::from_micros(50), Duration::from_micros(400)),
        ..EngineConfig::default()
    };
    let rate = if quick { 0.10 } else { 0.05 };
    vec![
        Scenario {
            name: "baseline",
            cfg: base.clone(),
            deadline_every: 0,
            delta_every: 0,
            compact_every: 0,
        },
        Scenario {
            name: "worker_panics",
            cfg: EngineConfig {
                chaos: Some(ChaosConfig::with_rates(0xC405, rate, 0.0)),
                ..base.clone()
            },
            deadline_every: 0,
            delta_every: 0,
            compact_every: 0,
        },
        Scenario {
            name: "nan_injection",
            cfg: EngineConfig {
                chaos: Some(ChaosConfig::with_rates(0xC405, 0.0, rate)),
                ..base.clone()
            },
            deadline_every: 0,
            delta_every: 0,
            compact_every: 0,
        },
        // No coarsening rungs: every request attempts its requested ε
        // against a thin grant, exhausts it into a certified partial,
        // and keeps its whole grant spent. With refill far below that
        // demand the bucket drains and admission starts shedding.
        Scenario {
            name: "budget_starvation",
            cfg: EngineConfig {
                capacity: 20_000,
                refill_per_cycle: 500,
                min_grant: 1_000,
                ladder_rungs: 0,
                ..base.clone()
            },
            deadline_every: 0,
            delta_every: 0,
            compact_every: 0,
        },
        Scenario {
            name: "deadline_storm",
            cfg: base.clone(),
            deadline_every: 3,
            delta_every: 0,
            compact_every: 0,
        },
        // Writers race readers: requests still queued when a delta or a
        // relabeling compaction publishes must answer against the
        // snapshot they pinned at admission — the serving invariant is
        // unchanged, which is exactly the point.
        Scenario {
            name: "delta_storm",
            cfg: base,
            deadline_every: 0,
            delta_every: 7,
            compact_every: 31,
        },
    ]
}

struct ScenarioReport {
    name: &'static str,
    requests: usize,
    admitted: u64,
    rejected: u64,
    latencies_ms: Vec<f64>,
    degradation: BTreeMap<&'static str, u64>,
    retries: u64,
    panics_caught: u64,
    faults_detected: u64,
    deltas_published: u64,
    compactions_published: u64,
    final_epoch: u64,
    invariant_ok: bool,
}

fn main() {
    let args = BinArgs::parse();
    // Injected chaos panics are caught by the engine's fence; keep
    // their default-hook backtraces out of the harness output while
    // letting genuine panics print.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos:") {
            prev_hook(info);
        }
    }));

    let mut rng = StdRng::seed_from_u64(args.seed);
    let params = if args.quick {
        SocialNetworkParams {
            core_nodes: 400,
            core_attach: 3,
            communities: 8,
            community_size_range: (6, 60),
            whiskers: 20,
            whisker_max_len: 6,
            ..Default::default()
        }
    } else {
        SocialNetworkParams {
            core_nodes: 2000,
            core_attach: 4,
            communities: 30,
            community_size_range: (8, 300),
            whiskers: 80,
            whisker_max_len: 10,
            ..Default::default()
        }
    };
    let pc = social_network(&mut rng, &params).expect("surrogate generation failed");
    let (g, _) = largest_component(&pc.graph);
    let requests = if args.quick { 60 } else { 300 };
    println!(
        "servebench: fig1 surrogate LCC with {} nodes / {} edges; {} open-loop requests per scenario",
        g.n(),
        g.m(),
        requests,
    );

    let reports: Vec<ScenarioReport> = scenarios(args.quick)
        .into_iter()
        .map(|s| drive(&g, s, requests, args.seed))
        .collect();

    for r in &reports {
        let p = |q| percentile_ms(&r.latencies_ms, q);
        println!(
            "  {:<18} admitted {:>4}/{:<4}  p50 {:>7.3} ms  p99 {:>7.3} ms  degraded {:?}  retries {}  invariant {}",
            r.name,
            r.admitted,
            r.requests,
            p(0.50),
            p(0.99),
            r.degradation,
            r.retries,
            if r.invariant_ok { "ok" } else { "VIOLATED" },
        );
        assert!(
            r.invariant_ok,
            "{}: a request was admitted without exactly one certified response",
            r.name
        );
    }

    let doc = render(&args, &g, &reports);
    let text = serde_json::to_string_pretty(&doc);
    std::fs::write(OUT_FILE, format!("{text}\n")).expect("writing BENCH_serve.json failed");
    validate(&std::fs::read_to_string(OUT_FILE).expect("re-reading artifact failed"));
    println!("wrote {OUT_FILE} (validated: parses, percentiles ordered, ladder counts add up)");
}

/// Run one scenario: open-loop arrivals bucketed into engine cycles,
/// chaos per the schedule, the invariant checked over the full run.
fn drive(g: &Graph, s: Scenario, requests: usize, seed: u64) -> ScenarioReport {
    let mut engine = Engine::new(g.clone(), s.cfg);
    // Open-loop arrivals: exponential inter-arrival gaps, bucketed into
    // fixed service-cycle windows. Arrivals inside one window submit
    // back-to-back (so bursts overrun the queue and the bucket exactly
    // as they would live), then the cycle runs.
    let gaps = open_loop_gaps_us(seed ^ 0x5e44e, requests, 400);
    let window_us: u64 = 2_000;
    let mut admitted_ids = Vec::new();
    let mut answered_ids = Vec::new();
    let mut latencies_ms = Vec::new();
    let mut degradation: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut clock_us = 0u64;
    let mut window_end = window_us;
    let mut deltas_published = 0u64;
    let mut compactions_published = 0u64;
    for (i, gap) in gaps.iter().enumerate() {
        clock_us += gap;
        while clock_us >= window_end {
            for r in engine.run_pending() {
                answered_ids.push(r.id);
                latencies_ms.push(r.latency.as_secs_f64() * 1e3);
                *degradation.entry(r.kind.name()).or_insert(0) += 1;
            }
            window_end += window_us;
        }
        let deadline = if s.deadline_every > 0 && i % s.deadline_every == 0 {
            Some(Duration::ZERO)
        } else {
            None
        };
        let q = Query {
            seeds: vec![(i * 37 % g.n()) as NodeId],
            alpha: 0.1,
            epsilon: if i % 2 == 0 { 1e-3 } else { 1e-4 },
            deadline,
            options: Default::default(),
        };
        if let Admission::Accepted { id, .. } = engine.submit(q) {
            admitted_ids.push(id);
        }
        // Delta-storm writers publish immediately after the arrival, so
        // everything still queued from earlier windows is pinned to an
        // older snapshot when it finally runs.
        if s.delta_every > 0 && i > 0 && i % s.delta_every == 0 {
            let u = (i * 13 % g.n()) as NodeId;
            let mut v = (i * 29 % g.n()) as NodeId;
            if u == v {
                v = (v + 1) % g.n() as NodeId;
            }
            let w = 1.0 + (i % 3) as f64 * 0.5;
            engine
                .update_graph_delta(&[EdgeOp::Insert { u, v, weight: w }])
                .expect("delta-storm delta publish failed");
            deltas_published += 1;
        }
        if s.compact_every > 0 && i > 0 && i % s.compact_every == 0 {
            engine
                .compact(CompactionOrder::Rcm)
                .expect("delta-storm compaction failed");
            compactions_published += 1;
        }
    }
    for r in engine.run_pending() {
        answered_ids.push(r.id);
        latencies_ms.push(r.latency.as_secs_f64() * 1e3);
        *degradation.entry(r.kind.name()).or_insert(0) += 1;
    }
    let stats = engine.stats().clone();
    let final_epoch = engine.epoch();
    // Shutdown must drain anything still queued.
    for r in engine.shutdown() {
        answered_ids.push(r.id);
        latencies_ms.push(r.latency.as_secs_f64() * 1e3);
        *degradation.entry(r.kind.name()).or_insert(0) += 1;
    }
    answered_ids.sort_unstable();
    let invariant_ok = answered_ids == admitted_ids;
    ScenarioReport {
        name: s.name,
        requests,
        admitted: stats.admitted,
        rejected: stats.rejected_queue_full + stats.rejected_starved + stats.rejected_invalid,
        latencies_ms,
        degradation,
        retries: stats.retries,
        panics_caught: stats.panics_caught,
        faults_detected: stats.faults_detected,
        deltas_published,
        compactions_published,
        final_epoch,
        invariant_ok,
    }
}

/// Nearest-rank percentile over the (unsorted) latency sample, in ms.
fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let idx = ((s.len() - 1) as f64 * q).round() as usize;
    s[idx.min(s.len() - 1)]
}

fn render(args: &BinArgs, g: &Graph, reports: &[ScenarioReport]) -> Value {
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-serve-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    let mut graph = BTreeMap::new();
    graph.insert("nodes".into(), Value::from(g.n()));
    graph.insert("edges".into(), Value::from(g.m()));
    root.insert("graph".into(), Value::Object(graph));
    let scenarios = reports
        .iter()
        .map(|r| {
            let mut m = BTreeMap::new();
            m.insert("name".into(), Value::from(r.name));
            m.insert("requests".into(), Value::from(r.requests));
            m.insert("admitted".into(), Value::from(r.admitted));
            m.insert("rejected".into(), Value::from(r.rejected));
            let mut lat = BTreeMap::new();
            for (key, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.0)] {
                lat.insert(key.into(), Value::from(percentile_ms(&r.latencies_ms, q)));
            }
            m.insert("latency_ms".into(), Value::Object(lat));
            let mut deg = BTreeMap::new();
            for kind in [
                ResponseKind::Full,
                ResponseKind::Cached,
                ResponseKind::Coarsened,
                ResponseKind::Partial,
                ResponseKind::Stale,
                ResponseKind::SeedOnly,
            ] {
                deg.insert(
                    kind.name().into(),
                    Value::from(r.degradation.get(kind.name()).copied().unwrap_or(0)),
                );
            }
            m.insert("degradation".into(), Value::Object(deg));
            m.insert("retries".into(), Value::from(r.retries));
            m.insert("panics_caught".into(), Value::from(r.panics_caught));
            m.insert("faults_detected".into(), Value::from(r.faults_detected));
            m.insert("deltas_published".into(), Value::from(r.deltas_published));
            m.insert(
                "compactions_published".into(),
                Value::from(r.compactions_published),
            );
            m.insert("final_epoch".into(), Value::from(r.final_epoch));
            m.insert(
                "invariant_exactly_one_response".into(),
                Value::from(r.invariant_ok),
            );
            Value::Object(m)
        })
        .collect();
    root.insert("scenarios".into(), Value::Array(scenarios));
    Value::Object(root)
}

/// The same checks the CI smoke runs: the artifact parses, names the
/// expected schema, every scenario's percentiles are ordered, its
/// degradation-ladder counts sum to its admitted count, and the
/// exactly-one-response invariant held.
fn validate(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_serve.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-serve-v1"),
        "schema marker missing"
    );
    let scenarios = doc
        .get("scenarios")
        .and_then(Value::as_array)
        .expect("scenarios array missing");
    assert!(!scenarios.is_empty(), "no scenarios recorded");
    for s in scenarios {
        let name = s.get("name").and_then(Value::as_str).expect("name");
        let lat = s
            .get("latency_ms")
            .and_then(Value::as_object)
            .unwrap_or_else(|| panic!("{name}: latency_ms missing"));
        let q = |key: &str| lat.get(key).and_then(Value::as_f64).expect("percentile");
        assert!(
            q("p50") <= q("p90") && q("p90") <= q("p99") && q("p99") <= q("max"),
            "{name}: percentiles out of order"
        );
        let admitted = s.get("admitted").and_then(Value::as_u64).expect("admitted");
        let deg = s
            .get("degradation")
            .and_then(Value::as_object)
            .unwrap_or_else(|| panic!("{name}: degradation missing"));
        let total: u64 = deg.values().map(|v| v.as_u64().expect("count")).sum();
        assert_eq!(
            total, admitted,
            "{name}: ladder counts must sum to the admitted count"
        );
        assert_eq!(
            s.get("invariant_exactly_one_response")
                .and_then(Value::as_bool),
            Some(true),
            "{name}: exactly-one-response invariant violated"
        );
        let u = |key: &str| s.get(key).and_then(Value::as_u64).expect(key);
        assert_eq!(
            u("final_epoch"),
            u("deltas_published") + u("compactions_published"),
            "{name}: the graph epoch must advance once per published write"
        );
    }
}
