//! Ablations: Cheeger sandwich, the complementary worst-case
//! geometries of spectral vs flow (§3.2), early stopping vs the ridge
//! path, and input noising vs Tikhonov (§2.3).
//!
//! ```text
//! cargo run --release -p acir-bench --bin ablations [-- --quick] [--seed N] [--out DIR] [--threads N]
//! ```

use acir::experiment::ExperimentContext;
use acir::figures::ablations::{
    run_bayes_risk, run_cheeger_table, run_early_stopping, run_expander_ncp, run_noise_ablation,
    run_worst_cases,
};
use acir_bench::BinArgs;

fn main() {
    let args = BinArgs::parse();
    let ctx = ExperimentContext::new(&args.out_dir, args.seed);

    println!("== C2-cheeger: lambda2/2 <= phi(G) <= sqrt(2*lambda2) ==\n");
    let t = run_cheeger_table(&ctx).expect("cheeger run failed");
    println!("{t}");

    println!("== C2-stringy / C2-expander: complementary worst cases ==");
    println!("(cockroach: spectral bisection cuts Θ(k), optimum cuts 2; expanders: no deep cut exists)\n");
    let (ks, ns): (Vec<usize>, Vec<usize>) = if args.quick {
        (vec![4, 8, 16], vec![64, 128])
    } else {
        (vec![4, 8, 16, 32, 64], vec![64, 128, 256, 512])
    };
    let t = run_worst_cases(&ctx, &ks, &ns).expect("worst-case run failed");
    println!("{t}");

    println!("== C2-flat-ncp: expanders have no communities at any scale ==");
    println!("(footnote 27: 'partitioning a graph without any good partitions')\n");
    let flat_n = if args.quick { 400 } else { 2000 };
    let t = run_expander_ncp(&ctx, flat_n, 4).expect("flat-ncp run failed");
    println!("{t}");

    println!("== A-early: early-stopped gradient descent tracks the ridge path ==\n");
    let stops: Vec<usize> = if args.quick {
        vec![5, 20, 80]
    } else {
        vec![5, 10, 20, 40, 80, 160, 320]
    };
    let t = run_early_stopping(&ctx, &stops).expect("early-stopping run failed");
    println!("{t}");

    println!("== A-noise: noisy features behave like Tikhonov (lambda = m*sigma^2) ==\n");
    let (sigmas, trials) = if args.quick {
        (vec![0.2, 0.6, 1.2], 120)
    } else {
        (vec![0.1, 0.2, 0.4, 0.8, 1.2, 1.6], 600)
    };
    let t = run_noise_ablation(&ctx, &sigmas, trials).expect("noise run failed");
    println!("{t}");

    println!("== A-bayes: approximate computation is *better* on noisy data ==");
    println!("(risk vs the population eigenvector: exact rank-one estimator vs best");
    println!(" regularized (heat-kernel-computable) estimator, Monte-Carlo over samples)\n");
    let (gaps, trials): (Vec<(f64, f64)>, usize) = if args.quick {
        (vec![(0.55, 0.35), (0.9, 0.05)], 8)
    } else {
        (
            vec![
                (0.5, 0.4),
                (0.55, 0.35),
                (0.6, 0.3),
                (0.7, 0.2),
                (0.9, 0.05),
            ],
            40,
        )
    };
    let t = run_bayes_risk(&ctx, &gaps, trials).expect("bayes-risk run failed");
    println!("{t}");

    println!(
        "artifacts: {}/ablation_cheeger.csv, ablation_worstcase.csv, \
         ablation_early_stopping.csv, ablation_noise.csv, ablation_bayes.csv",
        args.out_dir.display()
    );
}
