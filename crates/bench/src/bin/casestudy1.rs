//! Case study §3.1: the implicit-regularization equivalence
//! (diffusions == regularized-SDP optima) and the aggressiveness ↔
//! regularization-strength sweep.
//!
//! ```text
//! cargo run --release -p acir-bench --bin casestudy1 [-- --quick] [--seed N] [--out DIR] [--threads N]
//! ```

use acir::experiment::ExperimentContext;
use acir::figures::casestudy1::{
    run_equivalence, run_regularization_path, seed_forgetting_demo, CaseStudy1Config,
};
use acir_bench::BinArgs;

fn main() {
    let args = BinArgs::parse();
    let ctx = ExperimentContext::new(&args.out_dir, args.seed);
    let cfg = if args.quick {
        CaseStudy1Config {
            etas: vec![0.5, 2.0, 8.0],
            lazy_ks: vec![1, 2],
            random_n: 32,
            random_p: 0.2,
        }
    } else {
        CaseStudy1Config {
            etas: vec![0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0],
            lazy_ks: vec![1, 2, 4, 8, 16],
            random_n: 120,
            random_p: 0.08,
        }
    };

    println!("== C1-eq: diffusion operators vs regularized-SDP optima ==");
    println!("(relative Frobenius gap; the Mahoney–Orecchia theorem predicts ~0)\n");
    let eq = run_equivalence(&ctx, &cfg).expect("equivalence run failed");
    println!("{eq}");

    println!("== C1-reg: aggressiveness parameter as regularization strength ==");
    println!("(barbell(8,0); eta small = strong regularization)\n");
    let path = run_regularization_path(&ctx, &cfg).expect("regpath run failed");
    println!("{path}");

    let (early, late) = seed_forgetting_demo().expect("demo failed");
    println!(
        "seed dependence (lazy walk, opposite seeds): truncated (3 steps) TV = {early:.4}; \
         equilibrated (4000 steps) TV = {late:.2e}"
    );
    println!(
        "\nartifacts: {}/casestudy1_equivalence.csv, casestudy1_regpath.csv",
        args.out_dir.display()
    );
}
