//! # acir-serve
//!
//! A fault-tolerant seed→cluster PPR query engine built on the thesis
//! of Mahoney (PODS 2012) §3.3: *truncating an approximate computation
//! early is not a failure mode — it is the regularizer*. A server built
//! on that principle never returns a timeout error. Under overload,
//! injected faults, or deadline pressure it degrades to a cheaper,
//! more-regularized answer, and every response carries a
//! [`Certificate`](acir_runtime::Certificate) saying exactly how
//! approximate the answer is.
//!
//! The engine enforces one invariant end to end, and the chaos suite
//! (`tests/chaos_serve.rs`) asserts it under worker panics, NaN
//! injection, budget starvation, and deadline storms:
//!
//! > **Every admitted request receives exactly one certified response,
//! > and the process never panics.**
//!
//! Mechanisms, in the order a request meets them:
//!
//! * **Admission control** ([`Engine::submit`]) — a bounded queue plus
//!   a global work-token bucket. Each accepted request is granted a
//!   [`Budget`](acir_runtime::Budget) carved from the currently
//!   available tokens via `Budget::split_across`; requests that would
//!   breach capacity are rejected *at admission* with a structured
//!   [`Overloaded`] response. Load is shed early, never mid-compute.
//! * **Degradation ladder** — per request, by remaining budget and
//!   deadline: full push at the requested ε → coarser ε (×10 per
//!   rung) → cached/stale answer → seed-only fallback. A deadline
//!   expiring *mid-push* still lands as a certified partial (the
//!   meter's deadline axis), because the truncated diffusion *is* a
//!   more aggressively regularized PPR.
//! * **Retry supervision** — worker panics are caught by
//!   [`acir_exec::panic_fence`] and NaN contamination by the
//!   convergence guard; both become `Diverged` outcomes that a
//!   [`RetryPolicy`](acir_runtime::RetryPolicy) with deterministic
//!   exponential [`Backoff`](acir_runtime::Backoff) retries, capped per
//!   request, with the retry trail in the response's
//!   [`Diagnostics`](acir_runtime::Diagnostics).
//! * **Batched execution** — queued requests with the same (α, ε rung,
//!   graph epoch) coalesce into one `ppr_push_batch_outcomes` lockstep
//!   call; per-item results are bit-identical to the solo path at any
//!   thread count (test-asserted).
//! * **Hub sketches** ([`SketchStore`]) — when configured, the engine
//!   precomputes truncated push vectors from the top-degree hubs and
//!   routes first attempts through the splice kernel
//!   (`acir_local::sketch`): push from the seed until the remaining
//!   residual frontier is covered by sketched hubs, then combine the
//!   stored hub vectors by PPR linearity. The spliced answer carries
//!   the same ε·deg certificate as a direct push while touching far
//!   fewer nodes. Sketches are stamped with the graph epoch and
//!   rebuilt on every [`Engine::update_graph`], so a stale sketch is
//!   never consulted.
//! * **Answer caching** — exact repeats keyed by
//!   `(seeds, α, ε, graph epoch)` are served from an epoch-keyed
//!   answer cache as [`ResponseKind::Cached`] — a non-degraded rung
//!   above `Stale`, since the cached certificate still holds verbatim
//!   on the current graph. Full graph swaps invalidate the whole
//!   cache; the older `(seeds, α)` stale cache survives swaps but
//!   labels its answers with the epoch they were certified against
//!   (`Certificate::StaleResidualMass`). A per-entry request-count TTL
//!   ([`engine::EngineConfig::answer_ttl`]) expires entries in the
//!   same FIFO order capacity eviction uses.
//! * **Incremental deltas** ([`Engine::update_graph_delta`]) — edge
//!   mutations that arrive as an [`acir_graph::EdgeOp`] stream are
//!   applied through a [`acir_graph::DeltaGraph`] overlay and
//!   compacted into a fresh CSR, and the derived state is *repaired*,
//!   not discarded: hub sketches whose residual support touches the
//!   delta are reflowed by `acir_local::repair`, cached answers are
//!   revalidated-or-repaired and re-keyed to the new epoch with
//!   re-measured certificates, and anything unrepairable is dropped.
//!   For single-edge deltas this costs a small constant factor of the
//!   perturbation instead of a full recompute (gated ≥10× cheaper in
//!   `BENCH_dynamic.json`).
//! * **Snapshot-pinned reads** — the engine owns its graph through an
//!   [`acir_graph::snapshot::SnapshotStore`]: every mutation builds a
//!   new immutable [`acir_graph::snapshot::GraphSnapshot`] aside and
//!   publishes it atomically, while each admitted request pins the
//!   snapshot it was admitted against and runs against it end to end.
//!   A writer publishing a delta — or a relabeling [`Engine::compact`]
//!   — mid-flight never changes what an in-flight request computes:
//!   its answer is bit-identical to a serial run against its pinned
//!   snapshot (asserted by `tests/snapshot_consistency.rs` under
//!   deterministic writer interleavings staged via
//!   [`Engine::stage_write`]). After a relabeling compaction, hub
//!   sketches and cached answers are carried *through* the
//!   [`acir_graph::Permutation`] — zero fresh pushes for sketches,
//!   fresh measured certificates for answers — rather than rebuilt.
//!
//! [`chaos`] holds the deterministic fault scheduler the chaos harness
//! and the `servebench` load generator share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod store;

pub use chaos::ChaosConfig;
pub use engine::{
    Admission, CompactionSummary, DeltaSummary, Engine, EngineConfig, EngineStats, Overloaded,
    PublishPoint, Query, QueryOptions, RejectReason, Response, ResponseKind, SweepCut, WriteOp,
};
pub use store::{SketchStore, StoreRepairStats};
