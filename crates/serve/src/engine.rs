//! The query engine: admission control, deadline-aware degradation,
//! retry supervision, and batched execution.
//!
//! Lifecycle of a request (each stage mirrored as a `request` event in
//! the engine trace):
//!
//! ```text
//! submit ──► admission (queue bound + token-bucket grant) ──► queued
//! run_pending ──► answer cache (exact (seeds, α, ε, epoch) hit → Cached)
//!             ──► ladder (requested ε → coarser ε → fallback)
//!             ──► sketch splice (attempt 0, when hub sketches cover
//!                 the epoch and α) or lockstep batch attempt
//!             ──► RetryPolicy supervision (panic fence + NaN guard,
//!                 exponential backoff, capped attempts; retries take
//!                 the raw push path, so a faulty splice degrades to
//!                 raw push before descending the ladder)
//!             ──► response: Full | Cached | Coarsened | Partial |
//!                 Stale | SeedOnly — always exactly one, certified
//! ```
//!
//! The engine no longer owns a mutable graph: it owns a
//! [`SnapshotStore`] publishing immutable `Arc`-backed
//! [`GraphSnapshot`]s. Every admitted request **pins** the head
//! snapshot at admission and runs against it end-to-end — ladder, batch,
//! splice, retries — even if a writer publishes deltas or compacts
//! mid-flight, so a request's answer is always bit-identical to a
//! serial replay against its admission snapshot. Queries and responses
//! live in the *root* (external) id space; a relabeling compaction
//! records its [`Permutation`] in the snapshot lineage and the engine
//! routes seeds in and clusters out through it, so clients never see
//! internal renumbering.
//!
//! Graph mutation comes in three grades. A full swap
//! ([`Engine::update_graph`]) publishes a fresh root snapshot, drops
//! every answer-cache entry, and rebuilds the hub sketches (reusing
//! the previous hub *selection* when the unweighted degree sequence is
//! unchanged), so a pre-mutation answer can only ever surface as
//! `Stale` — labeled with its epoch in the certificate — never as
//! `Full` or `Cached`. An *edge delta*
//! ([`Engine::update_graph_delta`]) publishes a delta snapshot, and
//! instead of discarding derived state it repairs it: hub sketches
//! whose residual support touches the delta are reflowed in place
//! (`repair_hub_sketches`), cached answers are revalidated-or-repaired
//! by the push-style residual-repair kernel (`ppr_repair`) and re-keyed
//! to the new epoch, and anything unrepairable is dropped — never
//! served. A *relabeling compaction* ([`Engine::compact`]) publishes a
//! renumbered snapshot and routes sketches and cached answers through
//! the recorded `Permutation` (`ppr_repair_relabeled`,
//! `relabel_sketch_set`) — repaired, not rebuilt or purged, with fresh
//! measured certificates. The epoch stamp remains the consistency
//! protocol: requests pinned to different snapshots are never batched,
//! spliced, or cache-served together.
//!
//! For deterministic concurrency testing, a writer can be *staged*
//! ([`Engine::stage_write`]) to fire at an exact [`PublishPoint`]
//! between two stages of a specific request — the chaos suite uses
//! this to force a publication at every seam of the pipeline and
//! assert pinned-snapshot isolation.

use crate::chaos::ChaosConfig;
use crate::store::SketchStore;
use acir_graph::snapshot::{compact_ordered, CompactionOrder, GraphSnapshot, SnapshotStore};
use acir_graph::{DeltaGraph, EdgeDelta, EdgeOp, Graph, NodeId, Permutation};
use acir_local::push::{ppr_push_batch_outcomes, ppr_push_ctx, PushResult};
use acir_local::repair::{
    ppr_repair, ppr_repair_relabeled, RepairRequest, DEFAULT_REPAIR_MASS_THRESHOLD,
};
use acir_local::sketch::{ppr_push_spliced_ctx, SketchSet};
use acir_local::sweep::sweep_cut_sparse;
use acir_runtime::{
    Backoff, Budget, Certificate, Diagnostics, DivergenceCause, GuardConfig, KernelCtx,
    RetryPolicy, SolverOutcome, SpmvLayout,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A seed→cluster PPR query. Seeds are in the root (external) id
/// space; the engine routes them through the pinned snapshot's lineage
/// when the graph has been relabeled by a compaction.
#[derive(Debug, Clone)]
pub struct Query {
    /// Seed nodes (uniform teleport mass over them).
    pub seeds: Vec<NodeId>,
    /// Teleportation probability, in `(0, 1)`.
    pub alpha: f64,
    /// Requested truncation threshold (the client's accuracy ask; the
    /// ladder may coarsen it under pressure).
    pub epsilon: f64,
    /// Per-request deadline; `None` falls back to
    /// [`EngineConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Optional extras; `QueryOptions::default()` is the plain query.
    pub options: QueryOptions,
}

/// Per-query opt-ins beyond the core `(seeds, α, ε)` ask.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Run a sweep cut over the answer's support and attach the
    /// best-conductance prefix cut to the response
    /// ([`Response::sweep`]). Applies to computed and cached answers
    /// (`Full`/`Coarsened`/`Partial`/`Cached`); the bottom fallback
    /// rungs (`Stale`/`SeedOnly`) carry no snapshot-consistent
    /// diffusion to sweep.
    pub sweep: bool,
}

/// The best-conductance sweep cut over a response's PPR support,
/// reported in external ids (mapped back through the request's
/// snapshot lineage).
#[derive(Debug, Clone)]
pub struct SweepCut {
    /// Cut member nodes, sorted ascending, external ids.
    pub set: Vec<NodeId>,
    /// Conductance of the cut on the request's snapshot graph
    /// (invariant under relabeling).
    pub conductance: f64,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded queue length; submissions beyond it are rejected.
    pub queue_cap: usize,
    /// Token-bucket capacity in work units (edge traversals).
    pub capacity: u64,
    /// Tokens added back per [`Engine::run_pending`] cycle.
    pub refill_per_cycle: u64,
    /// Smallest admissible grant; a thinner share is rejected as
    /// budget starvation instead of admitting a request that could
    /// only ever produce a near-empty partial.
    pub min_grant: u64,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Total attempts per request (first try + retries).
    pub max_attempts: usize,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Number of ×10 ε-coarsening rungs below the requested accuracy.
    pub ladder_rungs: u32,
    /// Fault-injection plan for chaos testing; `None` in production.
    pub chaos: Option<ChaosConfig>,
    /// SpMV layout preference installed on every attempt's
    /// [`KernelCtx`] (ambient for any sparse products the attempt
    /// performs, and recorded in its trace). `None` keeps the process
    /// default (`ACIR_SPMV_LAYOUT` or scalar CSR).
    pub spmv: Option<SpmvLayout>,
    /// Number of top-degree hubs to precompute PPR sketches from;
    /// `0` disables the sketch-splice path entirely. Sketches are
    /// rebuilt on every graph swap.
    pub sketch_hubs: usize,
    /// α the hub sketches are built for (sketches are α-specific);
    /// queries at any other α take the ordinary push path.
    pub sketch_alpha: f64,
    /// ε the hub sketches are pushed to. A query at ε can splice only
    /// when `sketch_epsilon < ε`; the online loop then runs at
    /// `ε − sketch_epsilon` and the combined answer still satisfies
    /// the `ε·deg` invariant.
    pub sketch_epsilon: f64,
    /// Answer-cache capacity: exact `(seeds, α, ε, epoch)` repeats are
    /// served from cache as [`ResponseKind::Cached`] (full quality,
    /// zero compute). `0` disables the cache. Eviction is FIFO.
    pub answer_cache_cap: usize,
    /// Per-entry answer-cache time-to-live, measured in *request
    /// count* (submissions seen since the entry was cached), not wall
    /// time — deterministic and replayable. An entry older than this
    /// many requests is expired before it can be served; expiry walks
    /// the same FIFO order as capacity eviction, oldest first. `0`
    /// disables TTL expiry.
    pub answer_ttl: u64,
    /// Amortized full-rebuild cadence for the delta path: after this
    /// many [`Engine::update_graph_delta`] calls since the last full
    /// sketch build, the next delta rebuilds the sketches from scratch
    /// instead of repairing them, resetting accumulated repair error
    /// and truncation debris. `0` means repair forever.
    pub resketch_after: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            capacity: 1_000_000,
            refill_per_cycle: 1_000_000,
            min_grant: 64,
            default_deadline: None,
            max_attempts: 3,
            backoff: Backoff::none(),
            ladder_rungs: 2,
            chaos: None,
            spmv: None,
            sketch_hubs: 0,
            sketch_alpha: 0.1,
            sketch_epsilon: 1e-5,
            answer_cache_cap: 256,
            answer_ttl: 0,
            resketch_after: 0,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The token bucket cannot fund a useful grant right now.
    BudgetStarved,
    /// The query itself is malformed (bad α/ε, missing or unusable
    /// seeds); resubmitting without change will never succeed.
    InvalidQuery,
}

/// Structured overload/rejection response: the only way the engine
/// says no, and it says it *at admission*, never mid-compute.
#[derive(Debug, Clone, PartialEq)]
pub struct Overloaded {
    /// Which admission gate refused the request.
    pub reason: RejectReason,
    /// Human-readable specifics (queue depth, available tokens, …).
    pub detail: String,
}

/// Outcome of [`Engine::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Admitted: the request will receive exactly one response.
    Accepted {
        /// Engine-assigned request id.
        id: u64,
        /// Work tokens carved from the global bucket for this request.
        granted_work: u64,
    },
    /// Refused at the door with a structured reason.
    Rejected(Overloaded),
}

impl Admission {
    /// The admitted request id, if any.
    pub fn id(&self) -> Option<u64> {
        match self {
            Admission::Accepted { id, .. } => Some(*id),
            Admission::Rejected(_) => None,
        }
    }

    /// Was the request admitted?
    pub fn is_accepted(&self) -> bool {
        matches!(self, Admission::Accepted { .. })
    }
}

/// Which rung of the degradation ladder produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Converged at the requested ε.
    Full,
    /// An exact answer-cache hit: the same `(seeds, α, ε)` was answered
    /// `Full` earlier *in the current graph epoch*, so the cached
    /// vector and certificate are returned without any compute. Not a
    /// degraded rung — the answer satisfies the requested ε.
    Cached,
    /// Converged, but at a coarser ε chosen to fit the grant.
    Coarsened,
    /// Budget or deadline truncated the push; the partial diffusion is
    /// returned with its exhaustion certificate.
    Partial,
    /// A cached (possibly stale-epoch) earlier answer for the same
    /// seeds and α.
    Stale,
    /// Last resort: the seed distribution itself — the most
    /// regularized answer on the ladder (zero pushes).
    SeedOnly,
}

impl ResponseKind {
    /// Stable snake_case label, used in stages, stats, and BENCH output.
    pub fn name(&self) -> &'static str {
        match self {
            ResponseKind::Full => "full",
            ResponseKind::Cached => "cached",
            ResponseKind::Coarsened => "coarsened",
            ResponseKind::Partial => "partial",
            ResponseKind::Stale => "stale",
            ResponseKind::SeedOnly => "seed_only",
        }
    }

    /// Anything below the top rung counts as degraded service
    /// (`Cached` answers satisfy the requested ε, so they sit on the
    /// top rung alongside `Full`).
    pub fn is_degraded(&self) -> bool {
        !matches!(self, ResponseKind::Full | ResponseKind::Cached)
    }
}

/// The single certified answer an admitted request receives.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request id from [`Admission::Accepted`].
    pub id: u64,
    /// Ladder rung that produced the answer.
    pub kind: ResponseKind,
    /// ε the client asked for.
    pub epsilon_requested: f64,
    /// ε the answer actually satisfies (== requested for `Full`).
    pub epsilon_used: f64,
    /// The cluster embedding, sparse `(node, value)` pairs.
    pub cluster: Vec<(NodeId, f64)>,
    /// Quality bound: exactly how approximate this answer is.
    pub certificate: Certificate,
    /// Retry attempts consumed by the supervisor.
    pub retries: usize,
    /// Admission-to-response wall time.
    pub latency: Duration,
    /// Best-conductance sweep cut over the cluster support, when the
    /// query opted in ([`QueryOptions::sweep`]) and the response rung
    /// carries a snapshot-consistent diffusion.
    pub sweep: Option<SweepCut>,
    /// Full per-request trail: kernel spans, restarts, faults, stages.
    pub diagnostics: Diagnostics,
}

/// Aggregate service counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Total submissions, admitted or not.
    pub submitted: u64,
    /// Requests admitted (each owed exactly one response).
    pub admitted: u64,
    /// Rejections: bounded queue at capacity.
    pub rejected_queue_full: u64,
    /// Rejections: token bucket starved.
    pub rejected_starved: u64,
    /// Rejections: malformed query.
    pub rejected_invalid: u64,
    /// Responses delivered.
    pub responded: u64,
    /// Ladder counts, one per [`ResponseKind`].
    pub full: u64,
    /// See [`ResponseKind::Cached`].
    pub cached: u64,
    /// See [`ResponseKind::Coarsened`].
    pub coarsened: u64,
    /// See [`ResponseKind::Partial`].
    pub partial: u64,
    /// See [`ResponseKind::Stale`].
    pub stale: u64,
    /// See [`ResponseKind::SeedOnly`].
    pub seed_only: u64,
    /// Retry attempts performed by the supervisor.
    pub retries: u64,
    /// Worker panics converted into diverged outcomes.
    pub panics_caught: u64,
    /// NaN corruptions detected by response validation.
    pub faults_detected: u64,
    /// Requests answered through the sketch-splice path (attempt 0
    /// spliced hub sketches instead of a cold push).
    pub spliced: u64,
}

impl EngineStats {
    /// Responses served below the top ladder rung.
    pub fn degraded(&self) -> u64 {
        self.coarsened + self.partial + self.stale + self.seed_only
    }
}

/// An admitted request waiting in the bounded queue, pinned to the
/// snapshot that was head at admission: every stage of its execution
/// reads `snapshot`, never the store's (possibly newer) head.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    query: Query,
    grant: u64,
    deadline: Option<Duration>,
    admitted_at: Instant,
    snapshot: Arc<GraphSnapshot>,
    /// The sketch store as of admission, pinned with the snapshot so a
    /// mid-flight rebuild/relabel cannot change this request's splice
    /// eligibility.
    sketches: Option<Arc<SketchStore>>,
}

impl Pending {
    fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The query's seeds in the pinned snapshot's internal id space.
    fn internal_seeds(&self) -> Vec<NodeId> {
        if self.snapshot.is_relabeled() {
            let lineage = self.snapshot.lineage();
            self.query
                .seeds
                .iter()
                .map(|&u| lineage.to_new(u))
                .collect()
        } else {
            self.query.seeds.clone()
        }
    }
}

/// A writer action staged by [`Engine::stage_write`] to fire at a
/// deterministic point inside [`Engine::run_pending`].
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Apply an edge-op stream, publishing a delta snapshot (exactly
    /// [`Engine::update_graph_delta`]).
    Delta(Vec<EdgeOp>),
    /// Publish a compacted (possibly relabeled) snapshot (exactly
    /// [`Engine::compact`]).
    Compact(CompactionOrder),
}

/// Deterministic seams in the request pipeline where a staged writer
/// can publish. All four fire in the sequential driver loop of
/// [`Engine::run_pending`] — never inside a parallel region — so an
/// interleaving is reproducible at any `ACIR_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PublishPoint {
    /// Before the request's answer-cache check.
    BeforeCacheCheck,
    /// After ladder selection, before the request's batch attempt runs.
    BeforeBatch,
    /// After the batched attempt 0, before retry supervision.
    BeforeSupervise,
    /// After the request's response has been assembled.
    AfterRespond,
}

/// One staged write: fires when `request` reaches `point`.
#[derive(Debug, Clone)]
struct StagedWrite {
    point: PublishPoint,
    request: u64,
    op: WriteOp,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    epoch: u64,
    epsilon: f64,
    vector: Vec<(NodeId, f64)>,
    certificate: Certificate,
}

type CacheKey = (Vec<NodeId>, u64);

fn cache_key(seeds: &[NodeId], alpha: f64) -> CacheKey {
    let mut s = seeds.to_vec();
    s.sort_unstable();
    s.dedup();
    (s, alpha.to_bits())
}

/// Exact answer-cache key: sorted deduped seeds, α bits, ε bits, and
/// the graph epoch the answer was computed in. The epoch component is
/// the invalidation mechanism — a bumped epoch misses by construction
/// (and [`Engine::update_graph`] purges old entries besides).
type AnswerKey = (Vec<NodeId>, u64, u64, u64);

fn answer_key(seeds: &[NodeId], alpha: f64, epsilon: f64, epoch: u64) -> AnswerKey {
    let mut s = seeds.to_vec();
    s.sort_unstable();
    s.dedup();
    (s, alpha.to_bits(), epsilon.to_bits(), epoch)
}

#[derive(Debug, Clone)]
struct AnswerEntry {
    epsilon: f64,
    vector: Vec<(NodeId, f64)>,
    certificate: Certificate,
    /// Sorted, deduped seeds (the key's seed component) — what the
    /// repair kernel's from-scratch fallback diffuses from.
    seeds: Vec<NodeId>,
    /// The answer's residual vector, kept so an edge delta can repair
    /// the entry in place instead of purging it. Splice-sourced answers
    /// carry an empty residual with nonzero certified mass — those are
    /// unrepairable and dropped on the first delta.
    residuals: Vec<(NodeId, f64)>,
    /// Request-clock stamp at caching time, for TTL expiry.
    born: u64,
}

/// What one [`Engine::update_graph_delta`] call did to the engine's
/// derived state. All counters are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// The epoch after the delta (unchanged if the delta was a no-op).
    pub epoch: u64,
    /// Net edges changed (inserts + deletes + reweights, after
    /// cancellation). `0` means nothing else in this summary happened.
    pub edges: usize,
    /// Hub sketches incrementally repaired.
    pub sketches_repaired: usize,
    /// Hub sketches untouched by the delta, carried over verbatim.
    pub sketches_untouched: usize,
    /// Hub sketches recomputed from scratch by the repair kernel.
    pub sketch_fallbacks: usize,
    /// `true` when the sketch set was fully rebuilt instead of
    /// repaired (amortized cadence, injected repair fault, or a repair
    /// error).
    pub sketches_rebuilt: bool,
    /// Cached answers whose invariant survived the delta untouched
    /// (zero repair pushes) — re-keyed to the new epoch for free.
    pub answers_revalidated: usize,
    /// Cached answers reflowed by the repair kernel and re-keyed.
    pub answers_repaired: usize,
    /// Cached answers dropped as unrepairable (splice-born entries,
    /// degenerate deltas, or repair errors).
    pub answers_dropped: usize,
    /// Fresh pushes spent repairing sketches and answers — the
    /// repair-vs-rebuild gate numerator.
    pub repair_pushes: usize,
    /// Fresh edge traversals spent repairing sketches and answers.
    pub repair_work: usize,
}

/// What one [`Engine::compact`] call did to the engine's derived
/// state. All counters are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionSummary {
    /// The epoch after the compaction.
    pub epoch: u64,
    /// `true` when the chosen order renumbered vertices (a
    /// [`CompactionOrder::Preserve`] compaction publishes an identity
    /// step).
    pub relabeled: bool,
    /// Hub sketches routed through the permutation (all of them; a
    /// relabeling never rebuilds a sketch).
    pub sketches_relabeled: usize,
    /// Cached answers routed through the permutation with a freshly
    /// measured certificate.
    pub answers_relabeled: usize,
    /// Cached answers dropped because the relabel-repair errored
    /// (should not happen; kept for honesty in accounting).
    pub answers_dropped: usize,
}

/// Worst-case push count of an ε-truncated diffusion, the same
/// `O(1/(εα))` bound the kernel's safety cap uses — the ladder's
/// admission-time cost model.
fn est_cost(epsilon: f64, alpha: f64) -> u64 {
    (4.0 / (epsilon * alpha)).ceil() as u64
}

/// The long-running PPR query engine. See the crate docs for the
/// degradation contract.
#[derive(Debug)]
pub struct Engine {
    /// The snapshot publication point. Writers (`update_graph*`,
    /// `compact`) build the next snapshot off to the side and publish
    /// it here; every admitted request pins the head at admission.
    snapshots: SnapshotStore,
    /// Cached pin of the store's head (always equal to the store's
    /// current snapshot; avoids a lock round-trip on every read).
    head: Arc<GraphSnapshot>,
    cfg: EngineConfig,
    next_id: u64,
    available: u64,
    queue: VecDeque<Pending>,
    cache: HashMap<CacheKey, CacheEntry>,
    /// Answer-cache payloads live in the *head snapshot's internal* id
    /// space and are kept synchronized with the head across deltas
    /// (repair) and compactions (relabel); keys carry external seeds.
    answers: HashMap<AnswerKey, AnswerEntry>,
    answer_order: VecDeque<AnswerKey>,
    /// The hub-sketch store, `Arc`-shared so each admission pins the
    /// store alongside its snapshot: a rebuild, repair, or relabel
    /// publishes a *new* store and in-flight requests keep splicing
    /// (or not) exactly as they would have at admission time.
    sketches: Option<Arc<SketchStore>>,
    stats: EngineStats,
    trace: Diagnostics,
    /// Monotone submission counter; the TTL clock.
    request_clock: u64,
    /// Deltas applied since the last full sketch build.
    deltas_since_resketch: u64,
    /// Writer actions staged to fire at deterministic pipeline seams.
    staged: Vec<StagedWrite>,
}

impl Engine {
    /// An engine serving queries against `g`.
    ///
    /// When `cfg.sketch_hubs > 0` the hub sketches are built here (and
    /// again on every [`Engine::update_graph`]); invalid sketch
    /// parameters are a configuration bug and panic.
    pub fn new(g: Graph, cfg: EngineConfig) -> Self {
        let available = cfg.capacity;
        let snapshots = SnapshotStore::new(g);
        let head = snapshots.pin();
        let mut engine = Self {
            snapshots,
            head,
            cfg,
            next_id: 0,
            available,
            cache: HashMap::new(),
            answers: HashMap::new(),
            answer_order: VecDeque::new(),
            sketches: None,
            queue: VecDeque::new(),
            stats: EngineStats::default(),
            trace: Diagnostics::for_kernel("serve.engine"),
            request_clock: 0,
            deltas_since_resketch: 0,
            staged: Vec::new(),
        };
        if engine.cfg.sketch_hubs > 0 {
            engine.rebuild_sketches(None);
        }
        engine
    }

    /// (Re)build the hub-sketch store for the head snapshot and epoch.
    /// `reuse_hubs` carries the previous store's hub list when the
    /// caller has proven the top-K selection cannot have changed (the
    /// unweighted degree sequence is identical), skipping reselection
    /// while still rebuilding every sketch against the new weights.
    fn rebuild_sketches(&mut self, reuse_hubs: Option<Vec<NodeId>>) {
        self.sketches = None;
        self.deltas_since_resketch = 0;
        if self.cfg.sketch_hubs == 0 {
            return;
        }
        let epoch = self.head.epoch();
        let store = match reuse_hubs {
            Some(hubs) => {
                self.trace.note(format!(
                    "hub selection reused: degree sequence unchanged ({} hubs; epoch {epoch})",
                    hubs.len()
                ));
                SketchStore::build_for_hubs(
                    self.head.graph(),
                    &hubs,
                    self.cfg.sketch_alpha,
                    self.cfg.sketch_epsilon,
                    epoch,
                )
            }
            None => SketchStore::build(
                self.head.graph(),
                self.cfg.sketch_hubs,
                self.cfg.sketch_alpha,
                self.cfg.sketch_epsilon,
                epoch,
            ),
        }
        .unwrap_or_else(|e| panic!("invalid sketch configuration: {e}"));
        self.trace.note(format!(
            "hub sketches built: {} hubs at eps {:e} (epoch {})",
            store.len(),
            self.cfg.sketch_epsilon,
            epoch
        ));
        self.sketches = Some(Arc::new(store));
    }

    /// Swap in a new graph as a fresh root snapshot and bump the
    /// epoch. Requests already queued keep their pinned snapshot, so
    /// they are never batched (or spliced) with new-epoch requests and
    /// still answer against the graph they were admitted under; the
    /// answer cache is purged (its keys are epoch-specific anyway) and
    /// the hub sketches are rebuilt against the new snapshot — reusing
    /// the previous hub *selection* when the unweighted degree
    /// sequence is unchanged (a pure-reweight swap cannot move the
    /// top-K cut line, so reselection is skipped; the restamp and the
    /// per-sketch rebuild still happen). Stale-cache answers from
    /// earlier epochs remain servable as `Stale`, labeled with their
    /// epoch in the certificate.
    pub fn update_graph(&mut self, g: Graph) {
        let reuse_hubs = self.reusable_hub_selection(&g);
        self.head = self.snapshots.publish_root(g);
        self.answers.clear();
        self.answer_order.clear();
        self.trace
            .note(format!("graph swapped; epoch {}", self.head.epoch()));
        // With the sketch path disabled there is nothing to rebuild —
        // skip the call rather than churn through a no-op.
        if self.cfg.sketch_hubs > 0 {
            self.rebuild_sketches(reuse_hubs);
        } else {
            self.deltas_since_resketch = 0;
        }
    }

    /// The current store's hub list, when `g` provably yields the same
    /// top-K selection: same vertex count and an identical unweighted
    /// degree sequence (ties in [`Permutation::degree_descending`]
    /// break by id, so equal degrees force equal selection).
    fn reusable_hub_selection(&self, g: &Graph) -> Option<Vec<NodeId>> {
        let store = self.sketches.as_ref()?;
        let old = self.head.graph();
        if g.n() != old.n()
            || (0..g.n() as NodeId).any(|u| g.degree_unweighted(u) != old.degree_unweighted(u))
        {
            return None;
        }
        Some(store.hubs())
    }

    /// Apply an edge delta to the serving graph *in place*: compact the
    /// overlay into a fresh CSR, bump the epoch, and **repair** the
    /// derived state instead of discarding it.
    ///
    /// * Hub sketches whose residual support touches a delta endpoint
    ///   are reflowed by the residual-repair kernel; the rest carry
    ///   over verbatim. Every `cfg.resketch_after` deltas (and on an
    ///   injected repair fault, or any repair error) the set is rebuilt
    ///   from scratch instead.
    /// * Cached answers are revalidated-or-repaired under the same
    ///   kernel and re-keyed to the new epoch, each re-issued
    ///   certificate carrying the *measured* post-repair residual mass.
    ///   Unrepairable entries (splice-born answers with no stored
    ///   residual, degenerate column swaps) are dropped, never served.
    ///
    /// The delta is atomic: `ops` are validated against an overlay
    /// before any engine state changes, so a rejected op leaves the
    /// engine bit-for-bit untouched and in-flight requests can never
    /// observe a half-applied delta. An empty net delta (ops that
    /// cancel out) is a no-op that does not bump the epoch.
    pub fn update_graph_delta(&mut self, ops: &[EdgeOp]) -> Result<DeltaSummary, String> {
        let (new_graph, delta) = {
            // Build the successor entirely off to the side, against the
            // pinned head — readers keep serving the old snapshot until
            // the single atomic publish below.
            let base = Arc::clone(&self.head);
            let mut dg = DeltaGraph::new(base.graph());
            for op in ops {
                // Ops name endpoints in external (root) ids, like
                // queries; translate into the head's labeling first.
                // Out-of-range endpoints pass through untranslated so
                // the overlay rejects them with its canonical error.
                let op = internalize_op(&base, op);
                dg.apply(&op).map_err(|e| format!("delta rejected: {e}"))?;
            }
            let delta = dg.net_delta();
            if delta.is_empty() {
                return Ok(DeltaSummary {
                    epoch: self.head.epoch(),
                    ..DeltaSummary::default()
                });
            }
            let (g, _relabel) = dg
                .compact()
                .map_err(|e| format!("delta compaction failed: {e}"))?;
            (g, delta)
        };
        self.head = self.snapshots.publish_delta(new_graph, delta.clone());
        let epoch = self.head.epoch();
        let mut summary = DeltaSummary {
            epoch,
            edges: delta.len(),
            ..DeltaSummary::default()
        };
        self.trace.note(format!(
            "delta applied: {} edges; epoch {}",
            delta.len(),
            epoch
        ));

        if self.cfg.sketch_hubs > 0 {
            self.deltas_since_resketch += 1;
            let faulted = self
                .cfg
                .chaos
                .as_ref()
                .is_some_and(|c| c.fails_repair(epoch));
            let amortized = self.cfg.resketch_after > 0
                && self.deltas_since_resketch >= self.cfg.resketch_after;
            let repaired = if faulted {
                self.trace.note(format!(
                    "chaos: sketch repair fault at epoch {epoch}; rebuilding"
                ));
                None
            } else if amortized {
                self.trace.note(format!(
                    "amortized sketch rebuild after {} deltas",
                    self.deltas_since_resketch
                ));
                None
            } else {
                match self
                    .sketches
                    .as_ref()
                    .map(|s| s.repair(self.head.graph(), &delta, epoch))
                {
                    Some(Ok(ok)) => Some(ok),
                    Some(Err(e)) => {
                        self.trace
                            .note(format!("sketch repair failed ({e}); rebuilding"));
                        None
                    }
                    None => None,
                }
            };
            match repaired {
                Some((store, stats)) => {
                    self.trace.note(format!(
                        "hub sketches repaired: {} repaired, {} untouched, {} fallbacks \
                         ({} pushes; epoch {epoch})",
                        stats.repaired, stats.untouched, stats.fallbacks, stats.pushes
                    ));
                    summary.sketches_repaired = stats.repaired;
                    summary.sketches_untouched = stats.untouched;
                    summary.sketch_fallbacks = stats.fallbacks;
                    summary.repair_pushes += stats.pushes;
                    summary.repair_work += stats.work;
                    self.sketches = Some(Arc::new(store));
                }
                None => {
                    self.rebuild_sketches(None);
                    summary.sketches_rebuilt = true;
                }
            }
        }

        self.repair_answers(&delta, &mut summary);
        Ok(summary)
    }

    /// Revalidate-or-repair every answer-cache entry across `delta`,
    /// re-keying survivors to the current (just-bumped) epoch. Walks
    /// `answer_order` (the FIFO), not the map, so the pass is
    /// deterministic and preserves eviction order.
    fn repair_answers(&mut self, delta: &[EdgeDelta], summary: &mut DeltaSummary) {
        let epoch = self.head.epoch();
        let old_order = std::mem::take(&mut self.answer_order);
        let mut old_answers = std::mem::take(&mut self.answers);
        for key in old_order {
            let Some(mut entry) = old_answers.remove(&key) else {
                continue;
            };
            // The cache is kept synchronized with the head: every live
            // entry's key carries the pre-delta epoch. Anything else is
            // a stray (should not happen) and cannot be repaired by a
            // single-step delta — drop it rather than mislabel it.
            if key.3 + 1 != epoch {
                summary.answers_dropped += 1;
                continue;
            }
            // A splice-born answer stores no residual vector but
            // certifies nonzero remaining mass: the invariant cannot be
            // re-established from what we kept. Drop it.
            let certified_remaining = match entry.certificate {
                Certificate::ResidualMass { remaining, .. } => remaining,
                _ => 1.0,
            };
            if entry.residuals.is_empty() && certified_remaining != 0.0 {
                summary.answers_dropped += 1;
                continue;
            }
            let alpha = f64::from_bits(key.1);
            let req = RepairRequest {
                seeds: &entry.seeds,
                estimate: &entry.vector,
                residual: &entry.residuals,
                delta,
                alpha,
                epsilon: entry.epsilon,
                mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
            };
            match ppr_repair(self.head.graph(), &req) {
                Ok(rr) => {
                    if rr.pushes == 0 && rr.repaired {
                        summary.answers_revalidated += 1;
                    } else {
                        summary.answers_repaired += 1;
                    }
                    summary.repair_pushes += rr.pushes;
                    summary.repair_work += rr.work;
                    // The re-issued certificate carries the *measured*
                    // post-repair worst |r|/d — tighter than the ε the
                    // answer was asked for (an all-zero residual
                    // measures 0.0; report the satisfied ε instead so
                    // the bound stays meaningful and positive).
                    let measured = if rr.per_degree_bound > 0.0 {
                        rr.per_degree_bound
                    } else {
                        entry.epsilon
                    };
                    let certificate = Certificate::ResidualMass {
                        remaining: rr.residual_mass,
                        per_degree_bound: measured,
                    };
                    self.trace.certificate_issued(&certificate);
                    entry.vector = rr.vector;
                    entry.residuals = rr.residuals;
                    entry.certificate = certificate;
                    let new_key = (key.0, key.1, key.2, epoch);
                    self.answer_order.push_back(new_key.clone());
                    self.answers.insert(new_key, entry);
                }
                Err(e) => {
                    self.trace
                        .note(format!("cached answer unrepairable ({e}); dropped"));
                    summary.answers_dropped += 1;
                }
            }
        }
        if summary.answers_revalidated + summary.answers_repaired + summary.answers_dropped > 0 {
            self.trace.note(format!(
                "answer cache: {} revalidated, {} repaired, {} dropped (epoch {epoch})",
                summary.answers_revalidated, summary.answers_repaired, summary.answers_dropped
            ));
        }
    }

    /// Publish a compacted snapshot of the current head under `order`,
    /// bumping the epoch, and route the derived state *through the
    /// relabeling* instead of rebuilding or purging it:
    ///
    /// * hub sketches are relabeled in place (`relabel_sketch_set`) and
    ///   restamped — a permutation permutes a diffusion, it does not
    ///   change it, so not a single push is spent;
    /// * cached answers are routed through the permutation by the
    ///   relabel-aware repair kernel (`ppr_repair_relabeled` with an
    ///   empty delta), re-keyed to the new epoch, and re-issued a
    ///   **freshly measured** `ResidualMass` certificate against the
    ///   relabeled graph.
    ///
    /// In-flight requests pinned to the pre-compaction snapshot are
    /// unaffected: their snapshot (and its id space) stays alive until
    /// they respond. A [`CompactionOrder::Preserve`] compaction
    /// publishes an identity step — everything above degenerates to a
    /// re-key.
    pub fn compact(&mut self, order: CompactionOrder) -> Result<CompactionSummary, String> {
        let (new_graph, step) = {
            let base = Arc::clone(&self.head);
            let dg = DeltaGraph::new(base.graph());
            compact_ordered(&dg, order).map_err(|e| format!("compaction failed: {e}"))?
        };
        self.head = self.snapshots.publish_compacted(new_graph, step.clone());
        let epoch = self.head.epoch();
        let mut summary = CompactionSummary {
            epoch,
            relabeled: !step.is_identity(),
            ..CompactionSummary::default()
        };
        self.trace.note(format!(
            "compacted ({}); epoch {epoch}",
            match order {
                CompactionOrder::Preserve => "preserve",
                CompactionOrder::Rcm => "rcm",
                CompactionOrder::DegreeDescending => "degree-descending",
            }
        ));

        if let Some(store) = self.sketches.take() {
            let relabeled = store
                .relabel(&step, epoch)
                .map_err(|e| format!("sketch relabel failed: {e}"))?;
            summary.sketches_relabeled = relabeled.len();
            self.trace.note(format!(
                "hub sketches relabeled: {} carried through the permutation (epoch {epoch})",
                relabeled.len()
            ));
            self.sketches = Some(Arc::new(relabeled));
        }

        self.relabel_answers(&step, &mut summary);
        Ok(summary)
    }

    /// Route every answer-cache entry through a compaction `step`:
    /// payloads are mapped into the new id space, keys re-keyed to the
    /// new epoch (external seed components are lineage-stable and stay
    /// put), and repairable entries get a freshly measured certificate
    /// from the relabel-aware repair kernel. Splice-born entries (no
    /// stored residual) are mapped verbatim with their original
    /// certificate — a relabeling preserves degrees, so the old bound
    /// still holds word for word.
    fn relabel_answers(&mut self, step: &Permutation, summary: &mut CompactionSummary) {
        let epoch = self.head.epoch();
        let old_order = std::mem::take(&mut self.answer_order);
        let mut old_answers = std::mem::take(&mut self.answers);
        for key in old_order {
            let Some(mut entry) = old_answers.remove(&key) else {
                continue;
            };
            if key.3 + 1 != epoch {
                summary.answers_dropped += 1;
                continue;
            }
            let certified_remaining = match entry.certificate {
                Certificate::ResidualMass { remaining, .. } => remaining,
                _ => 1.0,
            };
            if entry.residuals.is_empty() && certified_remaining != 0.0 {
                // Splice-born: no residual to re-measure from, but the
                // certified bound survives a pure relabel unchanged.
                entry.vector = step.map_sparse(&entry.vector);
                entry.seeds = step.map_nodes(&entry.seeds);
            } else {
                let alpha = f64::from_bits(key.1);
                let req = RepairRequest {
                    seeds: &entry.seeds,
                    estimate: &entry.vector,
                    residual: &entry.residuals,
                    delta: &[],
                    alpha,
                    epsilon: entry.epsilon,
                    mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
                };
                match ppr_repair_relabeled(self.head.graph(), &req, step) {
                    Ok(rr) => {
                        let measured = if rr.per_degree_bound > 0.0 {
                            rr.per_degree_bound
                        } else {
                            entry.epsilon
                        };
                        let certificate = Certificate::ResidualMass {
                            remaining: rr.residual_mass,
                            per_degree_bound: measured,
                        };
                        self.trace.certificate_issued(&certificate);
                        entry.vector = rr.vector;
                        entry.residuals = rr.residuals;
                        entry.certificate = certificate;
                        entry.seeds = step.map_nodes(&entry.seeds);
                    }
                    Err(e) => {
                        self.trace
                            .note(format!("cached answer unrelabelable ({e}); dropped"));
                        summary.answers_dropped += 1;
                        continue;
                    }
                }
            }
            summary.answers_relabeled += 1;
            let new_key = (key.0, key.1, key.2, epoch);
            self.answer_order.push_back(new_key.clone());
            self.answers.insert(new_key, entry);
        }
        if summary.answers_relabeled + summary.answers_dropped > 0 {
            self.trace.note(format!(
                "answer cache: {} relabeled, {} dropped (epoch {epoch})",
                summary.answers_relabeled, summary.answers_dropped
            ));
        }
    }

    /// Current (head) graph epoch.
    pub fn epoch(&self) -> u64 {
        self.head.epoch()
    }

    /// The head snapshot's graph. In-flight requests may still be
    /// reading older pinned snapshots; this is what *new* admissions
    /// will pin.
    pub fn graph(&self) -> &Graph {
        self.head.graph()
    }

    /// Pin the head snapshot, exactly as an admission would: the
    /// returned `Arc` stays valid across any number of later
    /// publications. Serial-replay harnesses use this to capture the
    /// graph a request will be (or was) answered against.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.head)
    }

    /// The snapshot publication point itself, for readers that want to
    /// pin independently of the engine's bookkeeping.
    pub fn snapshot_store(&self) -> &SnapshotStore {
        &self.snapshots
    }

    /// Stage a writer action to fire when request `request` reaches
    /// `point` inside [`Engine::run_pending`] — the deterministic
    /// interleaving hook the chaos suite uses to force a publication
    /// between any two stages of a specific request. Staged writes
    /// fire in the sequential driver loop (never inside a parallel
    /// region), in the order they were staged; a write whose request
    /// never reaches its point stays staged. Failures are recorded in
    /// the engine trace, not raised — the harness asserts on the trace.
    pub fn stage_write(&mut self, point: PublishPoint, request: u64, op: WriteOp) {
        self.staged.push(StagedWrite { point, request, op });
    }

    /// Writer actions staged and not yet fired.
    pub fn staged_writes(&self) -> usize {
        self.staged.len()
    }

    /// Fire every staged write registered for (`point`, `request`), in
    /// staging order.
    fn fire_staged(&mut self, point: PublishPoint, request: u64) {
        if self.staged.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.staged.len() {
            if self.staged[i].point == point && self.staged[i].request == request {
                let w = self.staged.remove(i);
                self.trace.request_stage(
                    request,
                    format!("staged_write:{:?}", w.point).to_lowercase(),
                );
                let outcome = match w.op {
                    WriteOp::Delta(ops) => self
                        .update_graph_delta(&ops)
                        .map(|s| format!("delta published; epoch {}", s.epoch))
                        .unwrap_or_else(|e| format!("staged delta failed: {e}")),
                    WriteOp::Compact(order) => self
                        .compact(order)
                        .map(|s| format!("compaction published; epoch {}", s.epoch))
                        .unwrap_or_else(|e| format!("staged compaction failed: {e}")),
                };
                self.trace.note(outcome);
            } else {
                i += 1;
            }
        }
    }

    /// Queued (admitted, unanswered) request count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Work tokens currently available for new grants.
    pub fn available_tokens(&self) -> u64 {
        self.available
    }

    /// Service counters so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Engine-level trail of request lifecycle events.
    pub fn trace(&self) -> &Diagnostics {
        &self.trace
    }

    /// The hub-sketch store, when the sketch path is enabled.
    pub fn sketch_store(&self) -> Option<&SketchStore> {
        self.sketches.as_deref()
    }

    /// Answer-cache entries currently held.
    pub fn answer_cache_len(&self) -> usize {
        self.answers.len()
    }

    /// The sketch set to splice for a request pinned at `epoch` with
    /// `(alpha, eps)`, if `store` — the store the request pinned at
    /// admission — covers that combination. Stores are epoch-stamped
    /// and published alongside snapshots, so a request whose pinned
    /// store disagrees with its pinned epoch takes the raw push path
    /// against its own snapshot.
    fn splice_set(
        store: Option<&SketchStore>,
        alpha: f64,
        eps: f64,
        epoch: u64,
    ) -> Option<&SketchSet> {
        let store = store?;
        let set = store.set();
        (store.epoch() == epoch
            && !set.is_empty()
            && set.alpha().to_bits() == alpha.to_bits()
            && set.epsilon() < eps)
            .then_some(set)
    }

    /// Record a `Full`-quality answer for exact-repeat service, with
    /// FIFO eviction at the configured capacity.
    fn cache_answer(&mut self, key: AnswerKey, entry: AnswerEntry) {
        if self.cfg.answer_cache_cap == 0 {
            return;
        }
        self.expire_answers();
        if self.answers.insert(key.clone(), entry).is_none() {
            self.answer_order.push_back(key);
        }
        while self.answers.len() > self.cfg.answer_cache_cap {
            match self.answer_order.pop_front() {
                Some(old) => {
                    self.answers.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Expire answer-cache entries older than `cfg.answer_ttl`
    /// requests, oldest (FIFO front) first — the same order capacity
    /// eviction uses, so the two mechanisms never disagree about which
    /// entry goes next.
    fn expire_answers(&mut self) {
        let ttl = self.cfg.answer_ttl;
        if ttl == 0 {
            return;
        }
        let clock = self.request_clock;
        while let Some(front) = self.answer_order.front() {
            let expired = match self.answers.get(front) {
                Some(e) => clock.saturating_sub(e.born) > ttl,
                None => true,
            };
            if !expired {
                break;
            }
            if let Some(old) = self.answer_order.pop_front() {
                self.answers.remove(&old);
            }
        }
    }

    fn validate(&self, q: &Query) -> Result<(), String> {
        if !(q.alpha > 0.0 && q.alpha < 1.0) {
            return Err(format!("alpha must be in (0, 1), got {}", q.alpha));
        }
        if !(q.epsilon > 0.0 && q.epsilon.is_finite()) {
            return Err(format!("epsilon must be positive, got {}", q.epsilon));
        }
        if q.seeds.is_empty() {
            return Err("query needs at least one seed".into());
        }
        let head = self.head.graph();
        for &u in &q.seeds {
            if u as usize >= head.n() {
                return Err(format!("seed {u} out of range for |V| = {}", head.n()));
            }
            // Seeds arrive in external ids; degree is checked where the
            // diffusion will actually start.
            let internal = self.head.lineage().to_new(u);
            if head.degree(internal) <= 0.0 {
                return Err(format!("seed {u} has zero degree"));
            }
        }
        Ok(())
    }

    /// Admission control: bounded queue plus a token-bucket grant.
    ///
    /// The grant is the first (largest) share of
    /// `Budget::work(available).split_across(free_slots)` — splitting
    /// over the *free* queue slots keeps enough in reserve that a
    /// burst right behind this request is not automatically starved.
    /// Rejections are structural ([`Overloaded`]) and happen before
    /// any diffusion work is spent.
    pub fn submit(&mut self, query: Query) -> Admission {
        self.stats.submitted += 1;
        self.request_clock += 1;
        if let Err(detail) = self.validate(&query) {
            self.stats.rejected_invalid += 1;
            return Admission::Rejected(Overloaded {
                reason: RejectReason::InvalidQuery,
                detail,
            });
        }
        if self.queue.len() >= self.cfg.queue_cap {
            self.stats.rejected_queue_full += 1;
            return Admission::Rejected(Overloaded {
                reason: RejectReason::QueueFull,
                detail: format!("queue at capacity {}", self.cfg.queue_cap),
            });
        }
        let free = self.cfg.queue_cap - self.queue.len();
        let grant = Budget::work(self.available)
            .split_across(free)
            .first()
            .map_or(0, |b| b.max_work);
        if grant < self.cfg.min_grant {
            self.stats.rejected_starved += 1;
            return Admission::Rejected(Overloaded {
                reason: RejectReason::BudgetStarved,
                detail: format!(
                    "{} work tokens available across {free} free slots",
                    self.available
                ),
            });
        }
        self.available -= grant;
        let id = self.next_id;
        self.next_id += 1;
        let deadline = query.deadline.or(self.cfg.default_deadline);
        self.trace.request_stage(id, "admitted");
        self.queue.push_back(Pending {
            id,
            query,
            grant,
            deadline,
            admitted_at: Instant::now(),
            // Pin the head: this request now runs against this exact
            // snapshot (and sketch store) end-to-end, whatever writers
            // publish later.
            snapshot: Arc::clone(&self.head),
            sketches: self.sketches.clone(),
        });
        self.stats.admitted += 1;
        Admission::Accepted {
            id,
            granted_work: grant,
        }
    }

    /// Pick the ladder rung for a queued request: the finest ε whose
    /// estimated cost fits the grant, coarsening ×10 per rung. Returns
    /// `None` when the deadline has already expired — such a request
    /// skips compute entirely and goes straight to the cached/seed-only
    /// fallback. If even the coarsest rung cannot fit, the coarsest is
    /// attempted anyway and the meter truncates it into a certified
    /// partial.
    fn choose_rung(&self, p: &Pending) -> Option<(f64, Budget)> {
        let remaining = match p.deadline {
            Some(d) => {
                let left = d.saturating_sub(p.admitted_at.elapsed());
                if left.is_zero() {
                    return None;
                }
                Some(left)
            }
            None => None,
        };
        let mut eps_used = p.query.epsilon;
        for k in 0..=self.cfg.ladder_rungs {
            eps_used = p.query.epsilon * 10f64.powi(k as i32);
            if est_cost(eps_used, p.query.alpha) <= p.grant {
                break;
            }
        }
        let mut budget = Budget::work(p.grant);
        if let Some(left) = remaining {
            budget = budget.with_deadline(left);
        }
        Some((eps_used, budget))
    }

    /// Execute everything queued: ladder selection, lockstep batching
    /// of compatible requests, retry supervision, fallback service.
    /// Returns exactly one certified [`Response`] per queued request,
    /// in admission order, and refills the token bucket for the next
    /// cycle.
    pub fn run_pending(&mut self) -> Vec<Response> {
        self.expire_answers();
        let pending: Vec<Pending> = self.queue.drain(..).collect();
        let mut responses: Vec<Response> = Vec::with_capacity(pending.len());
        if pending.is_empty() {
            self.refill();
            return responses;
        }

        let mut computes: Vec<(Pending, f64, Budget)> = Vec::new();
        for p in pending {
            self.fire_staged(PublishPoint::BeforeCacheCheck, p.id);
            // Exact answer-cache hit: same seeds, α, ε, and epoch as an
            // earlier Full answer — served without compute (and without
            // consulting the deadline; a cache hit is free). Sits above
            // the Stale rung: keys are epoch-exact and the cache is
            // head-synchronized, so the entry's id space is exactly the
            // pinned snapshot's — a pre-mutation answer can never
            // surface here.
            let key = answer_key(&p.query.seeds, p.query.alpha, p.query.epsilon, p.epoch());
            if let Some(entry) = self.answers.get(&key).cloned() {
                self.trace.request_stage(p.id, "cache_hit");
                let sweep = self.sweep_stage(&p, &entry.vector);
                let cluster = externalize(&p.snapshot, entry.vector);
                let r = self.respond(
                    p,
                    ResponseKind::Cached,
                    entry.epsilon,
                    cluster,
                    entry.certificate,
                    0,
                    sweep,
                    Diagnostics::new(),
                );
                responses.push(r);
                continue;
            }
            match self.choose_rung(&p) {
                Some((eps_used, budget)) => {
                    if eps_used > p.query.epsilon {
                        self.trace
                            .request_stage(p.id, format!("degraded:eps={eps_used:e}"));
                    }
                    computes.push((p, eps_used, budget));
                }
                None => {
                    self.trace.request_stage(p.id, "deadline_expired");
                    let r = self.fallback_response(p, Diagnostics::new());
                    responses.push(r);
                }
            }
        }

        // Coalesce compatible requests (same α, same ε rung, same
        // pinned epoch) into one lockstep batch call for attempt 0.
        // BTreeMap keys keep group order deterministic. Same epoch ⇒
        // same published snapshot, so the whole group shares one
        // pinned graph — including groups whose snapshot has since
        // been superseded: they batch and execute against their own
        // snapshot, exactly as if the writer had never published.
        let mut groups: BTreeMap<(u64, u64, u64), Vec<usize>> = BTreeMap::new();
        for (i, (p, eps, _)) in computes.iter().enumerate() {
            groups
                .entry((p.query.alpha.to_bits(), eps.to_bits(), p.epoch()))
                .or_default()
                .push(i);
        }
        let mut firsts: Vec<Option<SolverOutcome<PushResult>>> =
            (0..computes.len()).map(|_| None).collect();
        for idxs in groups.values() {
            for &i in idxs {
                self.fire_staged(PublishPoint::BeforeBatch, computes[i].0.id);
            }
            let snap = Arc::clone(&computes[idxs[0]].0.snapshot);
            let pinned_store = computes[idxs[0]].0.sketches.clone();
            let alpha = computes[idxs[0]].0.query.alpha;
            let eps = computes[idxs[0]].1;
            let splice =
                Engine::splice_set(pinned_store.as_deref(), alpha, eps, snap.epoch()).is_some();
            if splice {
                for &i in idxs {
                    self.trace.request_stage(computes[i].0.id, "splice");
                }
                self.stats.spliced += idxs.len() as u64;
            }
            let seed_sets: Vec<Vec<NodeId>> = idxs
                .iter()
                .map(|&i| computes[i].0.internal_seeds())
                .collect();
            if self.cfg.chaos.is_none() && !splice {
                let budgets: Vec<Budget> = idxs.iter().map(|&i| computes[i].2).collect();
                if let Ok(outs) =
                    ppr_push_batch_outcomes(snap.graph(), &seed_sets, alpha, eps, &budgets)
                {
                    for (&slot, out) in idxs.iter().zip(outs) {
                        firsts[slot] = Some(out);
                    }
                }
            } else {
                // Chaos- or sketch-instrumented lockstep call: same
                // per-item budgeted/guarded context as the batch entry
                // point, plus the fault hooks and (attempt 0 only) the
                // sketch splice, each item behind its own fence.
                let g = snap.graph();
                let chaos = self.cfg.chaos.as_ref();
                let spmv = self.cfg.spmv;
                let set = if splice {
                    pinned_store.as_deref().map(|s| s.set())
                } else {
                    None
                };
                let positions: Vec<usize> = (0..idxs.len()).collect();
                let outs = acir_exec::ExecPool::from_env().par_map(&positions, 1, |&k| {
                    let i = idxs[k];
                    let (p, e, b) = &computes[i];
                    supervised_attempt(
                        g,
                        chaos,
                        spmv,
                        set,
                        p.id,
                        &seed_sets[k],
                        p.query.alpha,
                        *e,
                        b,
                        0,
                    )
                });
                for (&slot, out) in idxs.iter().zip(outs) {
                    firsts[slot] = Some(out);
                }
            }
        }

        for ((p, eps_used, budget), first) in computes.into_iter().zip(firsts) {
            self.fire_staged(PublishPoint::BeforeSupervise, p.id);
            let id = p.id;
            let r = self.supervise(p, eps_used, budget, first);
            responses.push(r);
            self.fire_staged(PublishPoint::AfterRespond, id);
        }

        self.refill();
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// Drain the queue and return every outstanding response. The
    /// admitted-means-answered invariant holds through shutdown.
    pub fn shutdown(mut self) -> Vec<Response> {
        let responses = self.run_pending();
        debug_assert!(self.queue.is_empty());
        responses
    }

    fn refill(&mut self) {
        self.available = self
            .available
            .saturating_add(self.cfg.refill_per_cycle)
            .min(self.cfg.capacity);
    }

    /// Retry supervision for one request: the batched attempt 0 feeds a
    /// [`RetryPolicy`] loop (panics and NaNs arrive as `Diverged`),
    /// with exponential backoff between attempts and the whole trail
    /// carried into the surviving outcome. A request that exhausts its
    /// attempts falls through to the cached/seed-only rungs — it still
    /// gets a certified response.
    fn supervise(
        &mut self,
        p: Pending,
        eps_used: f64,
        budget: Budget,
        first: Option<SolverOutcome<PushResult>>,
    ) -> Response {
        let policy = RetryPolicy::attempts(self.cfg.max_attempts).with_backoff(self.cfg.backoff);
        let seeds_internal = p.internal_seeds();
        let out = {
            let g = p.snapshot.graph();
            let chaos = self.cfg.chaos.as_ref();
            let spmv = self.cfg.spmv;
            let mut first = first;
            let run: Result<_, std::convert::Infallible> = policy.run(|k| {
                Ok(match first.take() {
                    Some(o) if k == 0 => o,
                    // Retries (and solo first attempts) always take the
                    // raw push path against the pinned snapshot: a
                    // fault during a splice degrades to raw push before
                    // descending the ladder, and a writer publishing
                    // mid-retry never changes what this request sees.
                    _ => supervised_attempt(
                        g,
                        chaos,
                        spmv,
                        None,
                        p.id,
                        &seeds_internal,
                        p.query.alpha,
                        eps_used,
                        &budget,
                        k,
                    ),
                })
            });
            match run {
                Ok(out) => out,
                Err(never) => match never {},
            }
        };

        let retries = out.diagnostics().restarts;
        self.stats.retries += retries as u64;
        let panics = out
            .diagnostics()
            .events
            .iter()
            .filter(|e| e.contains("worker panic:"))
            .count() as u64;
        self.stats.panics_caught += panics;
        self.stats.faults_detected += out.diagnostics().metrics.counter("faults_injected");

        match out {
            SolverOutcome::Converged { value, diagnostics } => {
                let certificate = Certificate::ResidualMass {
                    remaining: value.residual_mass,
                    per_degree_bound: eps_used,
                };
                let sweep = self.sweep_stage(&p, &value.vector);
                // Exact-repeat cache, keyed by the ε the answer
                // satisfies (== requested for Full responses). The
                // residual vector rides along so an edge delta can
                // repair the entry instead of purging it. Payloads are
                // stored in head-internal coordinates, so only answers
                // computed against the current head may enter — a
                // response from a superseded snapshot is still served
                // in full, it just isn't cached.
                if p.epoch() == self.head.epoch() {
                    let key = answer_key(&p.query.seeds, p.query.alpha, eps_used, p.epoch());
                    let seeds = if p.snapshot.is_relabeled() {
                        p.snapshot.lineage().map_nodes(&key.0)
                    } else {
                        key.0.clone()
                    };
                    self.cache_answer(
                        key,
                        AnswerEntry {
                            epsilon: eps_used,
                            vector: value.vector.clone(),
                            certificate,
                            seeds,
                            residuals: value.residuals.clone(),
                            born: self.request_clock,
                        },
                    );
                }
                let external = externalize(&p.snapshot, value.vector);
                self.cache.insert(
                    cache_key(&p.query.seeds, p.query.alpha),
                    CacheEntry {
                        epoch: p.epoch(),
                        epsilon: eps_used,
                        vector: external.clone(),
                        certificate,
                    },
                );
                let kind = if eps_used > p.query.epsilon {
                    ResponseKind::Coarsened
                } else {
                    ResponseKind::Full
                };
                self.respond(
                    p,
                    kind,
                    eps_used,
                    external,
                    certificate,
                    retries,
                    sweep,
                    diagnostics,
                )
            }
            SolverOutcome::BudgetExhausted {
                best_so_far,
                certificate,
                diagnostics,
                ..
            } => {
                let sweep = self.sweep_stage(&p, &best_so_far.vector);
                let external = externalize(&p.snapshot, best_so_far.vector);
                self.respond(
                    p,
                    ResponseKind::Partial,
                    eps_used,
                    external,
                    certificate,
                    retries,
                    sweep,
                    diagnostics,
                )
            }
            SolverOutcome::Diverged { diagnostics, .. } => self.fallback_response(p, diagnostics),
        }
    }

    /// The bottom of the ladder: a cached earlier answer for the same
    /// seeds and α if one exists (served as `Stale`), otherwise the
    /// seed distribution itself with a trivial certificate — zero
    /// pushes, residual mass 1: the most regularized answer the engine
    /// can give, but still an answer, never an error.
    fn fallback_response(&mut self, p: Pending, mut diags: Diagnostics) -> Response {
        let retries = diags.restarts;
        if let Some(entry) = self.cache.get(&cache_key(&p.query.seeds, p.query.alpha)) {
            diags.note(format!(
                "serving cached answer (epoch {}, ε = {:e})",
                entry.epoch, entry.epsilon
            ));
            // The Stale rung always labels the answer with the epoch it
            // was certified against — a stale answer never masquerades
            // as a fresh bound.
            let (vector, certificate, epsilon) = (
                entry.vector.clone(),
                entry.certificate.staled(entry.epoch),
                entry.epsilon,
            );
            return self.respond(
                p,
                ResponseKind::Stale,
                epsilon,
                vector,
                certificate,
                retries,
                None,
                diags,
            );
        }
        diags.note("seed-only fallback: serving the seed distribution");
        let mut mass: BTreeMap<NodeId, f64> = BTreeMap::new();
        let share = 1.0 / p.query.seeds.len() as f64;
        for &u in &p.query.seeds {
            *mass.entry(u).or_insert(0.0) += share;
        }
        let vector: Vec<(NodeId, f64)> = mass.into_iter().collect();
        let certificate = Certificate::ResidualMass {
            remaining: 1.0,
            per_degree_bound: 1.0,
        };
        let epsilon = p.query.epsilon;
        self.respond(
            p,
            ResponseKind::SeedOnly,
            epsilon,
            vector,
            certificate,
            retries,
            None,
            diags,
        )
    }

    /// Optional sweep-cut stage: when the query opted in, run
    /// [`sweep_cut_sparse`] over the support of the diffusion vector
    /// (in the pinned snapshot's internal id space) and map the
    /// best-conductance set back to external ids through the
    /// snapshot's lineage.
    fn sweep_stage(&mut self, p: &Pending, vector: &[(NodeId, f64)]) -> Option<SweepCut> {
        if !p.query.options.sweep || vector.is_empty() {
            return None;
        }
        let sr = sweep_cut_sparse(p.snapshot.graph(), vector);
        if sr.set.is_empty() {
            return None;
        }
        let set = if p.snapshot.is_relabeled() {
            p.snapshot.lineage().unmap_nodes(&sr.set)
        } else {
            sr.set
        };
        self.trace.request_stage(p.id, "sweep");
        Some(SweepCut {
            set,
            conductance: sr.conductance,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &mut self,
        p: Pending,
        kind: ResponseKind,
        epsilon_used: f64,
        cluster: Vec<(NodeId, f64)>,
        certificate: Certificate,
        retries: usize,
        sweep: Option<SweepCut>,
        mut diagnostics: Diagnostics,
    ) -> Response {
        // Best-effort refund of unspent work tokens (counters reflect
        // the surviving attempt).
        let used = diagnostics.work;
        self.available = self
            .available
            .saturating_add(p.grant.saturating_sub(used))
            .min(self.cfg.capacity);
        diagnostics.certificate_issued(&certificate);
        diagnostics.request_stage(p.id, format!("responded:{}", kind.name()));
        self.trace.certificate_issued(&certificate);
        self.trace
            .request_stage(p.id, format!("responded:{}", kind.name()));
        match kind {
            ResponseKind::Full => self.stats.full += 1,
            ResponseKind::Cached => self.stats.cached += 1,
            ResponseKind::Coarsened => self.stats.coarsened += 1,
            ResponseKind::Partial => self.stats.partial += 1,
            ResponseKind::Stale => self.stats.stale += 1,
            ResponseKind::SeedOnly => self.stats.seed_only += 1,
        }
        self.stats.responded += 1;
        Response {
            id: p.id,
            kind,
            epsilon_requested: p.query.epsilon,
            epsilon_used,
            cluster,
            certificate,
            retries,
            latency: p.admitted_at.elapsed(),
            sweep,
            diagnostics,
        }
    }
}

/// Translate an edge op's endpoints from external (root) ids into the
/// snapshot's internal labeling. Endpoints outside the vertex range
/// are passed through unchanged so the delta overlay rejects them
/// with its own error message.
fn internalize_op(snap: &GraphSnapshot, op: &EdgeOp) -> EdgeOp {
    if !snap.is_relabeled() {
        return *op;
    }
    let n = snap.graph().n();
    let m = |x: NodeId| {
        if (x as usize) < n {
            snap.lineage().to_new(x)
        } else {
            x
        }
    };
    match *op {
        EdgeOp::Insert { u, v, weight } => EdgeOp::Insert {
            u: m(u),
            v: m(v),
            weight,
        },
        EdgeOp::Delete { u, v } => EdgeOp::Delete { u: m(u), v: m(v) },
    }
}

/// Map a sparse vector from a snapshot's internal id space back to
/// external (root) ids. Identity lineage is a free pass-through, so
/// never-compacted graphs keep responses bit-identical to the
/// pre-snapshot engine.
fn externalize(snap: &GraphSnapshot, v: Vec<(NodeId, f64)>) -> Vec<(NodeId, f64)> {
    if snap.is_relabeled() {
        snap.lineage().unmap_sparse(&v)
    } else {
        v
    }
}

/// One supervised attempt: chaos hooks, the budgeted/guarded push, NaN
/// injection, and response validation — all behind a panic fence, so
/// the only ways out are a [`SolverOutcome`] or a caught panic turned
/// into `Diverged` with the cause in the event trail.
#[allow(clippy::too_many_arguments)]
fn supervised_attempt(
    g: &Graph,
    chaos: Option<&ChaosConfig>,
    spmv: Option<SpmvLayout>,
    sketches: Option<&SketchSet>,
    id: u64,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    budget: &Budget,
    attempt: usize,
) -> SolverOutcome<PushResult> {
    let fenced = acir_exec::panic_fence(|| {
        if let Some(c) = chaos {
            if c.panics(id, attempt) {
                panic!("chaos: injected worker panic (request {id}, attempt {attempt})");
            }
        }
        let mut ctx = KernelCtx::budgeted("serve.query", budget)
            .with_guard(GuardConfig::contamination_only());
        if let Some(layout) = spmv {
            ctx = ctx.with_spmv_layout(layout);
        }
        // Ambient for every sparse product this attempt performs (and
        // recorded in the trace); the push kernel itself is a local
        // sweep, but degraded rungs and future kernels inherit it.
        let _spmv = ctx.spmv_scope();
        match sketches {
            Some(set) => ppr_push_spliced_ctx(g, seeds, alpha, epsilon, set, &mut ctx)
                .map(|o| o.map(PushResult::from)),
            None => ppr_push_ctx(g, seeds, alpha, epsilon, &mut ctx),
        }
    });
    let mut out = match fenced {
        Ok(Ok(out)) => out,
        Ok(Err(err)) => {
            let mut diags = Diagnostics::new();
            diags.note(format!("query error: {err}"));
            return SolverOutcome::diverged(
                DivergenceCause::Breakdown {
                    at_iter: 0,
                    what: "query returned an error",
                },
                diags,
            );
        }
        Err(panic_msg) => {
            let mut diags = Diagnostics::new();
            diags.note(format!("worker panic: {panic_msg}"));
            return SolverOutcome::diverged(
                DivergenceCause::Breakdown {
                    at_iter: 0,
                    what: "worker panicked",
                },
                diags,
            );
        }
    };
    // Injected result corruption: physically poison one entry, then
    // let the shared validation below catch it — the same path that
    // catches a real NaN slipping past the kernel guard.
    if chaos.is_some_and(|c| c.corrupts(id, attempt)) {
        out = match out {
            SolverOutcome::Converged {
                mut value,
                diagnostics,
            } => {
                poison(&mut value);
                SolverOutcome::Converged { value, diagnostics }
            }
            SolverOutcome::BudgetExhausted {
                mut best_so_far,
                exhausted,
                certificate,
                diagnostics,
            } => {
                poison(&mut best_so_far);
                SolverOutcome::BudgetExhausted {
                    best_so_far,
                    exhausted,
                    certificate,
                    diagnostics,
                }
            }
            d => d,
        };
        out.diagnostics_mut().fault_injected("nan", 1);
    }
    // Response validation: a non-finite value must never reach a
    // client; it becomes a structured divergence the supervisor
    // retries.
    if let Some(v) = out.value() {
        if v.vector.iter().any(|&(_, x)| !x.is_finite()) {
            let mut diags = out.diagnostics().clone();
            diags.note("non-finite value detected while validating the computed cluster");
            return SolverOutcome::diverged(
                DivergenceCause::NonFiniteIterate { at_iter: 0 },
                diags,
            );
        }
    }
    out
}

fn poison(r: &mut PushResult) {
    if let Some(slot) = r.vector.first_mut() {
        slot.1 = f64::NAN;
    } else {
        r.vector.push((0, f64::NAN));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use acir_graph::gen::deterministic::{barbell, cycle};
    use acir_local::push::ppr_push_budgeted;

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(prev);
        r
    }

    // ε chosen so the worst-case cost (~4e3) fits the default per-slot
    // grant (1M / 64 slots) and converges at the top rung.
    fn query(seeds: &[NodeId]) -> Query {
        Query {
            seeds: seeds.to_vec(),
            alpha: 0.1,
            epsilon: 1e-2,
            deadline: None,
            options: QueryOptions::default(),
        }
    }

    #[test]
    fn admission_sheds_load_at_every_gate() {
        let g = barbell(6, 2).unwrap();
        let cfg = EngineConfig {
            queue_cap: 2,
            capacity: 100_000,
            min_grant: 64,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(g, cfg);
        // Malformed queries are a structural rejection.
        let bad = e.submit(Query {
            alpha: 1.5,
            ..query(&[0])
        });
        assert!(matches!(
            bad,
            Admission::Rejected(Overloaded {
                reason: RejectReason::InvalidQuery,
                ..
            })
        ));
        assert!(!e.submit(query(&[999])).is_accepted());
        // Fill the bounded queue.
        assert!(e.submit(query(&[0])).is_accepted());
        assert!(e.submit(query(&[1])).is_accepted());
        let full = e.submit(query(&[2]));
        assert!(matches!(
            full,
            Admission::Rejected(Overloaded {
                reason: RejectReason::QueueFull,
                ..
            })
        ));
        assert_eq!(e.stats().admitted, 2);
        assert_eq!(e.stats().rejected_queue_full, 1);
        assert_eq!(e.stats().rejected_invalid, 2);

        // Budget starvation: 100 tokens across 4 free slots is a
        // 25-token share, below min_grant — rejected before any work.
        let g2 = barbell(6, 2).unwrap();
        let mut starved = Engine::new(
            g2,
            EngineConfig {
                queue_cap: 4,
                capacity: 100,
                refill_per_cycle: 0,
                min_grant: 64,
                ..EngineConfig::default()
            },
        );
        let a = starved.submit(query(&[1]));
        assert!(matches!(
            a,
            Admission::Rejected(Overloaded {
                reason: RejectReason::BudgetStarved,
                ..
            })
        ));
    }

    #[test]
    fn batched_responses_bit_identical_to_solo_path() {
        let g = barbell(8, 3).unwrap();
        let cfg = EngineConfig {
            queue_cap: 8,
            capacity: 1_000_000,
            ..EngineConfig::default()
        };
        for threads in ["1", "4"] {
            std::env::set_var(acir_exec::THREADS_ENV, threads);
            let mut e = Engine::new(g.clone(), cfg.clone());
            let seeds: Vec<Vec<NodeId>> = vec![vec![0], vec![7, 9], vec![3]];
            let grants: Vec<u64> = seeds
                .iter()
                .map(|s| match e.submit(query(s)) {
                    Admission::Accepted { granted_work, .. } => granted_work,
                    r => panic!("not admitted: {r:?}"),
                })
                .collect();
            let responses = e.run_pending();
            assert_eq!(responses.len(), 3);
            for ((r, s), grant) in responses.iter().zip(&seeds).zip(&grants) {
                assert_eq!(r.kind, ResponseKind::Full, "at {threads} threads");
                let solo = ppr_push_budgeted(&g, s, 0.1, 1e-2, &Budget::work(*grant)).unwrap();
                let want = &solo.value().unwrap().vector;
                assert_eq!(&r.cluster, want, "at {threads} threads");
                match r.certificate {
                    Certificate::ResidualMass { remaining, .. } => assert_eq!(
                        remaining.to_bits(),
                        solo.value().unwrap().residual_mass.to_bits()
                    ),
                    c => panic!("wrong certificate {c:?}"),
                }
            }
            std::env::remove_var(acir_exec::THREADS_ENV);
        }
    }

    #[test]
    fn ladder_degrades_instead_of_erroring_under_tiny_grants() {
        let g = barbell(10, 4).unwrap();
        let cfg = EngineConfig {
            queue_cap: 1,
            capacity: 600,
            min_grant: 1,
            ladder_rungs: 2,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(g, cfg);
        // Requested ε = 1e-5 needs ~4e6 work; even the coarsest rung
        // (1e-3 → ~4e4) exceeds the 600-token grant.
        let q = Query {
            epsilon: 1e-5,
            ..query(&[0])
        };
        assert!(e.submit(q).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        assert!(r.kind.is_degraded(), "kind {:?}", r.kind);
        assert!(r.epsilon_used >= r.epsilon_requested);
        assert!(matches!(r.certificate, Certificate::ResidualMass { .. }));
        assert_eq!(e.stats().responded, 1);
        assert_eq!(e.stats().degraded(), 1);
    }

    #[test]
    fn expired_deadline_serves_fallback_then_stale_cache() {
        let g = barbell(6, 2).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                queue_cap: 4,
                ..EngineConfig::default()
            },
        );
        // Cold cache + already-expired deadline → seed-only.
        let dead = Query {
            deadline: Some(Duration::ZERO),
            ..query(&[0, 0, 3])
        };
        assert!(e.submit(dead.clone()).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs[0].kind, ResponseKind::SeedOnly);
        // Duplicate seeds aggregate; the distribution sums to 1.
        let total: f64 = rs[0].cluster.iter().map(|&(_, x)| x).sum();
        assert!((total - 1.0).abs() < 1e-12);
        match rs[0].certificate {
            Certificate::ResidualMass { remaining, .. } => assert_eq!(remaining, 1.0),
            c => panic!("wrong certificate {c:?}"),
        }
        // Warm the cache with the same seeds. An exact repeat — even a
        // dead one — is now an answer-cache hit: Cached, not degraded.
        assert!(e.submit(query(&[0, 0, 3])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        assert!(e.submit(dead.clone()).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs[0].kind, ResponseKind::Cached);
        assert!(!rs[0].kind.is_degraded());
        // A graph swap invalidates the answer cache; the (seeds, α)
        // stale cache survives the swap but labels its answer with the
        // epoch it was certified against.
        e.update_graph(barbell(6, 2).unwrap());
        assert!(e.submit(dead).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs[0].kind, ResponseKind::Stale);
        match rs[0].certificate {
            Certificate::StaleResidualMass { epoch, .. } => assert_eq!(epoch, 0),
            c => panic!("wrong certificate {c:?}"),
        }
        assert_eq!(e.stats().seed_only, 1);
        assert_eq!(e.stats().cached, 1);
        assert_eq!(e.stats().stale, 1);
    }

    #[test]
    fn answer_cache_serves_exact_repeats_bit_identically() {
        let g = barbell(6, 2).unwrap();
        let mut e = Engine::new(g, EngineConfig::default());
        assert!(e.submit(query(&[0, 3])).is_accepted());
        let first = e.run_pending().remove(0);
        assert_eq!(first.kind, ResponseKind::Full);
        assert_eq!(e.answer_cache_len(), 1);
        // Exact repeat (seed order and duplicates don't matter): served
        // from the answer cache, bit-identical, zero work spent.
        assert!(e.submit(query(&[3, 0, 0])).is_accepted());
        let again = e.run_pending().remove(0);
        assert_eq!(again.kind, ResponseKind::Cached);
        assert!(!again.kind.is_degraded());
        assert_eq!(again.cluster, first.cluster);
        assert_eq!(again.certificate, first.certificate);
        assert_eq!(e.stats().cached, 1);
        // A different ε is a different answer — cache miss.
        assert!(e
            .submit(Query {
                epsilon: 5e-3,
                ..query(&[0, 3])
            })
            .is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        assert_eq!(e.stats().cached, 1);
        assert_eq!(e.answer_cache_len(), 2);
    }

    #[test]
    fn epoch_bump_invalidates_answers_and_rebuilds_sketches() {
        let g = barbell(6, 2).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                sketch_hubs: 4,
                ..EngineConfig::default()
            },
        );
        let store = e.sketch_store().expect("sketches configured");
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.len(), 4);
        assert!(e.submit(query(&[0])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        assert_eq!(e.answer_cache_len(), 1);
        // The swap purges every pre-mutation answer and restamps the
        // sketches; the repeat recomputes (Full, current-epoch
        // certificate), never serving the old answer as fresh.
        e.update_graph(barbell(6, 2).unwrap());
        assert_eq!(e.answer_cache_len(), 0);
        assert_eq!(e.sketch_store().unwrap().epoch(), 1);
        assert!(e.submit(query(&[0])).is_accepted());
        let r = e.run_pending().remove(0);
        assert_eq!(r.kind, ResponseKind::Full);
        assert!(matches!(r.certificate, Certificate::ResidualMass { .. }));
        assert_eq!(e.stats().cached, 0);
    }

    #[test]
    fn spliced_first_attempt_matches_direct_push_within_bound() {
        let g = barbell(6, 2).unwrap();
        let direct = acir_local::ppr_push(&g, &[0], 0.1, 1e-2).unwrap();
        let mut e = Engine::new(
            g.clone(),
            EngineConfig {
                sketch_hubs: 3,
                ..EngineConfig::default()
            },
        );
        assert!(e.submit(query(&[0])).is_accepted());
        let r = e.run_pending().remove(0);
        assert_eq!(r.kind, ResponseKind::Full);
        assert_eq!(e.stats().spliced, 1);
        match r.certificate {
            Certificate::ResidualMass {
                per_degree_bound, ..
            } => assert!(per_degree_bound <= 1e-2),
            c => panic!("wrong certificate {c:?}"),
        }
        // Both answers are within ε·deg of the exact PPR vector, so
        // they are within 2ε·deg of each other.
        let spliced: std::collections::HashMap<NodeId, f64> = r.cluster.into_iter().collect();
        let exact: std::collections::HashMap<NodeId, f64> = direct.vector.iter().copied().collect();
        for u in 0..g.n() as NodeId {
            let d = g.degree(u) as f64;
            let a = spliced.get(&u).copied().unwrap_or(0.0);
            let b = exact.get(&u).copied().unwrap_or(0.0);
            assert!(
                (a - b).abs() <= 2.0 * 1e-2 * d + 1e-12,
                "node {u}: spliced {a} vs direct {b}"
            );
        }
    }

    #[test]
    fn injected_panic_is_retried_to_success() {
        quiet(|| {
            let g = barbell(6, 2).unwrap();
            let mut chaos = ChaosConfig::default();
            chaos.forced_panics.insert((0, 0));
            let mut e = Engine::new(
                g,
                EngineConfig {
                    chaos: Some(chaos),
                    max_attempts: 3,
                    ..EngineConfig::default()
                },
            );
            assert!(e.submit(query(&[0])).is_accepted());
            let rs = e.run_pending();
            assert_eq!(rs[0].kind, ResponseKind::Full);
            assert_eq!(rs[0].retries, 1);
            assert!(rs[0]
                .diagnostics
                .events
                .iter()
                .any(|ev| ev.contains("worker panic:")));
            assert_eq!(e.stats().panics_caught, 1);
            assert_eq!(e.stats().retries, 1);
        });
    }

    #[test]
    fn persistent_panics_exhaust_retries_into_certified_fallback() {
        quiet(|| {
            let g = barbell(6, 2).unwrap();
            let mut chaos = ChaosConfig::default();
            for attempt in 0..3 {
                chaos.forced_panics.insert((0, attempt));
            }
            let mut e = Engine::new(
                g,
                EngineConfig {
                    chaos: Some(chaos),
                    max_attempts: 3,
                    ..EngineConfig::default()
                },
            );
            assert!(e.submit(query(&[0])).is_accepted());
            let rs = e.run_pending();
            assert_eq!(rs.len(), 1);
            assert_eq!(rs[0].kind, ResponseKind::SeedOnly);
            assert!(matches!(
                rs[0].certificate,
                Certificate::ResidualMass { remaining, .. } if remaining == 1.0
            ));
            assert_eq!(rs[0].retries, 2);
            assert_eq!(e.stats().panics_caught, 3);
        });
    }

    #[test]
    fn nan_injection_is_detected_and_retried() {
        let g = barbell(6, 2).unwrap();
        let mut chaos = ChaosConfig::default();
        chaos.forced_nans.insert((0, 0));
        let mut e = Engine::new(
            g.clone(),
            EngineConfig {
                chaos: Some(chaos),
                ..EngineConfig::default()
            },
        );
        assert!(e.submit(query(&[0])).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs[0].kind, ResponseKind::Full);
        assert_eq!(rs[0].retries, 1);
        assert!(e.stats().faults_detected >= 1);
        // The served cluster is clean — and identical to an unfaulted
        // engine's answer.
        assert!(rs[0].cluster.iter().all(|&(_, x)| x.is_finite()));
        let mut clean = Engine::new(g, EngineConfig::default());
        assert!(clean.submit(query(&[0])).is_accepted());
        assert_eq!(clean.run_pending()[0].cluster, rs[0].cluster);
    }

    #[test]
    fn every_admitted_request_gets_exactly_one_response() {
        quiet(|| {
            let g = cycle(40).unwrap();
            let mut e = Engine::new(
                g,
                EngineConfig {
                    queue_cap: 8,
                    capacity: 20_000,
                    refill_per_cycle: 20_000,
                    min_grant: 16,
                    chaos: Some(ChaosConfig::with_rates(13, 0.3, 0.3)),
                    ..EngineConfig::default()
                },
            );
            let mut admitted = Vec::new();
            let mut answered = Vec::new();
            for wave in 0..4u32 {
                for i in 0..12u32 {
                    let q = query(&[((wave * 12 + i) % 40)]);
                    if let Admission::Accepted { id, .. } = e.submit(q) {
                        admitted.push(id);
                    }
                }
                for r in e.run_pending() {
                    answered.push(r.id);
                    assert!(matches!(r.certificate, Certificate::ResidualMass { .. }));
                }
            }
            answered.extend(e.shutdown().into_iter().map(|r| r.id));
            answered.sort_unstable();
            admitted.sort_unstable();
            assert_eq!(answered, admitted);
        });
    }

    #[test]
    fn unused_tokens_are_refunded() {
        let g = barbell(6, 2).unwrap();
        let cap = 100_000;
        let mut e = Engine::new(
            g,
            EngineConfig {
                queue_cap: 4,
                capacity: cap,
                refill_per_cycle: 0,
                ..EngineConfig::default()
            },
        );
        let grant = match e.submit(query(&[0])) {
            Admission::Accepted { granted_work, .. } => granted_work,
            r => panic!("not admitted: {r:?}"),
        };
        assert_eq!(e.available_tokens(), cap - grant);
        let rs = e.run_pending();
        let used = rs[0].diagnostics.work;
        assert!(used > 0 && used < grant);
        assert_eq!(e.available_tokens(), cap - used);
    }

    #[test]
    fn answer_ttl_expires_entries_in_fifo_order() {
        let g = barbell(8, 2).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                answer_ttl: 3,
                ..EngineConfig::default()
            },
        );
        // Three answers cached at clocks 1, 2, 3 (one submit each).
        for s in [0u32, 1, 2] {
            assert!(e.submit(query(&[s])).is_accepted());
            assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        }
        assert_eq!(e.answer_cache_len(), 3);
        // Clock 4: entry born at 1 is exactly ttl old — still alive.
        assert!(e.submit(query(&[0])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Cached);
        // Clock 5: the oldest entry (seed 0, born 1) crosses the TTL
        // and expires; the younger two survive. FIFO order is pinned:
        // seed 0 goes first, never seed 1 or 2.
        assert!(e.submit(query(&[3])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        assert_eq!(e.answer_cache_len(), 3); // 1, 2, and the new 3
        assert!(e.submit(query(&[0])).is_accepted());
        // Recomputed, not cached: its entry expired.
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        // Seed 2 (born 3, clock now 7) is also gone; seed 3 (born 5)
        // survives.
        assert!(e.submit(query(&[3])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Cached);
    }

    #[test]
    fn delta_repairs_answers_and_sketches_instead_of_purging() {
        let g = barbell(8, 3).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                sketch_hubs: 0, // raw-push answers carry residuals
                ..EngineConfig::default()
            },
        );
        assert!(e.submit(query(&[0])).is_accepted());
        let before = e.run_pending().remove(0);
        assert_eq!(before.kind, ResponseKind::Full);
        assert_eq!(e.answer_cache_len(), 1);

        // Reweight an edge inside clique B — far from seed 0.
        let ops = [EdgeOp::Insert {
            u: 12,
            v: 13,
            weight: 2.0,
        }];
        let s = e.update_graph_delta(&ops).unwrap();
        assert_eq!(s.epoch, 1);
        assert_eq!(e.epoch(), 1);
        assert_eq!(s.edges, 1);
        assert_eq!(s.answers_revalidated + s.answers_repaired, 1);
        assert_eq!(s.answers_dropped, 0);
        // The entry survived the delta, re-keyed to the new epoch: an
        // exact repeat is a cache hit, not a recompute.
        assert_eq!(e.answer_cache_len(), 1);
        assert!(e.submit(query(&[0])).is_accepted());
        let after = e.run_pending().remove(0);
        assert_eq!(after.kind, ResponseKind::Cached);
        // The repaired answer satisfies the requested ε on the *new*
        // graph: compare to a fresh push.
        let fresh = acir_local::ppr_push(e.graph(), &[0], 0.1, 1e-2).unwrap();
        let got: std::collections::HashMap<NodeId, f64> = after.cluster.into_iter().collect();
        let want: std::collections::HashMap<NodeId, f64> = fresh.vector.into_iter().collect();
        for u in 0..e.graph().n() as NodeId {
            let d = e.graph().degree(u);
            let a = got.get(&u).copied().unwrap_or(0.0);
            let b = want.get(&u).copied().unwrap_or(0.0);
            assert!(
                (a - b).abs() <= 2.0 * 1e-2 * d + 1e-12,
                "node {u}: repaired {a} vs fresh {b}"
            );
        }
    }

    #[test]
    fn empty_net_delta_is_a_no_op_and_bad_ops_are_atomic() {
        let g = barbell(6, 2).unwrap();
        let mut e = Engine::new(g, EngineConfig::default());
        assert!(e.submit(query(&[0])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
        // Insert + delete cancel: no epoch bump, cache intact.
        let ops = [
            EdgeOp::Insert {
                u: 0,
                v: 9,
                weight: 1.0,
            },
            EdgeOp::Delete { u: 0, v: 9 },
        ];
        let s = e.update_graph_delta(&ops).unwrap();
        assert_eq!(s, DeltaSummary::default());
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.answer_cache_len(), 1);
        // A malformed op rejects the whole delta before any state
        // changes — even ops earlier in the stream are not applied.
        let bad = [
            EdgeOp::Insert {
                u: 0,
                v: 5,
                weight: 2.0,
            },
            EdgeOp::Insert {
                u: 0,
                v: 999,
                weight: 1.0,
            },
        ];
        assert!(e.update_graph_delta(&bad).is_err());
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.graph().edge_weight(0, 5), 1.0);
        assert_eq!(e.answer_cache_len(), 1);
    }

    #[test]
    fn delta_repairs_hub_sketches_in_place() {
        let g = barbell(10, 3).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                sketch_hubs: 4,
                sketch_epsilon: 1e-4,
                ..EngineConfig::default()
            },
        );
        assert_eq!(e.sketch_store().unwrap().epoch(), 0);
        let ops = [EdgeOp::Insert {
            u: 14,
            v: 20,
            weight: 3.0,
        }];
        let s = e.update_graph_delta(&ops).unwrap();
        assert!(!s.sketches_rebuilt);
        assert_eq!(
            s.sketches_repaired + s.sketches_untouched + s.sketch_fallbacks,
            4
        );
        let store = e.sketch_store().unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 4);
        // Splice-born cache entries store no residuals; the engine must
        // still answer correctly after the delta (sketches repaired,
        // splice still live).
        assert!(e.submit(query(&[0])).is_accepted());
        assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
    }

    #[test]
    fn forced_repair_fault_falls_back_to_full_rebuild() {
        let g = barbell(8, 2).unwrap();
        let mut chaos = ChaosConfig::default();
        chaos.forced_repair_faults.insert(1); // the post-delta epoch
        let mut e = Engine::new(
            g,
            EngineConfig {
                sketch_hubs: 3,
                chaos: Some(chaos),
                ..EngineConfig::default()
            },
        );
        let ops = [EdgeOp::Insert {
            u: 0,
            v: 11,
            weight: 1.0,
        }];
        let s = e.update_graph_delta(&ops).unwrap();
        assert!(s.sketches_rebuilt);
        assert_eq!(s.sketches_repaired, 0);
        let store = e.sketch_store().unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 3);
        // The rebuilt store is exactly what a cold build produces.
        assert!(e
            .trace()
            .events
            .iter()
            .any(|ev| ev.contains("sketch repair fault")));
        // The next delta (epoch 2, unfaulted) repairs normally.
        let ops2 = [EdgeOp::Insert {
            u: 1,
            v: 10,
            weight: 1.0,
        }];
        let s2 = e.update_graph_delta(&ops2).unwrap();
        assert!(!s2.sketches_rebuilt);
    }

    #[test]
    fn amortized_resketch_cadence_rebuilds_on_schedule() {
        let g = barbell(8, 2).unwrap();
        let mut e = Engine::new(
            g,
            EngineConfig {
                sketch_hubs: 3,
                resketch_after: 2,
                ..EngineConfig::default()
            },
        );
        let op = |u, v| [EdgeOp::Insert { u, v, weight: 1.5 }];
        let s1 = e.update_graph_delta(&op(0, 1)).unwrap();
        assert!(!s1.sketches_rebuilt);
        // Second delta since the last full build hits the cadence.
        let s2 = e.update_graph_delta(&op(2, 3)).unwrap();
        assert!(s2.sketches_rebuilt);
        // Counter reset: the next delta repairs again.
        let s3 = e.update_graph_delta(&op(4, 5)).unwrap();
        assert!(!s3.sketches_rebuilt);
    }

    #[test]
    fn epoch_bump_prevents_cross_epoch_batching_but_still_answers() {
        let g = barbell(6, 2).unwrap();
        let mut e = Engine::new(g, EngineConfig::default());
        assert!(e.submit(query(&[0])).is_accepted());
        e.update_graph(barbell(8, 1).unwrap());
        assert!(e.submit(query(&[1])).is_accepted());
        let rs = e.run_pending();
        assert_eq!(rs.len(), 2);
        // Old-epoch request still gets a (solo-path) certified answer.
        assert!(rs.iter().all(|r| r.kind == ResponseKind::Full));
        assert_eq!(e.epoch(), 1);
    }
}
