//! The engine-side hub-sketch store: an immutable
//! [`SketchSet`] stamped with the graph epoch it was built against.
//!
//! The engine rebuilds the store on every full graph swap
//! ([`crate::engine::Engine::update_graph`]) and *repairs* it across
//! edge deltas ([`crate::engine::Engine::update_graph_delta`]), so a
//! store whose epoch disagrees with the engine's current epoch is
//! *never* consulted — sketches can go stale only by construction, not
//! by use. That makes invalidation trivial to reason about: the epoch
//! stamp is the whole protocol.

use acir_graph::{EdgeDelta, Graph, NodeId, Permutation};
use acir_local::{
    build_hub_sketches, build_sketches_for_hubs, relabel_sketch_set, repair_hub_sketches, SketchSet,
};

/// An epoch-stamped [`SketchSet`] owned by the serve engine.
#[derive(Debug, Clone)]
pub struct SketchStore {
    set: SketchSet,
    epoch: u64,
}

impl SketchStore {
    /// Build sketches from the top-`hubs` hubs of `g` at `(α, ε)`,
    /// stamped with `epoch`. Fails only on invalid α/ε — a programmer
    /// error in the engine configuration, reported as a string so the
    /// caller can decide whether to panic or disable the path.
    pub fn build(
        g: &Graph,
        hubs: usize,
        alpha: f64,
        epsilon: f64,
        epoch: u64,
    ) -> Result<Self, String> {
        let set = build_hub_sketches(g, hubs, alpha, epsilon)
            .map_err(|e| format!("hub sketch build failed: {e}"))?;
        Ok(Self { set, epoch })
    }

    /// Build sketches for an explicit, pre-selected hub list — the
    /// pure-reweight fast path where the unweighted degree sequence
    /// (and therefore the top-K selection) is unchanged and re-running
    /// the selection would be wasted work.
    pub fn build_for_hubs(
        g: &Graph,
        hubs: &[NodeId],
        alpha: f64,
        epsilon: f64,
        epoch: u64,
    ) -> Result<Self, String> {
        let set = build_sketches_for_hubs(g, hubs, alpha, epsilon)
            .map_err(|e| format!("hub sketch build failed: {e}"))?;
        Ok(Self { set, epoch })
    }

    /// Carry this store through a relabeling compaction: every sketch
    /// is mapped through `step` (zero pushes, certificates carried
    /// bitwise) and the store is restamped with the new `epoch`.
    pub fn relabel(&self, step: &Permutation, epoch: u64) -> Result<Self, String> {
        let set = relabel_sketch_set(&self.set, step)
            .map_err(|e| format!("hub sketch relabel failed: {e}"))?;
        Ok(Self { set, epoch })
    }

    /// The sketched hub ids, in slot order.
    pub fn hubs(&self) -> Vec<NodeId> {
        self.set.sketches().iter().map(|s| s.hub).collect()
    }

    /// Repair this store across `delta` (the net edge changes from the
    /// store's graph to `g`), restamped with the new `epoch`. Only
    /// sketches whose residual support touches a delta endpoint are
    /// reflowed; the rest carry over verbatim. Returns the repaired
    /// store and the repair accounting (pushes spent is the
    /// repair-vs-rebuild gate numerator).
    pub fn repair(
        &self,
        g: &Graph,
        delta: &[EdgeDelta],
        epoch: u64,
    ) -> Result<(Self, StoreRepairStats), String> {
        let rep = repair_hub_sketches(g, &self.set, delta)
            .map_err(|e| format!("hub sketch repair failed: {e}"))?;
        let stats = StoreRepairStats {
            repaired: rep.repaired,
            untouched: rep.untouched,
            fallbacks: rep.fallbacks,
            pushes: rep.pushes,
            work: rep.work,
        };
        Ok((
            Self {
                set: rep.set,
                epoch,
            },
            stats,
        ))
    }

    /// The graph epoch the sketches were built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sketches themselves.
    pub fn set(&self) -> &SketchSet {
        &self.set
    }

    /// Number of sketched hubs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Does the store hold no sketches?
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Accounting for one [`SketchStore::repair`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreRepairStats {
    /// Sketches incrementally repaired.
    pub repaired: usize,
    /// Sketches untouched by the delta, carried over verbatim.
    pub untouched: usize,
    /// Sketches recomputed from scratch (oversized perturbation,
    /// degenerate column swap, or an isolated hub).
    pub fallbacks: usize,
    /// Fresh pushes the repair spent across all sketches.
    pub pushes: usize,
    /// Fresh edge traversals the repair spent.
    pub work: usize,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use acir_graph::gen::deterministic::barbell;
    use acir_graph::DeltaGraph;

    #[test]
    fn build_stamps_the_epoch() {
        let g = barbell(8, 2).unwrap();
        let s = SketchStore::build(&g, 4, 0.1, 1e-4, 7).unwrap();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.set().alpha(), 0.1);
        assert!(SketchStore::build(&g, 4, 2.0, 1e-4, 0).is_err());
    }

    #[test]
    fn repair_restamps_and_spends_less_than_a_rebuild() {
        let g = barbell(8, 2).unwrap();
        let store = SketchStore::build(&g, 4, 0.1, 1e-4, 0).unwrap();
        let mut dg = DeltaGraph::new(&g);
        dg.insert_edge(0, 17, 2.0).unwrap();
        let delta = dg.net_delta();
        let (g2, _) = dg.compact().unwrap();
        let (repaired, stats) = store.repair(&g2, &delta, 1).unwrap();
        assert_eq!(repaired.epoch(), 1);
        assert_eq!(repaired.len(), 4);
        assert_eq!(
            stats.repaired + stats.untouched + stats.fallbacks,
            store.len()
        );
        let rebuilt = SketchStore::build(&g2, 4, 0.1, 1e-4, 1).unwrap();
        assert!(
            stats.pushes < rebuilt.set().build_pushes(),
            "repair spent {} pushes, rebuild {}",
            stats.pushes,
            rebuilt.set().build_pushes()
        );
    }
}
