//! The engine-side hub-sketch store: an immutable
//! [`SketchSet`] stamped with the graph epoch it was built against.
//!
//! The engine rebuilds the store on every graph swap
//! ([`crate::engine::Engine::update_graph`]), so a store whose epoch
//! disagrees with the engine's current epoch is *never* consulted —
//! sketches can go stale only by construction, not by use. That makes
//! invalidation trivial to reason about: the epoch stamp is the whole
//! protocol.

use acir_graph::Graph;
use acir_local::{build_hub_sketches, SketchSet};

/// An epoch-stamped [`SketchSet`] owned by the serve engine.
#[derive(Debug, Clone)]
pub struct SketchStore {
    set: SketchSet,
    epoch: u64,
}

impl SketchStore {
    /// Build sketches from the top-`hubs` hubs of `g` at `(α, ε)`,
    /// stamped with `epoch`. Fails only on invalid α/ε — a programmer
    /// error in the engine configuration, reported as a string so the
    /// caller can decide whether to panic or disable the path.
    pub fn build(
        g: &Graph,
        hubs: usize,
        alpha: f64,
        epsilon: f64,
        epoch: u64,
    ) -> Result<Self, String> {
        let set = build_hub_sketches(g, hubs, alpha, epsilon)
            .map_err(|e| format!("hub sketch build failed: {e}"))?;
        Ok(Self { set, epoch })
    }

    /// The graph epoch the sketches were built against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sketches themselves.
    pub fn set(&self) -> &SketchSet {
        &self.set
    }

    /// Number of sketched hubs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Does the store hold no sketches?
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use acir_graph::gen::deterministic::barbell;

    #[test]
    fn build_stamps_the_epoch() {
        let g = barbell(8, 2).unwrap();
        let s = SketchStore::build(&g, 4, 0.1, 1e-4, 7).unwrap();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.set().alpha(), 0.1);
        assert!(SketchStore::build(&g, 4, 2.0, 1e-4, 0).is_err());
    }
}
