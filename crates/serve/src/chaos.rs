//! Deterministic fault scheduling for the chaos harness.
//!
//! A [`ChaosConfig`] decides, as a pure function of `(seed, request id,
//! attempt)`, whether a worker panics before computing or silently
//! corrupts its result with a NaN. Determinism is the point: a chaos
//! run that fails can be replayed exactly, and proptest can shrink over
//! schedules. Forced entries let tests pin specific `(id, attempt)`
//! faults on top of the rate-driven stream.

use std::collections::BTreeSet;

/// A deterministic fault plan for the engine's supervised workers.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Seed of the rate-driven fault stream.
    pub seed: u64,
    /// Probability that a given `(id, attempt)` panics, in `[0, 1]`.
    pub panic_rate: f64,
    /// Probability that a given `(id, attempt)` produces a NaN-poisoned
    /// result, in `[0, 1]`.
    pub nan_rate: f64,
    /// `(request id, attempt)` pairs that always panic.
    pub forced_panics: BTreeSet<(u64, usize)>,
    /// `(request id, attempt)` pairs that always corrupt.
    pub forced_nans: BTreeSet<(u64, usize)>,
    /// Graph epochs at which the incremental sketch/answer repair path
    /// fails mid-flight; the engine must fall back to a full rebuild
    /// (the epoch is the one *after* the delta bump).
    pub forced_repair_faults: BTreeSet<u64>,
    /// Probability that the repair path fails at a given epoch, in
    /// `[0, 1]`.
    pub repair_fault_rate: f64,
}

impl ChaosConfig {
    /// Rate-driven schedule: every `(id, attempt)` panics with
    /// probability `panic_rate` and corrupts with `nan_rate`,
    /// deterministically from `seed`.
    pub fn with_rates(seed: u64, panic_rate: f64, nan_rate: f64) -> Self {
        Self {
            seed,
            panic_rate,
            nan_rate,
            ..Self::default()
        }
    }

    /// Does the worker for `(id, attempt)` panic before computing?
    pub fn panics(&self, id: u64, attempt: usize) -> bool {
        self.forced_panics.contains(&(id, attempt))
            || unit(self.seed, id, attempt as u64, 0x70616e6963) < self.panic_rate
    }

    /// Does the worker for `(id, attempt)` return a NaN-poisoned
    /// result?
    pub fn corrupts(&self, id: u64, attempt: usize) -> bool {
        self.forced_nans.contains(&(id, attempt))
            || unit(self.seed, id, attempt as u64, 0x6e616e73) < self.nan_rate
    }

    /// Does the incremental repair path fail at this (post-delta)
    /// epoch? A `true` forces the engine onto the full-rebuild path —
    /// the repair analogue of a worker panic.
    pub fn fails_repair(&self, epoch: u64) -> bool {
        self.forced_repair_faults.contains(&epoch)
            || unit(self.seed, epoch, 0, 0x72657061) < self.repair_fault_rate
    }
}

/// SplitMix64-style hash of `(seed, id, attempt, salt)` mapped to
/// `[0, 1)`. Pure, so every fault decision is replayable.
fn unit(seed: u64, id: u64, attempt: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(id.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic open-loop inter-arrival gaps (exponential with the
/// given mean, in microseconds) for load generation: arrivals do not
/// wait for responses, which is what makes overload and admission
/// control observable.
pub fn open_loop_gaps_us(seed: u64, n: usize, mean_us: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let u = unit(seed, i as u64, 0, 0x61727269).max(1e-12);
            (-(u.ln()) * mean_us as f64).round().min(1e12) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_bounded() {
        let c = ChaosConfig::with_rates(42, 0.25, 0.1);
        let d = ChaosConfig::with_rates(42, 0.25, 0.1);
        let mut panics = 0usize;
        for id in 0..2000u64 {
            assert_eq!(c.panics(id, 0), d.panics(id, 0));
            assert_eq!(c.corrupts(id, 1), d.corrupts(id, 1));
            panics += usize::from(c.panics(id, 0));
        }
        // Empirical rate near the configured one.
        let rate = panics as f64 / 2000.0;
        assert!((0.15..0.35).contains(&rate), "panic rate {rate}");
        // Zero rates never fire.
        let never = ChaosConfig::with_rates(7, 0.0, 0.0);
        assert!((0..500).all(|id| !never.panics(id, 0) && !never.corrupts(id, 0)));
    }

    #[test]
    fn forced_faults_override_rates() {
        let mut c = ChaosConfig::with_rates(1, 0.0, 0.0);
        c.forced_panics.insert((3, 0));
        c.forced_nans.insert((3, 1));
        assert!(c.panics(3, 0) && !c.panics(3, 1));
        assert!(c.corrupts(3, 1) && !c.corrupts(3, 0));
    }

    #[test]
    fn repair_faults_are_forced_or_rate_driven() {
        let mut c = ChaosConfig::with_rates(1, 0.0, 0.0);
        assert!((0..200).all(|e| !c.fails_repair(e)));
        c.forced_repair_faults.insert(17);
        assert!(c.fails_repair(17) && !c.fails_repair(16));
        let rated = ChaosConfig {
            repair_fault_rate: 1.0,
            ..ChaosConfig::default()
        };
        assert!((0..50).all(|e| rated.fails_repair(e)));
    }

    #[test]
    fn open_loop_gaps_reproduce_and_average_out() {
        let a = open_loop_gaps_us(9, 1000, 500);
        assert_eq!(a, open_loop_gaps_us(9, 1000, 500));
        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!((250.0..1000.0).contains(&mean), "mean gap {mean}");
    }
}
