//! # acir-regularize
//!
//! The regularization machinery at the heart of Mahoney (PODS 2012):
//! explicit regularization (the paper's Eq. (1)), the regularized SDP
//! of Problem (5), and executable versions of the implicit-
//! regularization theorems of §3.1.
//!
//! * [`explicit`] — the `argmin f(x) + λ·g(x)` framework: ridge and
//!   lasso solvers, and graph-Tikhonov smoothing; the vocabulary the
//!   rest of the reproduction is phrased in.
//! * [`sdp`] — Problems (3), (4) and (5) as data, plus an **exact
//!   solver** for the regularized SDP: the problem is unitarily
//!   invariant for spectral regularizers, so it diagonalizes in the
//!   Laplacian eigenbasis and reduces to a separable optimization over
//!   the spectrum with a trace constraint, solved in closed form or by
//!   bisection on the Lagrange multiplier.
//! * [`regularizers`] — the three `G(X)` of the Mahoney–Orecchia
//!   theorem (paper ref \[32\]): generalized (von Neumann) entropy,
//!   log-determinant, and the matrix p-norm, with their closed-form
//!   optimizers and the implied diffusion parameters (`η ↔ t`, `γ`,
//!   `α/k`).
//! * [`equivalence`] — the theorem as a test: the Heat Kernel /
//!   PageRank / Lazy Random Walk operators, computed *independently*
//!   as matrix functions of the graph, equal the optimizers of the
//!   entropy- / log-det- / p-norm-regularized SDPs, to numerical
//!   precision.
//! * [`heuristics`] — the §2.3 menagerie as measurable operators:
//!   early stopping vs the ridge path, input noising vs Tikhonov,
//!   binning, and hard/soft thresholding.
//! * [`robustness`] — the "faster *and better*" demonstration: on
//!   noisy (sampled) graphs, the regularized estimator — i.e. what a
//!   truncated diffusion computes — has lower risk against the
//!   population eigenvector than the exact computation (the ref \[36\]
//!   Bayesian story, measured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod explicit;
pub mod heuristics;
pub mod regularizers;
pub mod robustness;
pub mod sdp;

pub use equivalence::{check_heat_kernel, check_lazy_walk, check_pagerank, EquivalenceReport};
pub use regularizers::Regularizer;
pub use robustness::{risk_profile, PopulationModel, RiskProfile};
pub use sdp::{solve_regularized_sdp, RegularizedSdpSolution, SpectralProblem};

/// Errors from the regularization layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RegularizeError {
    /// Invalid argument.
    InvalidArgument(String),
    /// Underlying linear-algebra error.
    Linalg(acir_linalg::LinalgError),
    /// Underlying spectral error.
    Spectral(acir_spectral::SpectralError),
    /// Underlying graph error.
    Graph(acir_graph::GraphError),
}

impl std::fmt::Display for RegularizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegularizeError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            RegularizeError::Linalg(e) => write!(f, "linalg: {e}"),
            RegularizeError::Spectral(e) => write!(f, "spectral: {e}"),
            RegularizeError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for RegularizeError {}

impl From<acir_linalg::LinalgError> for RegularizeError {
    fn from(e: acir_linalg::LinalgError) -> Self {
        RegularizeError::Linalg(e)
    }
}

impl From<acir_spectral::SpectralError> for RegularizeError {
    fn from(e: acir_spectral::SpectralError) -> Self {
        RegularizeError::Spectral(e)
    }
}

impl From<acir_graph::GraphError> for RegularizeError {
    fn from(e: acir_graph::GraphError) -> Self {
        RegularizeError::Graph(e)
    }
}

/// Result alias for regularization operations.
pub type Result<T> = std::result::Result<T, RegularizeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(RegularizeError::InvalidArgument("r".into())
            .to_string()
            .contains("r"));
        let e: RegularizeError = acir_linalg::LinalgError::Singular.into();
        assert!(e.to_string().contains("linalg"));
        let e: RegularizeError = acir_spectral::SpectralError::InvalidArgument("s".into()).into();
        assert!(e.to_string().contains("spectral"));
    }
}
