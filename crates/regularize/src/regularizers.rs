//! The three spectral regularizers `G(X)` of the Mahoney–Orecchia
//! theorem (paper §3.1 and ref \[32\]).
//!
//! A spectral (unitarily invariant) regularizer acts on the eigenvalue
//! vector `μ` of the density matrix `X` (with `μ ≥ 0, Σμ = 1`):
//!
//! | Regularizer | `g(μ)`             | SDP optimizer on spectrum `λ` | Diffusion |
//! |-------------|--------------------|-------------------------------|-----------|
//! | Entropy     | `Σ μᵢ ln μᵢ`       | `μᵢ ∝ exp(−η λᵢ)`             | Heat Kernel, `t = η` |
//! | LogDet      | `−Σ ln μᵢ`         | `μᵢ = 1/(η(λᵢ + ν))`          | PageRank, `γ = ν/(1+ν)` |
//! | PNorm(p)    | `(1/p) Σ μᵢᵖ`      | `μᵢ ∝ (τ − λᵢ)₊^{1/(p−1)}`    | Lazy walk, `k = 1/(p−1)`, `α = 1 − 1/τ` |
//!
//! Each optimizer is obtained from the KKT conditions of
//! `min Σλᵢμᵢ + (1/η) g(μ)` over the simplex; `ν`/`τ` are the trace-
//! constraint multipliers, found here by bisection.

use crate::{RegularizeError, Result};

/// The regularization functions `G(X)` of Problem (5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regularizer {
    /// Generalized (von Neumann) entropy `Tr(X ln X)`.
    Entropy,
    /// Log-determinant `−ln det(X)` (on the feasible subspace).
    LogDet,
    /// Matrix p-norm `(1/p)·Tr(Xᵖ)`, `p > 1`.
    PNorm(f64),
}

impl Regularizer {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if let Regularizer::PNorm(p) = self {
            if !(*p > 1.0 && p.is_finite()) {
                return Err(RegularizeError::InvalidArgument(format!(
                    "p-norm regularizer needs p > 1, got {p}"
                )));
            }
        }
        Ok(())
    }

    /// `g(μ)` on a spectrum (entries must be ≥ 0; entropy/log-det use
    /// the conventions `0·ln 0 = 0`, `−ln 0 = +∞`).
    pub fn g(&self, mu: &[f64]) -> f64 {
        match self {
            Regularizer::Entropy => mu
                .iter()
                .map(|&m| if m > 0.0 { m * m.ln() } else { 0.0 })
                .sum(),
            Regularizer::LogDet => mu
                .iter()
                .map(|&m| if m > 0.0 { -m.ln() } else { f64::INFINITY })
                .sum(),
            Regularizer::PNorm(p) => mu.iter().map(|&m| m.powf(*p)).sum::<f64>() / p,
        }
    }

    /// Solve `min_μ  Σ λᵢμᵢ + (1/η)·g(μ)` over the probability simplex,
    /// returning the optimal `μ` and the trace-constraint multiplier
    /// (the Gibbs log-partition for entropy, `ν` for log-det, `τ` for
    /// p-norm).
    ///
    /// `lambda` is the spectrum of the Laplacian restricted to the
    /// feasible subspace; `eta > 0` is the inverse regularization
    /// strength of Problem (5).
    pub fn optimal_spectrum(&self, lambda: &[f64], eta: f64) -> Result<(Vec<f64>, f64)> {
        self.validate()?;
        if lambda.is_empty() {
            return Err(RegularizeError::InvalidArgument("empty spectrum".into()));
        }
        if !(eta > 0.0 && eta.is_finite()) {
            return Err(RegularizeError::InvalidArgument(format!(
                "eta must be positive, got {eta}"
            )));
        }
        match self {
            Regularizer::Entropy => {
                // μᵢ ∝ exp(−η λᵢ): softmax, computed stably.
                let lmin = lambda.iter().cloned().fold(f64::INFINITY, f64::min);
                let w: Vec<f64> = lambda.iter().map(|&l| (-eta * (l - lmin)).exp()).collect();
                let z: f64 = w.iter().sum();
                let mu = w.into_iter().map(|x| x / z).collect();
                // Multiplier: log-partition (shifted back).
                Ok((mu, z.ln() / eta - lmin))
            }
            Regularizer::LogDet => {
                // μᵢ = 1/(η(λᵢ + ν)); find ν > −λmin with Σμ = 1 by
                // bisection (Σμ is decreasing in ν).
                let lmin = lambda.iter().cloned().fold(f64::INFINITY, f64::min);
                let n = lambda.len() as f64;
                let total =
                    |nu: f64| -> f64 { lambda.iter().map(|&l| 1.0 / (eta * (l + nu))).sum() };
                // Bracket: ν → −λmin⁺ gives Σ → ∞; large ν gives Σ → 0.
                let mut lo = -lmin + 1e-15;
                let mut hi = -lmin + n / eta + 1.0; // Σ(hi) < 1 guaranteed
                debug_assert!(total(hi) < 1.0);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if total(mid) > 1.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let nu = 0.5 * (lo + hi);
                let mu: Vec<f64> = lambda.iter().map(|&l| 1.0 / (eta * (l + nu))).collect();
                let z: f64 = mu.iter().sum();
                // Renormalize the residual bisection error.
                Ok((mu.into_iter().map(|m| m / z).collect(), nu))
            }
            Regularizer::PNorm(p) => {
                // μᵢ = (η(τ − λᵢ))₊^{1/(p−1)}: water-filling; Σμ is
                // increasing in τ.
                let q = 1.0 / (p - 1.0);
                let total = |tau: f64| -> f64 {
                    lambda
                        .iter()
                        .map(|&l| (eta * (tau - l)).max(0.0).powf(q))
                        .sum()
                };
                let lmin = lambda.iter().cloned().fold(f64::INFINITY, f64::min);
                let lmax = lambda.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut lo = lmin;
                let mut hi = lmax + 1.0 / eta + 1.0;
                while total(hi) < 1.0 {
                    hi = lmax + (hi - lmax) * 2.0;
                }
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if total(mid) < 1.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let tau = 0.5 * (lo + hi);
                let mu: Vec<f64> = lambda
                    .iter()
                    .map(|&l| (eta * (tau - l)).max(0.0).powf(q))
                    .collect();
                let z: f64 = mu.iter().sum();
                Ok((mu.into_iter().map(|m| m / z).collect(), tau))
            }
        }
    }

    /// The diffusion parameter implied by `η` (and the solved
    /// multiplier): `t` for entropy/Heat-Kernel, `γ` for
    /// log-det/PageRank, `(α, k)` for p-norm/lazy-walk.
    pub fn implied_diffusion_parameter(&self, eta: f64, multiplier: f64) -> DiffusionParameter {
        match self {
            Regularizer::Entropy => DiffusionParameter::HeatKernelTime(eta),
            Regularizer::LogDet => {
                // X* ∝ (𝓛 + νI)^{-1}; PageRank resolvent is
                // ∝ (𝓛 + (γ/(1−γ))I)^{-1} ⇒ γ = ν/(1+ν).
                DiffusionParameter::PageRankGamma(multiplier / (1.0 + multiplier))
            }
            Regularizer::PNorm(p) => {
                // μ ∝ (τ−λ)^k with k = 1/(p−1); the k-step lazy walk
                // W = I − (1−α)𝓛 has spectrum (1−α)(1/(1−α) − λ), so
                // τ = 1/(1−α) ⇒ α = 1 − 1/τ.
                DiffusionParameter::LazyWalk {
                    alpha: 1.0 - 1.0 / multiplier,
                    steps: 1.0 / (p - 1.0),
                }
            }
        }
    }
}

/// Diffusion parameter implied by a regularized-SDP solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiffusionParameter {
    /// Heat-kernel time `t`.
    HeatKernelTime(f64),
    /// PageRank teleportation `γ`.
    PageRankGamma(f64),
    /// Lazy-walk holding probability and (real-valued) step count.
    LazyWalk {
        /// Holding probability `α`.
        alpha: f64,
        /// Step count `k = 1/(p−1)`.
        steps: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const LAMBDA: [f64; 4] = [0.2, 0.5, 1.1, 1.9];

    fn objective(reg: &Regularizer, lambda: &[f64], eta: f64, mu: &[f64]) -> f64 {
        let linear: f64 = lambda.iter().zip(mu).map(|(&l, &m)| l * m).sum();
        linear + reg.g(mu) / eta
    }

    #[test]
    fn entropy_solution_is_gibbs() {
        let (mu, _) = Regularizer::Entropy.optimal_spectrum(&LAMBDA, 2.0).unwrap();
        // μᵢ ∝ exp(−2λᵢ).
        let w: Vec<f64> = LAMBDA.iter().map(|&l| (-2.0 * l).exp()).collect();
        let z: f64 = w.iter().sum();
        for (m, wi) in mu.iter().zip(&w) {
            assert!((m - wi / z).abs() < 1e-12);
        }
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logdet_solution_satisfies_kkt() {
        let eta = 3.0;
        let (mu, nu) = Regularizer::LogDet.optimal_spectrum(&LAMBDA, eta).unwrap();
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        // KKT: λᵢ − 1/(η μᵢ) + ν = 0.
        for (&l, &m) in LAMBDA.iter().zip(&mu) {
            assert!((l - 1.0 / (eta * m) + nu).abs() < 1e-6, "KKT at λ={l}");
        }
    }

    #[test]
    fn pnorm_solution_satisfies_waterfilling() {
        let eta = 1.5;
        let p = 1.5; // k = 2
        let (mu, tau) = Regularizer::PNorm(p)
            .optimal_spectrum(&LAMBDA, eta)
            .unwrap();
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        // μᵢ ∝ (τ − λᵢ)₊².
        let w: Vec<f64> = LAMBDA.iter().map(|&l| (tau - l).max(0.0).powi(2)).collect();
        let z: f64 = w.iter().sum();
        for (m, wi) in mu.iter().zip(&w) {
            assert!((m - wi / z).abs() < 1e-8);
        }
    }

    #[test]
    fn pnorm_can_truncate_top_of_spectrum() {
        // Strong regularization (small η): τ can drop below λmax and
        // zero out the high end — the low-rank bias of the lazy walk.
        let lambda = [0.0, 0.1, 1.9, 2.0];
        let (mu, tau) = Regularizer::PNorm(2.0)
            .optimal_spectrum(&lambda, 0.2)
            .unwrap();
        if tau < 2.0 {
            assert_eq!(mu[3], 0.0);
        }
        // Either way the small-λ end dominates.
        assert!(mu[0] > mu[3]);
    }

    #[test]
    fn small_eta_means_stronger_smoothing() {
        // η → 0: entropy solution → uniform; η → ∞: all mass on λmin.
        let (mu_strong, _) = Regularizer::Entropy
            .optimal_spectrum(&LAMBDA, 1e-6)
            .unwrap();
        for m in &mu_strong {
            assert!((m - 0.25).abs() < 1e-4);
        }
        let (mu_weak, _) = Regularizer::Entropy
            .optimal_spectrum(&LAMBDA, 100.0)
            .unwrap();
        assert!(mu_weak[0] > 0.999);
    }

    #[test]
    fn validation() {
        assert!(Regularizer::PNorm(1.0).validate().is_err());
        assert!(Regularizer::PNorm(0.5).validate().is_err());
        assert!(Regularizer::PNorm(f64::NAN).validate().is_err());
        assert!(Regularizer::Entropy.optimal_spectrum(&[], 1.0).is_err());
        assert!(Regularizer::Entropy.optimal_spectrum(&LAMBDA, 0.0).is_err());
        assert!(Regularizer::Entropy
            .optimal_spectrum(&LAMBDA, -1.0)
            .is_err());
    }

    #[test]
    fn implied_parameters() {
        let p = Regularizer::Entropy.implied_diffusion_parameter(2.5, 0.0);
        assert_eq!(p, DiffusionParameter::HeatKernelTime(2.5));
        let p = Regularizer::LogDet.implied_diffusion_parameter(1.0, 1.0);
        assert_eq!(p, DiffusionParameter::PageRankGamma(0.5));
        let p = Regularizer::PNorm(1.5).implied_diffusion_parameter(1.0, 2.0);
        match p {
            DiffusionParameter::LazyWalk { alpha, steps } => {
                assert!((alpha - 0.5).abs() < 1e-12);
                assert!((steps - 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_solutions_are_simplex_optimal(
            lambda in proptest::collection::vec(0.0..2.0f64, 2..6),
            eta in 0.1..10.0f64,
            reg_idx in 0..3usize,
            // Random feasible comparison point via softmax of raw values.
            raw in proptest::collection::vec(-3.0..3.0f64, 6),
        ) {
            let reg = match reg_idx {
                0 => Regularizer::Entropy,
                1 => Regularizer::LogDet,
                _ => Regularizer::PNorm(1.7),
            };
            let (mu, _) = reg.optimal_spectrum(&lambda, eta).unwrap();
            prop_assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-8);
            prop_assert!(mu.iter().all(|&m| m >= -1e-12));
            // Any other feasible point has no smaller objective.
            let w: Vec<f64> = raw[..lambda.len()].iter().map(|&x| x.exp()).collect();
            let z: f64 = w.iter().sum();
            let other: Vec<f64> = w.into_iter().map(|x| x / z).collect();
            let f_opt = objective(&reg, &lambda, eta, &mu);
            let f_other = objective(&reg, &lambda, eta, &other);
            prop_assert!(f_opt <= f_other + 1e-7, "{f_opt} > {f_other}");
        }
    }
}
