//! The Mahoney–Orecchia implicit-regularization theorem as executable
//! checks (§3.1: "these three diffusion-based dynamics arise as
//! solutions to the regularized SDP ... Conversely, solutions to the
//! regularized SDP of Problem (5) for appropriate values of η can be
//! computed exactly by running one of the above three diffusion-based
//! approximation algorithms").
//!
//! The two sides are computed by *independent* code paths:
//!
//! * the **implicit** side builds the diffusion operator as a matrix
//!   function of the normalized Laplacian — `exp(−t𝓛)`, the PageRank
//!   resolvent `(𝓛 + νI)^{−1}`, or the lazy-walk power
//!   `(I − (1−α)𝓛)^k` — projects out the trivial eigenvector, and
//!   normalizes the trace;
//! * the **explicit** side solves the regularized SDP via KKT
//!   conditions and multiplier bisection ([`crate::sdp`]).
//!
//! Agreement to numerical precision is the theorem. These checks power
//! the `casestudy1` experiment binary (DESIGN.md row C1-eq).

use crate::regularizers::{DiffusionParameter, Regularizer};
use crate::sdp::{solve_regularized_sdp, SpectralProblem};
use crate::{RegularizeError, Result};
use acir_linalg::{DenseMatrix, SymEig};

/// Outcome of one implicit-vs-explicit comparison.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// `‖X_implicit − X_explicit‖_F`.
    pub frobenius_error: f64,
    /// Error relative to `‖X_explicit‖_F`.
    pub relative_error: f64,
    /// The diffusion parameter used on the implicit side.
    pub parameter: DiffusionParameter,
    /// η used on the explicit side.
    pub eta: f64,
}

impl EquivalenceReport {
    /// Whether the two sides agree to the given relative tolerance.
    pub fn agrees(&self, tol: f64) -> bool {
        self.relative_error <= tol
    }
}

/// Project a symmetric operator onto the complement of the trivial
/// eigenvector and normalize its trace to 1: the "density-matrix view"
/// of a diffusion operator.
fn project_and_normalize(sp: &SpectralProblem, op: &DenseMatrix) -> Result<DenseMatrix> {
    let n = op.nrows();
    // P = I − v₁v₁ᵀ; X = P op P / Tr(P op P).
    let mut p = DenseMatrix::identity(n);
    p.rank1_update(-1.0, &sp.trivial, &sp.trivial);
    let pop = p.matmul(op)?.matmul(&p)?;
    let tr = pop.trace();
    if tr.abs() < 1e-300 {
        return Err(RegularizeError::InvalidArgument(
            "projected operator has zero trace".into(),
        ));
    }
    let mut x = pop;
    x.scale(1.0 / tr);
    Ok(x)
}

fn compare(
    sp: &SpectralProblem,
    implicit: &DenseMatrix,
    explicit: &DenseMatrix,
    parameter: DiffusionParameter,
    eta: f64,
) -> EquivalenceReport {
    let _ = sp;
    let mut diff = implicit.clone();
    diff.axpy(-1.0, explicit).expect("same shape");
    let fro = diff.fro_norm();
    let base = explicit.fro_norm().max(f64::MIN_POSITIVE);
    EquivalenceReport {
        frobenius_error: fro,
        relative_error: fro / base,
        parameter,
        eta,
    }
}

/// Check: `exp(−η𝓛)` (projected, trace-normalized) equals the
/// entropy-regularized SDP optimum at the same `η`.
pub fn check_heat_kernel(sp: &SpectralProblem, eta: f64) -> Result<EquivalenceReport> {
    let explicit = solve_regularized_sdp(sp, Regularizer::Entropy, eta)?;
    // Implicit side: matrix exponential of the dense Laplacian, by
    // scaling-and-squaring (not by the eigendecomposition the SDP side
    // used — keep the two paths independent).
    let mut neg = sp.laplacian.clone();
    neg.scale(-eta);
    let hk = acir_linalg::expm::expm_dense(&neg)?;
    let implicit = project_and_normalize(sp, &hk)?;
    Ok(compare(sp, &implicit, &explicit.x, explicit.implied, eta))
}

/// Check: the PageRank resolvent `(𝓛 + νI)^{−1}` at the ν implied by
/// the log-det multiplier (projected, normalized) equals the log-det
/// SDP optimum; reports the corresponding teleportation `γ = ν/(1+ν)`.
pub fn check_pagerank(sp: &SpectralProblem, eta: f64) -> Result<EquivalenceReport> {
    let explicit = solve_regularized_sdp(sp, Regularizer::LogDet, eta)?;
    let nu = explicit.multiplier;
    // Implicit side: dense inverse by LU (independent path).
    let mut shifted = sp.laplacian.clone();
    shifted.shift_diag(nu);
    let inv = acir_linalg::solve::Lu::new(&shifted)?.inverse()?;
    let implicit = project_and_normalize(sp, &inv)?;
    Ok(compare(sp, &implicit, &explicit.x, explicit.implied, eta))
}

/// Check: the `k`-step lazy-walk operator `(I − (1−α)𝓛)^k` at the
/// `(α, k)` implied by the p-norm solution equals the p-norm SDP
/// optimum, for `p = 1 + 1/k`.
///
/// Requires the implied `τ ≥ λmax` (equivalently `α ≥ 1 − 1/λmax`), so
/// that no eigenvalue is truncated — the regime in which the lazy walk
/// is *exactly* the regularizer (outside it, the SDP clips the top of
/// the spectrum and the correspondence is only approximate; the report
/// then carries the true gap).
pub fn check_lazy_walk(sp: &SpectralProblem, eta: f64, k: u32) -> Result<EquivalenceReport> {
    if k == 0 {
        return Err(RegularizeError::InvalidArgument(
            "k must be positive".into(),
        ));
    }
    let p = 1.0 + 1.0 / k as f64;
    let explicit = solve_regularized_sdp(sp, Regularizer::PNorm(p), eta)?;
    let tau = explicit.multiplier;
    let alpha = 1.0 - 1.0 / tau;
    // Implicit side: dense matrix power of W = I − (1−α)𝓛 = αI + (1−α)𝒜.
    let n = sp.laplacian.nrows();
    let mut w = sp.laplacian.clone();
    w.scale(-(1.0 - alpha));
    w.shift_diag(1.0);
    let mut wk = DenseMatrix::identity(n);
    for _ in 0..k {
        wk = wk.matmul(&w)?;
    }
    let implicit = project_and_normalize(sp, &wk)?;
    Ok(compare(sp, &implicit, &explicit.x, explicit.implied, eta))
}

/// Convenience: run all three checks across grids of η values and
/// return the worst relative error per dynamics. The lazy walk gets
/// its own η grid because its exact correspondence holds only in the
/// untruncated regime `τ ≥ λmax`, which requires η small enough (τ
/// grows as η shrinks); see [`check_lazy_walk`].
pub fn full_equivalence_suite(
    sp: &SpectralProblem,
    etas: &[f64],
    lazy_etas: &[f64],
    lazy_k: u32,
) -> Result<Vec<(String, f64)>> {
    let mut worst_hk = 0.0f64;
    let mut worst_pr = 0.0f64;
    let mut worst_lw = 0.0f64;
    for &eta in etas {
        worst_hk = worst_hk.max(check_heat_kernel(sp, eta)?.relative_error);
        worst_pr = worst_pr.max(check_pagerank(sp, eta)?.relative_error);
    }
    for &eta in lazy_etas {
        worst_lw = worst_lw.max(check_lazy_walk(sp, eta, lazy_k)?.relative_error);
    }
    Ok(vec![
        ("heat_kernel/entropy".to_string(), worst_hk),
        ("pagerank/logdet".to_string(), worst_pr),
        ("lazy_walk/pnorm".to_string(), worst_lw),
    ])
}

/// The largest η for which the p-norm/lazy-walk correspondence is
/// exact (no spectrum clipping): the η at which the water-filling level
/// `τ` equals `λmax`. For `k = 1` this is closed-form; generally it is
/// found by bisection on η.
pub fn lazy_walk_eta_limit(sp: &SpectralProblem, k: u32) -> Result<f64> {
    if k == 0 {
        return Err(RegularizeError::InvalidArgument(
            "k must be positive".into(),
        ));
    }
    let p = 1.0 + 1.0 / k as f64;
    let lmax = sp.lambda.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // τ(η) decreasing... τ shrinks as η grows; find η where τ(η) = λmax.
    let reg = Regularizer::PNorm(p);
    let tau_of = |eta: f64| -> f64 {
        reg.optimal_spectrum(&sp.lambda, eta)
            .map(|(_, t)| t)
            .unwrap_or(f64::NAN)
    };
    let mut lo = 1e-6;
    let mut hi = 1e6;
    if tau_of(lo) < lmax {
        return Ok(lo); // pathologically flat spectrum; everything clips
    }
    for _ in 0..100 {
        let mid = (lo * hi).sqrt();
        if tau_of(mid) > lmax {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Diagnostic: the effective rank `(Tr X)²/Tr(X²) = 1/Σμ²` of a
/// density matrix — a scalar "how regularized is this" measure (1 =
/// the unregularized rank-one optimum; larger = smoother).
pub fn effective_rank(x: &DenseMatrix) -> f64 {
    let eig = SymEig::new(x).expect("density matrices are symmetric");
    let sum_sq: f64 = eig.eigenvalues.iter().map(|&m| m * m).sum();
    if sum_sq <= 0.0 {
        return 0.0;
    }
    let tr: f64 = eig.eigenvalues.iter().sum();
    tr * tr / sum_sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, cycle, lollipop, path};
    use acir_graph::gen::random::erdos_renyi_gnp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn heat_kernel_equivalence_holds() {
        let g = barbell(5, 2).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        for eta in [0.1, 1.0, 5.0] {
            let r = check_heat_kernel(&sp, eta).unwrap();
            assert!(r.agrees(1e-8), "eta {eta}: rel err {}", r.relative_error);
            assert_eq!(r.parameter, DiffusionParameter::HeatKernelTime(eta));
        }
    }

    #[test]
    fn pagerank_equivalence_holds() {
        let g = lollipop(5, 3).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        for eta in [0.2, 1.0, 8.0] {
            let r = check_pagerank(&sp, eta).unwrap();
            assert!(r.agrees(1e-7), "eta {eta}: rel err {}", r.relative_error);
            if let DiffusionParameter::PageRankGamma(gamma) = r.parameter {
                assert!((0.0..1.0).contains(&gamma), "gamma {gamma}");
            } else {
                panic!("wrong parameter kind");
            }
        }
    }

    #[test]
    fn lazy_walk_equivalence_holds_when_untruncated() {
        let g = cycle(10).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        // τ grows as η shrinks; pick η below the clipping limit so the
        // correspondence is exact (strong regularization spreads mass
        // over the full spectrum without truncating its top).
        for k in [1u32, 2, 4] {
            let eta = lazy_walk_eta_limit(&sp, k).unwrap() * 0.5;
            let r = check_lazy_walk(&sp, eta, k).unwrap();
            assert!(r.agrees(1e-7), "k {k}: rel err {}", r.relative_error);
            if let DiffusionParameter::LazyWalk { alpha, steps } = r.parameter {
                assert!((steps - k as f64).abs() < 1e-12);
                assert!((0.0..1.0).contains(&alpha));
            } else {
                panic!("wrong parameter kind");
            }
        }
    }

    #[test]
    fn equivalence_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(77);
        let g0 = erdos_renyi_gnp(&mut rng, 24, 0.25).unwrap();
        let (g, _) = acir_graph::traversal::largest_component(&g0);
        let sp = SpectralProblem::new(&g).unwrap();
        let lazy_eta = lazy_walk_eta_limit(&sp, 2).unwrap() * 0.5;
        let suite =
            full_equivalence_suite(&sp, &[0.3, 1.0, 3.0], &[lazy_eta, lazy_eta * 0.3], 2).unwrap();
        for (name, err) in suite {
            assert!(err < 1e-6, "{name}: worst rel err {err}");
        }
    }

    #[test]
    fn regularization_strength_monotone_in_effective_rank() {
        // Smaller η (stronger regularization) → smoother X* → larger
        // effective rank; as η → ∞, effective rank → 1 (the Problem (4)
        // rank-one optimum).
        let g = path(12).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        let strong = solve_regularized_sdp(&sp, Regularizer::Entropy, 0.1).unwrap();
        let medium = solve_regularized_sdp(&sp, Regularizer::Entropy, 2.0).unwrap();
        let weak = solve_regularized_sdp(&sp, Regularizer::Entropy, 200.0).unwrap();
        let r_strong = effective_rank(&strong.x);
        let r_medium = effective_rank(&medium.x);
        let r_weak = effective_rank(&weak.x);
        assert!(
            r_strong > r_medium && r_medium > r_weak,
            "{r_strong} > {r_medium} > {r_weak}"
        );
        assert!((r_weak - 1.0).abs() < 0.05);
    }

    #[test]
    fn lazy_walk_rejects_k_zero() {
        let g = cycle(6).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        assert!(check_lazy_walk(&sp, 1.0, 0).is_err());
    }

    #[test]
    fn effective_rank_of_identity_like() {
        // X = I/n has effective rank n.
        let n = 5;
        let mut x = DenseMatrix::identity(n);
        x.scale(1.0 / n as f64);
        assert!((effective_rank(&x) - n as f64).abs() < 1e-9);
    }
}
