//! "Faster *and better*": regularized approximation beats exact
//! computation on noisy data.
//!
//! The paper's §1 punchline — "depending on the details of the
//! situation, approximate computation can lead to algorithms that are
//! both faster and better than are algorithms that solve the same
//! problem exactly" — and footnote 17's pointer to the Bayesian
//! framework of Perry & Mahoney (ref \[36\], "Regularized Laplacian
//! estimation and fast eigenvector approximation"), made measurable:
//!
//! * a **population** graph `G₀` (here: the expectation of a planted
//!   2-block model, a dense weighted graph) defines the estimand
//!   `X₀ = v₂⁰ v₂⁰ᵀ`, the rank-one density matrix on the population's
//!   leading nontrivial eigenvector;
//! * a **sample** graph is a sparse Bernoulli realization of `G₀` —
//!   the noisy data actually observed;
//! * two estimators computed from the sample:
//!   the *exact* one (`v₂` of the sample, i.e. the Problem (4)
//!   optimum), and the *regularized* family `X̂_η` (the Problem (5)
//!   optima — equivalently, the heat-kernel / PageRank / lazy-walk
//!   approximations, by the §3.1 theorem);
//! * risk = `E‖X̂ − X₀‖²_F` over sample draws.
//!
//! When sampling noise is appreciable relative to the spectral gap, an
//! intermediate `η` minimizes the risk — strictly below the exact
//! estimator's risk. Since `X̂_η` is exactly what a *truncated
//! diffusion* computes, the approximation is better than the exact
//! answer, not despite the approximation but because of it.

use crate::regularizers::Regularizer;
use crate::sdp::{solve_regularized_sdp, SpectralProblem};
use crate::{RegularizeError, Result};
use acir_graph::{Graph, GraphBuilder, NodeId};
use acir_linalg::DenseMatrix;
use rand::Rng;

/// Population model: a 2-block expected adjacency (planted partition
/// in expectation).
#[derive(Debug, Clone)]
pub struct PopulationModel {
    /// Nodes per block.
    pub block_size: usize,
    /// Within-block edge probability.
    pub p_in: f64,
    /// Between-block edge probability.
    pub p_out: f64,
}

impl PopulationModel {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.block_size < 2 {
            return Err(RegularizeError::InvalidArgument(
                "block_size must be at least 2".into(),
            ));
        }
        for p in [self.p_in, self.p_out] {
            if !(0.0 < p && p <= 1.0) {
                return Err(RegularizeError::InvalidArgument(format!(
                    "probabilities must be in (0, 1], got {p}"
                )));
            }
        }
        Ok(())
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        2 * self.block_size
    }

    /// The population graph `G₀`: the dense weighted graph of expected
    /// adjacencies.
    pub fn population_graph(&self) -> Result<Graph> {
        self.validate()?;
        let n = self.n();
        let mut b = GraphBuilder::with_nodes(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let same = (u < self.block_size) == (v < self.block_size);
                let w = if same { self.p_in } else { self.p_out };
                b.add_edge(u as NodeId, v as NodeId, w);
            }
        }
        Ok(b.build()?)
    }

    /// One Bernoulli sample of the population graph. Returns `None` if
    /// the realization is disconnected (the caller redraws), which
    /// keeps the estimand well-posed on every accepted sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Result<Option<Graph>> {
        self.validate()?;
        let n = self.n();
        let mut b = GraphBuilder::with_nodes(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let same = (u < self.block_size) == (v < self.block_size);
                let p = if same { self.p_in } else { self.p_out };
                if rng.gen_bool(p) {
                    b.add_pair(u as NodeId, v as NodeId);
                }
            }
        }
        let g = b.build()?;
        if acir_graph::traversal::is_connected(&g) {
            Ok(Some(g))
        } else {
            Ok(None)
        }
    }

    /// The population estimand `X₀ = v₂⁰ v₂⁰ᵀ`.
    pub fn population_target(&self) -> Result<DenseMatrix> {
        let g0 = self.population_graph()?;
        let sp = SpectralProblem::new(&g0)?;
        Ok(sp.problem4_optimum())
    }
}

/// Risk profile of the regularized estimator family on one model.
#[derive(Debug, Clone)]
pub struct RiskProfile {
    /// The η grid evaluated (ascending).
    pub etas: Vec<f64>,
    /// Mean risk `‖X̂_η − X₀‖²_F` per η (same order).
    pub regularized_risk: Vec<f64>,
    /// Mean risk of the exact (rank-one, Problem (4)) estimator.
    pub exact_risk: f64,
    /// Samples actually used (connected draws).
    pub trials: usize,
}

impl RiskProfile {
    /// The η minimizing the measured risk, with its risk.
    pub fn best(&self) -> (f64, f64) {
        let (i, r) = self
            .regularized_risk
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty grid");
        (self.etas[i], *r)
    }

    /// Relative improvement of the best regularized estimator over the
    /// exact one (positive = regularization wins).
    pub fn improvement(&self) -> f64 {
        let (_, best) = self.best();
        (self.exact_risk - best) / self.exact_risk
    }
}

/// Estimate the risk profile by Monte Carlo over `trials` connected
/// samples, with the entropy regularizer (= heat-kernel estimator).
pub fn risk_profile(
    model: &PopulationModel,
    etas: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<RiskProfile> {
    if etas.is_empty() || trials == 0 {
        return Err(RegularizeError::InvalidArgument(
            "need a non-empty eta grid and trials > 0".into(),
        ));
    }
    let x0 = model.population_target()?;
    let mut reg_risk = vec![0.0; etas.len()];
    let mut exact_risk = 0.0;
    let mut used = 0usize;
    let mut attempts = 0usize;
    while used < trials {
        attempts += 1;
        if attempts > 50 * trials {
            return Err(RegularizeError::InvalidArgument(
                "too many disconnected samples; raise p_in/p_out".into(),
            ));
        }
        let Some(g) = model.sample(rng)? else {
            continue;
        };
        let sp = SpectralProblem::new(&g)?;
        // Exact estimator: rank-one on the sample's v₂.
        let exact = sp.problem4_optimum();
        exact_risk += frob_dist2(&exact, &x0);
        for (k, &eta) in etas.iter().enumerate() {
            let sol = solve_regularized_sdp(&sp, Regularizer::Entropy, eta)?;
            reg_risk[k] += frob_dist2(&sol.x, &x0);
        }
        used += 1;
    }
    for r in &mut reg_risk {
        *r /= used as f64;
    }
    Ok(RiskProfile {
        etas: etas.to_vec(),
        regularized_risk: reg_risk,
        exact_risk: exact_risk / used as f64,
        trials: used,
    })
}

fn frob_dist2(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    let mut d = a.clone();
    d.axpy(-1.0, b).expect("same shape");
    let f = d.fro_norm();
    f * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_model() -> PopulationModel {
        // Weak signal: small gap between p_in and p_out, sparse
        // sampling — the regime where shrinkage must help.
        PopulationModel {
            block_size: 15,
            p_in: 0.55,
            p_out: 0.35,
        }
    }

    #[test]
    fn population_target_is_block_indicator() {
        let m = PopulationModel {
            block_size: 10,
            p_in: 0.8,
            p_out: 0.1,
        };
        let x0 = m.population_target().unwrap();
        // v₂⁰ of the expected 2-block graph separates the blocks, so
        // X₀ entries are positive within blocks, negative across.
        assert!(x0[(0, 1)] > 0.0);
        assert!(x0[(0, 15)] < 0.0);
        assert!((x0.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let m = noisy_model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = None;
        for _ in 0..50 {
            if let Some(g) = m.sample(&mut rng).unwrap() {
                got = Some(g);
                break;
            }
        }
        let g = got.expect("a connected sample");
        assert_eq!(g.n(), 30);
        // Edge count near its expectation.
        let e_in = 2.0 * 105.0 * 0.55; // 2 blocks × C(15,2) × p_in
        let e_out = 225.0 * 0.35;
        let expected = e_in + e_out;
        assert!((g.m() as f64 - expected).abs() < 4.0 * expected.sqrt() + 10.0);
    }

    #[test]
    fn regularized_estimator_beats_exact_in_noisy_regime() {
        // The "faster and better" claim: some finite η has lower risk
        // than the exact rank-one estimator.
        let m = noisy_model();
        let mut rng = StdRng::seed_from_u64(7);
        let etas = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let profile = risk_profile(&m, &etas, 12, &mut rng).unwrap();
        let (best_eta, best_risk) = profile.best();
        assert!(
            best_risk < profile.exact_risk,
            "best regularized risk {best_risk} (eta {best_eta}) should beat exact {}",
            profile.exact_risk
        );
        assert!(profile.improvement() > 0.0);
        assert_eq!(profile.trials, 12);
    }

    #[test]
    fn strong_signal_regime_prefers_weak_regularization() {
        // With a huge gap and dense sampling, the exact estimator is
        // already near-optimal: the best η should be large (weak
        // regularization) and the improvement small.
        let m = PopulationModel {
            block_size: 12,
            p_in: 0.9,
            p_out: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let etas = [0.5, 2.0, 8.0, 32.0, 128.0];
        let profile = risk_profile(&m, &etas, 8, &mut rng).unwrap();
        let (best_eta, _) = profile.best();
        assert!(
            best_eta >= 8.0,
            "strong signal wants weak regularization, got eta {best_eta}"
        );
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        let bad = PopulationModel {
            block_size: 1,
            p_in: 0.5,
            p_out: 0.5,
        };
        assert!(bad.validate().is_err());
        let bad_p = PopulationModel {
            block_size: 5,
            p_in: 0.0,
            p_out: 0.5,
        };
        assert!(bad_p.population_graph().is_err());
        let ok = noisy_model();
        assert!(risk_profile(&ok, &[], 5, &mut rng).is_err());
        assert!(risk_profile(&ok, &[1.0], 0, &mut rng).is_err());
    }
}
