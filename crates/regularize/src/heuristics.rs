//! The §2.3 menagerie of implicit regularizers, as measurable
//! operators.
//!
//! "Regularization is often observed as a side-effect or by-product of
//! other design decisions": binning, pruning, adding noise, truncating,
//! early stopping. Each heuristic here comes with the experiment that
//! demonstrates its regularization effect (run at scale in the
//! `ablations` binary; unit-tested here in miniature):
//!
//! * [`gradient_descent_path`] — early-stopped gradient descent on
//!   least squares follows the ridge path: iterate `k` with step `s`
//!   behaves like ridge with `λ ≈ 1/(k·s)`;
//! * [`noisy_features_least_squares`] — adding iid noise to the design
//!   matrix before solving ≈ Tikhonov with `λ = n·σ²` in expectation;
//! * [`bin_vector`] — binning/aggregation as a smoothing projection;
//! * the thresholding operators live in [`crate::explicit`].

use crate::{RegularizeError, Result};
use acir_linalg::{vector, DenseMatrix};
use rand::Rng;

/// Run `iters` steps of gradient descent on `½‖Ax − b‖²` from zero with
/// step size `step`, recording every iterate (index 0 = the zero
/// start). The returned path is the object compared against the ridge
/// path in the A-early ablation.
pub fn gradient_descent_path(
    a: &DenseMatrix,
    b: &[f64],
    step: f64,
    iters: usize,
) -> Result<Vec<Vec<f64>>> {
    if b.len() != a.nrows() {
        return Err(RegularizeError::InvalidArgument(format!(
            "b length {} != rows {}",
            b.len(),
            a.nrows()
        )));
    }
    if !(step > 0.0 && step.is_finite()) {
        return Err(RegularizeError::InvalidArgument(
            "step must be positive".into(),
        ));
    }
    let at = a.transpose();
    let gram = at.matmul(a)?;
    let mut atb = vec![0.0; a.ncols()];
    at.gemv(1.0, b, 0.0, &mut atb);

    let mut x = vec![0.0; a.ncols()];
    let mut grad = vec![0.0; a.ncols()];
    let mut path = Vec::with_capacity(iters + 1);
    path.push(x.clone());
    for _ in 0..iters {
        gram.gemv(1.0, &x, 0.0, &mut grad);
        vector::axpy(-1.0, &atb, &mut grad);
        vector::axpy(-step, &grad, &mut x);
        path.push(x.clone());
    }
    Ok(path)
}

/// Solve least squares after perturbing every entry of `A` with iid
/// `N(0, σ²)`-ish noise (uniform of matching variance, to stay within
/// the `rand` crate): `argmin ‖(A+E)x − b‖²`. In expectation
/// `(A+E)ᵀ(A+E) = AᵀA + m·σ²·I`, so this behaves like ridge with
/// `λ = m·σ²` — the "adding noise ≈ Tikhonov" equivalence of §2.3.
pub fn noisy_features_least_squares(
    a: &DenseMatrix,
    b: &[f64],
    sigma: f64,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    if !(sigma >= 0.0 && sigma.is_finite()) {
        return Err(RegularizeError::InvalidArgument(
            "sigma must be nonnegative".into(),
        ));
    }
    // Uniform on [−w, w] has variance w²/3 = σ² → w = σ√3.
    let w = sigma * 3.0f64.sqrt();
    let noisy = DenseMatrix::from_fn(a.nrows(), a.ncols(), |i, j| {
        a[(i, j)] + if w > 0.0 { rng.gen_range(-w..w) } else { 0.0 }
    });
    crate::explicit::ridge(&noisy, b, 0.0)
}

/// Average the ridge-like effect of feature noising over `trials`
/// repetitions (the expectation is the regularized solution; a single
/// draw is noisy).
pub fn noisy_features_averaged(
    a: &DenseMatrix,
    b: &[f64],
    sigma: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    if trials == 0 {
        return Err(RegularizeError::InvalidArgument(
            "trials must be positive".into(),
        ));
    }
    let mut acc = vec![0.0; a.ncols()];
    for _ in 0..trials {
        let x = noisy_features_least_squares(a, b, sigma, rng)?;
        vector::axpy(1.0 / trials as f64, &x, &mut acc);
    }
    Ok(acc)
}

/// Bin a vector into `bins` contiguous buckets, replacing each entry
/// with its bucket mean — aggregation as an explicit smoothing
/// projection (idempotent, energy non-increasing).
pub fn bin_vector(x: &[f64], bins: usize) -> Result<Vec<f64>> {
    if bins == 0 || bins > x.len() {
        return Err(RegularizeError::InvalidArgument(format!(
            "bins must be in 1..={}, got {bins}",
            x.len()
        )));
    }
    let n = x.len();
    let mut out = vec![0.0; n];
    for bidx in 0..bins {
        let lo = bidx * n / bins;
        let hi = ((bidx + 1) * n / bins).max(lo + 1);
        let mean: f64 = x[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        for o in &mut out[lo..hi] {
            *o = mean;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ridge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn design() -> (DenseMatrix, Vec<f64>) {
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.2],
            &[1.0, 1.1],
            &[1.0, 1.9],
            &[1.0, 3.2],
            &[1.0, 4.1],
        ]);
        let b = vec![0.9, 2.1, 3.0, 4.2, 4.8];
        (a, b)
    }

    #[test]
    fn gd_converges_to_least_squares() {
        let (a, b) = design();
        let path = gradient_descent_path(&a, &b, 0.02, 5000).unwrap();
        let ls = ridge(&a, &b, 0.0).unwrap();
        assert!(vector::dist2(path.last().unwrap(), &ls) < 1e-6);
    }

    #[test]
    fn early_stopping_tracks_ridge_path() {
        // The quantitative A-early claim: for each early-stopped iterate
        // there is a ridge λ ≈ 1/(k·step) giving a nearby solution.
        let (a, b) = design();
        let step = 0.02;
        let path = gradient_descent_path(&a, &b, step, 200).unwrap();
        for &k in &[5usize, 20, 80] {
            let lambda = 1.0 / (k as f64 * step);
            let ridge_sol = ridge(&a, &b, lambda).unwrap();
            let gd_sol = &path[k];
            let rel = vector::dist2(gd_sol, &ridge_sol) / vector::norm2(&ridge_sol);
            assert!(rel < 0.35, "k = {k}: relative gap {rel}");
        }
        // And the path's norm grows monotonically (shrinkage early).
        for w in path.windows(2).take(50) {
            assert!(vector::norm2(&w[1]) >= vector::norm2(&w[0]) - 1e-12);
        }
    }

    #[test]
    fn gd_validates() {
        let (a, b) = design();
        assert!(gradient_descent_path(&a, &b[..2], 0.1, 10).is_err());
        assert!(gradient_descent_path(&a, &b, 0.0, 10).is_err());
    }

    #[test]
    fn noise_addition_shrinks_like_ridge() {
        let (a, b) = design();
        let ls = ridge(&a, &b, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = noisy_features_averaged(&a, &b, 0.8, 200, &mut rng).unwrap();
        // The noisy-feature solution is shrunk relative to plain LS...
        assert!(vector::norm2(&noisy) < vector::norm2(&ls));
        // ...and lands near the ridge solution with λ = m·σ².
        let lambda = a.nrows() as f64 * 0.8 * 0.8;
        let ridge_sol = ridge(&a, &b, lambda).unwrap();
        let rel = vector::dist2(&noisy, &ridge_sol) / vector::norm2(&ridge_sol);
        assert!(rel < 0.35, "relative gap {rel}");
    }

    #[test]
    fn noise_zero_is_plain_least_squares() {
        let (a, b) = design();
        let mut rng = StdRng::seed_from_u64(1);
        let x = noisy_features_least_squares(&a, &b, 0.0, &mut rng).unwrap();
        let ls = ridge(&a, &b, 0.0).unwrap();
        assert!(vector::dist2(&x, &ls) < 1e-10);
        assert!(noisy_features_least_squares(&a, &b, -1.0, &mut rng).is_err());
        assert!(noisy_features_averaged(&a, &b, 0.1, 0, &mut rng).is_err());
    }

    #[test]
    fn binning_is_idempotent_smoothing() {
        let x = vec![1.0, 3.0, 2.0, 4.0, 10.0, 12.0];
        let binned = bin_vector(&x, 2).unwrap();
        assert_eq!(
            binned,
            vec![2.0, 2.0, 2.0, 26.0 / 3.0, 26.0 / 3.0, 26.0 / 3.0]
        );
        let twice = bin_vector(&binned, 2).unwrap();
        assert_eq!(binned, twice);
        // Energy (variance) non-increasing.
        let var = |v: &[f64]| {
            let m = vector::sum(v) / v.len() as f64;
            v.iter().map(|&a| (a - m) * (a - m)).sum::<f64>()
        };
        assert!(var(&binned) <= var(&x));
        assert!(bin_vector(&x, 0).is_err());
        assert!(bin_vector(&x, 7).is_err());
    }

    #[test]
    fn binning_full_resolution_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(bin_vector(&x, 3).unwrap(), x);
    }
}
