//! Problems (3), (4), and (5) of the paper, and the exact solver for
//! the regularized SDP.
//!
//! Problem (3) minimizes the Rayleigh quotient over unit vectors
//! orthogonal to the trivial eigenvector; Problem (4) is its SDP
//! relaxation over density matrices (equivalent: the optimum is rank
//! one); Problem (5) adds `(1/η)·G(X)`:
//!
//! ```text
//! minimize   Tr(𝓛X) + (1/η)·G(X)
//! subject to X ⪰ 0,  Tr(X) = 1,  X·D^{1/2}1 = 0.
//! ```
//!
//! For a spectral `G` the problem is unitarily invariant, so the
//! optimizer commutes with `𝓛` restricted to the feasible subspace:
//! diagonalize `𝓛`, drop the trivial eigenpair, solve the separable
//! scalar problem over the remaining spectrum
//! ([`Regularizer::optimal_spectrum`]), and reassemble. This gives the
//! *exact* optimum of Problem (5) — the reference that the diffusion
//! dynamics are checked against in [`crate::equivalence`].

use crate::regularizers::{DiffusionParameter, Regularizer};
use crate::{RegularizeError, Result};
use acir_graph::Graph;
use acir_linalg::{vector, DenseMatrix, SymEig};
use acir_spectral::{normalized_laplacian, trivial_eigenvector};

/// The spectral data of a graph needed by the SDP machinery: the
/// normalized Laplacian's eigendecomposition with the trivial eigenpair
/// identified.
#[derive(Debug, Clone)]
pub struct SpectralProblem {
    /// Eigenvalues of `𝓛` restricted to the feasible subspace
    /// (ascending, trivial `λ₁ = 0` removed).
    pub lambda: Vec<f64>,
    /// Matching eigenvectors (columns of length `n`).
    pub vectors: Vec<Vec<f64>>,
    /// The trivial eigenvector `D^{1/2}1` (unit norm).
    pub trivial: Vec<f64>,
    /// The dense normalized Laplacian (kept for objective evaluation).
    pub laplacian: DenseMatrix,
}

impl SpectralProblem {
    /// Build from a connected graph (dense eigendecomposition; intended
    /// for the reference scales of the equivalence experiments,
    /// `n ≲ 500`).
    pub fn new(g: &Graph) -> Result<Self> {
        if g.n() < 2 {
            return Err(RegularizeError::InvalidArgument(
                "need at least 2 nodes".into(),
            ));
        }
        if !acir_graph::traversal::is_connected(g) {
            return Err(RegularizeError::InvalidArgument(
                "SpectralProblem requires a connected graph".into(),
            ));
        }
        let nl = normalized_laplacian(g).to_dense();
        let eig = SymEig::new(&nl)?;
        let trivial = trivial_eigenvector(g);
        // Identify the trivial eigenpair as the one whose eigenvector
        // aligns with D^{1/2}1 (λ should be ≈ 0).
        let mut best = (0usize, -1.0f64);
        for k in 0..eig.dim() {
            let a = vector::alignment(&eig.eigenvector(k), &trivial);
            if a > best.1 {
                best = (k, a);
            }
        }
        let (skip, align) = best;
        if align < 0.999 {
            return Err(RegularizeError::InvalidArgument(format!(
                "could not identify the trivial eigenvector (alignment {align})"
            )));
        }
        let mut lambda = Vec::with_capacity(eig.dim() - 1);
        let mut vectors = Vec::with_capacity(eig.dim() - 1);
        for k in 0..eig.dim() {
            if k == skip {
                continue;
            }
            lambda.push(eig.eigenvalues[k]);
            vectors.push(eig.eigenvector(k));
        }
        Ok(Self {
            lambda,
            vectors,
            trivial,
            laplacian: nl,
        })
    }

    /// `λ₂` — the smallest feasible eigenvalue.
    pub fn lambda2(&self) -> f64 {
        self.lambda[0]
    }

    /// The exact Problem (4) optimum: the rank-one density matrix
    /// `v₂v₂ᵀ` (paper: the SDP relaxation is tight).
    pub fn problem4_optimum(&self) -> DenseMatrix {
        let v2 = &self.vectors[0];
        let n = v2.len();
        let mut x = DenseMatrix::zeros(n, n);
        x.rank1_update(1.0, v2, v2);
        x
    }

    /// Objective `Tr(𝓛X)` of Problem (4) for a density matrix.
    pub fn objective(&self, x: &DenseMatrix) -> f64 {
        self.laplacian.frob_inner(x).expect("dimension match")
    }

    /// Assemble `X = Σ μᵢ vᵢvᵢᵀ` from a spectrum on the feasible
    /// eigenvectors.
    pub fn assemble(&self, mu: &[f64]) -> Result<DenseMatrix> {
        if mu.len() != self.lambda.len() {
            return Err(RegularizeError::InvalidArgument(format!(
                "spectrum length {} != {}",
                mu.len(),
                self.lambda.len()
            )));
        }
        let n = self.trivial.len();
        let mut x = DenseMatrix::zeros(n, n);
        for (m, v) in mu.iter().zip(&self.vectors) {
            if *m != 0.0 {
                x.rank1_update(*m, v, v);
            }
        }
        Ok(x)
    }
}

/// An exact solution of the regularized SDP (Problem (5)).
#[derive(Debug, Clone)]
pub struct RegularizedSdpSolution {
    /// The optimal density matrix `X*`.
    pub x: DenseMatrix,
    /// Its spectrum on the feasible eigenvectors (aligned with
    /// `SpectralProblem::lambda`).
    pub mu: Vec<f64>,
    /// Objective value `Tr(𝓛X*) + (1/η)G(X*)`.
    pub objective: f64,
    /// Linear part `Tr(𝓛X*)` alone.
    pub linear_objective: f64,
    /// The trace-constraint Lagrange multiplier.
    pub multiplier: f64,
    /// The diffusion parameter this solution corresponds to under the
    /// Mahoney–Orecchia dictionary.
    pub implied: DiffusionParameter,
}

/// Solve Problem (5) exactly for regularizer `reg` at strength `1/η`.
pub fn solve_regularized_sdp(
    problem: &SpectralProblem,
    reg: Regularizer,
    eta: f64,
) -> Result<RegularizedSdpSolution> {
    let (mu, multiplier) = reg.optimal_spectrum(&problem.lambda, eta)?;
    let x = problem.assemble(&mu)?;
    let linear_objective: f64 = problem.lambda.iter().zip(&mu).map(|(&l, &m)| l * m).sum();
    let objective = linear_objective + reg.g(&mu) / eta;
    let implied = reg.implied_diffusion_parameter(eta, multiplier);
    Ok(RegularizedSdpSolution {
        x,
        mu,
        objective,
        linear_objective,
        multiplier,
        implied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path};
    use acir_spectral::fiedler_vector;

    #[test]
    fn spectral_problem_identifies_trivial_pair() {
        let g = barbell(4, 1).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        assert_eq!(sp.lambda.len(), g.n() - 1);
        assert!(sp.lambda[0] > 1e-10, "trivial eigenvalue removed");
        // λ₂ matches the Fiedler computation.
        let f = fiedler_vector(&g).unwrap();
        assert!((sp.lambda2() - f.lambda2).abs() < 1e-9);
    }

    #[test]
    fn problem4_is_rank_one_and_tight() {
        // Paper: Problems (3) and (4) are equivalent; the SDP optimum is
        // the rank-one matrix on v₂ with objective λ₂.
        let g = path(10).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        let x = sp.problem4_optimum();
        assert!((x.trace() - 1.0).abs() < 1e-10);
        assert!((sp.objective(&x) - sp.lambda2()).abs() < 1e-9);
        // Rank one: X² = X.
        let x2 = x.matmul(&x).unwrap();
        let mut diff = x2;
        diff.axpy(-1.0, &x).unwrap();
        assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn regularized_solution_is_feasible() {
        let g = cycle(9).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        for reg in [
            Regularizer::Entropy,
            Regularizer::LogDet,
            Regularizer::PNorm(1.5),
        ] {
            let sol = solve_regularized_sdp(&sp, reg, 2.0).unwrap();
            // Tr X = 1.
            assert!((sol.x.trace() - 1.0).abs() < 1e-9, "{reg:?}");
            // X v₁ = 0.
            let mut y = vec![0.0; g.n()];
            sol.x.gemv(1.0, &sp.trivial, 0.0, &mut y);
            assert!(vector::norm2(&y) < 1e-9, "{reg:?}");
            // PSD via spectrum ≥ 0.
            let eig = SymEig::new(&sol.x).unwrap();
            assert!(eig.eigenvalues[0] > -1e-9, "{reg:?}");
        }
    }

    #[test]
    fn regularization_term_raises_linear_objective() {
        // The regularized optimum trades objective for niceness: its
        // Tr(𝓛X) is ≥ λ₂ (the unregularized optimum), approaching λ₂
        // as η → ∞.
        let g = barbell(5, 0).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        let strong = solve_regularized_sdp(&sp, Regularizer::Entropy, 0.5).unwrap();
        let weak = solve_regularized_sdp(&sp, Regularizer::Entropy, 50.0).unwrap();
        assert!(strong.linear_objective >= weak.linear_objective - 1e-12);
        assert!(weak.linear_objective >= sp.lambda2() - 1e-12);
        assert!(weak.linear_objective - sp.lambda2() < 0.05);
    }

    #[test]
    fn complete_graph_solutions_are_uniform() {
        // K_n: all nontrivial eigenvalues equal, so μ is uniform for
        // every regularizer.
        let g = complete(6).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        for reg in [
            Regularizer::Entropy,
            Regularizer::LogDet,
            Regularizer::PNorm(2.0),
        ] {
            let sol = solve_regularized_sdp(&sp, reg, 1.0).unwrap();
            for &m in &sol.mu {
                assert!((m - 1.0 / 5.0).abs() < 1e-9, "{reg:?}");
            }
        }
    }

    #[test]
    fn validates_inputs() {
        let disconnected = acir_graph::Graph::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        assert!(SpectralProblem::new(&disconnected).is_err());
        let tiny = acir_graph::Graph::from_pairs(1, []).unwrap();
        assert!(SpectralProblem::new(&tiny).is_err());
        let g = path(5).unwrap();
        let sp = SpectralProblem::new(&g).unwrap();
        assert!(solve_regularized_sdp(&sp, Regularizer::Entropy, 0.0).is_err());
        assert!(sp.assemble(&[0.5, 0.5]).is_err());
    }

    use acir_linalg::vector;
}
