//! Explicit regularization — the paper's Eq. (1):
//! `x̂ = argmin_x f(x) + λ·g(x)`.
//!
//! The classical, "solve a modified objective exactly" form of
//! regularization that §2.3 contrasts with the implicit kind. Provided
//! here: ridge (Tikhonov / ℓ₂), lasso (ℓ₁, solved by ISTA since the
//! paper's own example is "ℓ₁-regularized ℓ₂-regression" being *harder*
//! than the unregularized problem), and graph-Laplacian (smoothness)
//! regularization — the vocabulary for the heuristic-equivalence
//! experiments in [`crate::heuristics`].

use crate::{RegularizeError, Result};
use acir_linalg::solve::Cholesky;
use acir_linalg::{vector, CsrMatrix, DenseMatrix, LinOp};

/// Ridge regression: `argmin ‖Ax − b‖² + λ‖x‖²`, solved exactly via
/// the normal equations `(AᵀA + λI)x = Aᵀb` (Cholesky).
pub fn ridge(a: &DenseMatrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if b.len() != a.nrows() {
        return Err(RegularizeError::InvalidArgument(format!(
            "b length {} != rows {}",
            b.len(),
            a.nrows()
        )));
    }
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(RegularizeError::InvalidArgument(format!(
            "lambda must be nonnegative, got {lambda}"
        )));
    }
    let at = a.transpose();
    let mut gram = at.matmul(a)?;
    gram.shift_diag(lambda);
    let mut atb = vec![0.0; a.ncols()];
    at.gemv(1.0, b, 0.0, &mut atb);
    Ok(Cholesky::new(&gram)?.solve(&atb)?)
}

/// Lasso: `argmin ½‖Ax − b‖² + λ‖x‖₁` by ISTA (proximal gradient with
/// soft thresholding). Returns the iterate after `iters` steps.
pub fn lasso(a: &DenseMatrix, b: &[f64], lambda: f64, iters: usize) -> Result<Vec<f64>> {
    if b.len() != a.nrows() {
        return Err(RegularizeError::InvalidArgument(format!(
            "b length {} != rows {}",
            b.len(),
            a.nrows()
        )));
    }
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(RegularizeError::InvalidArgument(
            "lambda must be nonnegative".into(),
        ));
    }
    let at = a.transpose();
    let gram = at.matmul(a)?;
    // Step size 1/L with L ≥ λmax(AᵀA) via a crude norm bound.
    let l = gram.max_abs() * gram.nrows() as f64;
    let step = if l > 0.0 { 1.0 / l } else { 1.0 };
    let mut atb = vec![0.0; a.ncols()];
    at.gemv(1.0, b, 0.0, &mut atb);

    let mut x = vec![0.0; a.ncols()];
    let mut grad = vec![0.0; a.ncols()];
    for _ in 0..iters {
        // grad = AᵀA x − Aᵀb.
        gram.gemv(1.0, &x, 0.0, &mut grad);
        vector::axpy(-1.0, &atb, &mut grad);
        for (xi, gi) in x.iter_mut().zip(&grad) {
            *xi = soft_threshold(*xi - step * gi, step * lambda);
        }
    }
    Ok(x)
}

/// The soft-thresholding (shrinkage) operator
/// `S_t(x) = sign(x)·max(|x| − t, 0)` — the proximal map of `t‖·‖₁`
/// and the formal version of the "'truncating' to zero small entries
/// or 'shrinking' all entries of a solution vector" heuristic (§2.3).
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Hard thresholding: zero out entries with `|x| ≤ t` (the ℓ₀-flavored
/// truncation the strongly local methods of §3.3 apply).
#[inline]
pub fn hard_threshold(x: f64, t: f64) -> f64 {
    if x.abs() > t {
        x
    } else {
        0.0
    }
}

/// Graph-Tikhonov smoothing: `argmin ‖x − y‖² + λ·xᵀLx`, the canonical
/// "solution niceness = smoothness across edges" regularizer. Solved
/// with CG on `(I + λL)x = y`.
pub fn graph_tikhonov(l: &CsrMatrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if l.nrows() != l.ncols() || l.nrows() != y.len() {
        return Err(RegularizeError::InvalidArgument(
            "graph_tikhonov dimension mismatch".into(),
        ));
    }
    if !(lambda >= 0.0 && lambda.is_finite()) {
        return Err(RegularizeError::InvalidArgument(
            "lambda must be nonnegative".into(),
        ));
    }
    struct Op<'a> {
        l: &'a CsrMatrix,
        lambda: f64,
    }
    impl LinOp for Op<'_> {
        fn dim(&self) -> usize {
            self.l.nrows()
        }
        fn apply(&self, x: &[f64], out: &mut [f64]) {
            self.l.matvec(x, out);
            for (o, xi) in out.iter_mut().zip(x) {
                *o = xi + self.lambda * *o;
            }
        }
    }
    let op = Op { l, lambda };
    let res = acir_linalg::solve::cg(
        &op,
        y,
        &vec![0.0; y.len()],
        &acir_linalg::solve::CgOptions {
            max_iters: 10_000,
            tol: 1e-12,
        },
    )?;
    Ok(res.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_spectral::combinatorial_laplacian;

    fn design() -> (DenseMatrix, Vec<f64>) {
        // Overdetermined 4x2 system.
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = vec![1.0, 2.0, 2.0, 4.0];
        (a, b)
    }

    #[test]
    fn ridge_zero_lambda_is_least_squares() {
        let (a, b) = design();
        let x = ridge(&a, &b, 0.0).unwrap();
        // Normal equations residual orthogonal to columns.
        let mut ax = vec![0.0; 4];
        a.gemv(1.0, &x, 0.0, &mut ax);
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| q - p).collect();
        let at = a.transpose();
        let mut atr = vec![0.0; 2];
        at.gemv(1.0, &r, 0.0, &mut atr);
        assert!(vector::norm2(&atr) < 1e-10);
    }

    #[test]
    fn ridge_shrinks_with_lambda() {
        let (a, b) = design();
        let x0 = ridge(&a, &b, 0.0).unwrap();
        let x1 = ridge(&a, &b, 10.0).unwrap();
        let x2 = ridge(&a, &b, 1000.0).unwrap();
        assert!(vector::norm2(&x1) < vector::norm2(&x0));
        assert!(vector::norm2(&x2) < vector::norm2(&x1));
    }

    #[test]
    fn ridge_validates() {
        let (a, b) = design();
        assert!(ridge(&a, &b[..2], 1.0).is_err());
        assert!(ridge(&a, &b, -1.0).is_err());
        assert!(ridge(&a, &b, f64::NAN).is_err());
    }

    #[test]
    fn lasso_sparsifies() {
        let (a, b) = design();
        let dense = lasso(&a, &b, 0.0, 4000).unwrap();
        let sparse = lasso(&a, &b, 8.0, 4000).unwrap();
        let nnz = |v: &[f64]| v.iter().filter(|&&x| x.abs() > 1e-9).count();
        assert!(nnz(&sparse) <= nnz(&dense));
        assert!(vector::norm1(&sparse) < vector::norm1(&dense));
        // λ = 0 ISTA converges to least squares.
        let ls = ridge(&a, &b, 0.0).unwrap();
        assert!(vector::dist2(&dense, &ls) < 1e-5);
    }

    #[test]
    fn thresholding_operators() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(hard_threshold(3.0, 1.0), 3.0);
        assert_eq!(hard_threshold(0.5, 1.0), 0.0);
        assert_eq!(hard_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn graph_tikhonov_smooths_noise() {
        // Path graph, noisy step signal: smoothing reduces the Dirichlet
        // energy xᵀLx while staying close to the input.
        let g = acir_graph::gen::deterministic::path(20).unwrap();
        let l = combinatorial_laplacian(&g);
        let y: Vec<f64> = (0..20)
            .map(|i| if i < 10 { 0.0 } else { 1.0 } + if i % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        let x = graph_tikhonov(&l, &y, 2.0).unwrap();
        assert!(l.quad_form(&x) < l.quad_form(&y), "energy reduced");
        assert!(vector::dist2(&x, &y) < vector::norm2(&y), "fidelity kept");
        // λ = 0 is the identity.
        let x0 = graph_tikhonov(&l, &y, 0.0).unwrap();
        assert!(vector::dist2(&x0, &y) < 1e-9);
    }

    #[test]
    fn graph_tikhonov_validates() {
        let g = acir_graph::gen::deterministic::path(4).unwrap();
        let l = combinatorial_laplacian(&g);
        assert!(graph_tikhonov(&l, &[1.0, 2.0], 1.0).is_err());
        assert!(graph_tikhonov(&l, &[0.0; 4], -1.0).is_err());
    }
}
