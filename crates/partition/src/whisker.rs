//! Whisker analysis — the mechanism behind the small-scale dips of the
//! network community profile.
//!
//! Refs \[27, 28\] (and §3.2's "structures analogous to stringy pieces
//! that are cut off or regularized away by spectral methods") identify
//! *whiskers* — maximal subtrees hanging off the graph's 2-core by a
//! single edge — as the best-conductance sets at small scales in real
//! social networks, and *unions of whiskers* as the NCP's lower
//! envelope at medium scales. This module extracts the whiskers exactly
//! (1-shaving), computes each one's conductance (cut = the one anchor
//! edge), and builds the union envelope, so experiments can check how
//! much of a computed NCP is explained by pure whisker structure.

use crate::{PartitionError, Result};
use acir_graph::{Graph, NodeId};

/// One whisker: a maximal subtree attached to the 2-core by one edge.
#[derive(Debug, Clone)]
pub struct Whisker {
    /// The whisker's nodes (sorted; excludes the core anchor).
    pub nodes: Vec<NodeId>,
    /// The core node it hangs from.
    pub anchor: NodeId,
    /// Weight of the single anchor edge (the whisker's cut).
    pub cut: f64,
    /// Volume of the whisker nodes.
    pub volume: f64,
}

impl Whisker {
    /// Conductance of the whisker as a cluster.
    pub fn conductance(&self) -> f64 {
        if self.volume > 0.0 {
            self.cut / self.volume
        } else {
            f64::INFINITY
        }
    }
}

/// Extract all whiskers of `g` by iterated degree-1 shaving.
///
/// Each connected component of the shaved node set attaches to the
/// 2-core by exactly one edge (otherwise the attachment cycle would
/// have protected it from shaving). Components that are entire
/// connected components of `g` (trees with no core) are skipped — they
/// have conductance 0 and are not "whiskers" of anything.
pub fn whiskers(g: &Graph) -> Result<Vec<Whisker>> {
    let n = g.n();
    // Iterated shaving.
    let mut alive_deg: Vec<usize> = (0..n as NodeId).map(|u| g.degree_unweighted(u)).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = (0..n as NodeId)
        .filter(|&u| alive_deg[u as usize] == 1)
        .collect();
    while let Some(u) = stack.pop() {
        if removed[u as usize] {
            continue;
        }
        removed[u as usize] = true;
        for (v, _) in g.neighbors(u) {
            if !removed[v as usize] && alive_deg[v as usize] > 0 {
                alive_deg[v as usize] -= 1;
                if alive_deg[v as usize] == 1 {
                    stack.push(v);
                }
            }
        }
    }

    // Components of the removed set + their anchor edges.
    let mut comp = vec![u32::MAX; n];
    let mut out = Vec::new();
    let mut next_comp = 0u32;
    for s in 0..n as NodeId {
        if !removed[s as usize] || comp[s as usize] != u32::MAX {
            continue;
        }
        let mut nodes = Vec::new();
        let mut anchor: Option<(NodeId, f64)> = None;
        let mut q = std::collections::VecDeque::new();
        comp[s as usize] = next_comp;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            nodes.push(u);
            for (v, w) in g.neighbors(u) {
                if removed[v as usize] {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = next_comp;
                        q.push_back(v);
                    }
                } else {
                    // Edge into the surviving 2-core.
                    match &anchor {
                        Some(_) => {
                            return Err(PartitionError::InvalidArgument(
                                "shaved component with two core attachments (invariant violation)"
                                    .into(),
                            ))
                        }
                        None => anchor = Some((v, w)),
                    }
                }
            }
        }
        next_comp += 1;
        let Some((anchor, cut)) = anchor else {
            continue; // an entire tree component of g, not a whisker
        };
        nodes.sort_unstable();
        let volume = g.volume(&nodes);
        out.push(Whisker {
            nodes,
            anchor,
            cut,
            volume,
        });
    }
    // Largest volume first (the envelope order).
    out.sort_by(|a, b| b.volume.partial_cmp(&a.volume).unwrap());
    Ok(out)
}

/// The whisker union envelope: for `k = 1..=count`, the union of the
/// `k` largest-volume whiskers, its size, and its conductance
/// `(Σ cuts) / (Σ volumes)` — the \[28\] lower-envelope construction.
/// Returns `(size, conductance)` pairs, one per `k`.
pub fn whisker_union_envelope(g: &Graph) -> Result<Vec<(usize, f64)>> {
    let ws = whiskers(g)?;
    let total = g.total_volume();
    let mut out = Vec::with_capacity(ws.len());
    let mut cut = 0.0;
    let mut vol = 0.0;
    let mut size = 0usize;
    for w in &ws {
        cut += w.cut;
        vol += w.volume;
        size += w.nodes.len();
        if vol > total / 2.0 {
            break;
        }
        out.push((size, cut / vol));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{complete, lollipop};
    use acir_graph::GraphBuilder;

    #[test]
    fn lollipop_has_one_whisker() {
        let g = lollipop(6, 4).unwrap(); // K6 + 4-node tail
        let ws = whiskers(&g).unwrap();
        assert_eq!(ws.len(), 1);
        let w = &ws[0];
        assert_eq!(w.nodes, vec![6, 7, 8, 9]);
        assert_eq!(w.anchor, 0);
        assert_eq!(w.cut, 1.0);
        // Tail volume: degrees 2,2,2,1 = 7.
        assert_eq!(w.volume, 7.0);
        assert!((w.conductance() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clique_has_no_whiskers() {
        let g = complete(6).unwrap();
        assert!(whiskers(&g).unwrap().is_empty());
    }

    #[test]
    fn multiple_whiskers_sorted_by_volume() {
        // K5 core with a 2-node whisker at node 0 and a 5-node whisker
        // at node 1.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_pair(u, v);
            }
        }
        b.add_pair(0, 5);
        b.add_pair(5, 6);
        let mut prev = 1u32;
        for i in 0..5u32 {
            let x = 7 + i;
            b.add_pair(prev, x);
            prev = x;
        }
        let g = b.build().unwrap();
        let ws = whiskers(&g).unwrap();
        assert_eq!(ws.len(), 2);
        assert!(ws[0].volume > ws[1].volume);
        assert_eq!(ws[0].nodes.len(), 5);
        assert_eq!(ws[1].nodes.len(), 2);
        assert_eq!(ws[0].anchor, 1);
        assert_eq!(ws[1].anchor, 0);
        // Every whisker's conductance equals the direct computation.
        for w in &ws {
            let direct = crate::conductance::conductance(&g, &w.nodes).unwrap();
            assert!((w.conductance() - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn union_envelope_improves_conductance_with_k() {
        // Core = K8; three whiskers of lengths 6, 4, 2.
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                b.add_pair(u, v);
            }
        }
        let mut next = 8u32;
        for (root, len) in [(0u32, 6u32), (1, 4), (2, 2)] {
            let mut prev = root;
            for _ in 0..len {
                b.add_pair(prev, next);
                prev = next;
                next += 1;
            }
        }
        let g = b.build().unwrap();
        let env = whisker_union_envelope(&g).unwrap();
        assert_eq!(env.len(), 3);
        // Sizes accumulate 6, 10, 12.
        assert_eq!(env[0].0, 6);
        assert_eq!(env[1].0, 10);
        assert_eq!(env[2].0, 12);
        // Unions of large whiskers keep conductance low; envelope values
        // match direct union computations.
        let ws = whiskers(&g).unwrap();
        let mut union: Vec<u32> = Vec::new();
        for (k, &(_, phi)) in env.iter().enumerate() {
            union.extend(ws[k].nodes.iter().copied());
            let mut sorted = union.clone();
            sorted.sort_unstable();
            let direct = crate::conductance::conductance(&g, &sorted).unwrap();
            assert!((phi - direct).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn whiskers_on_social_surrogate_match_census() {
        use acir_graph::gen::community::{social_network, SocialNetworkParams};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let pc = social_network(
            &mut rng,
            &SocialNetworkParams {
                core_nodes: 200,
                core_attach: 3,
                communities: 4,
                community_size_range: (5, 25),
                whiskers: 12,
                whisker_max_len: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let (g, _) = acir_graph::traversal::largest_component(&pc.graph);
        let ws = whiskers(&g).unwrap();
        let whisker_nodes: usize = ws.iter().map(|w| w.nodes.len()).sum();
        let (census, _) = acir_graph::stats::whisker_census(&g);
        assert_eq!(
            whisker_nodes, census,
            "two independent whisker counts agree"
        );
        assert!(!ws.is_empty());
    }
}
