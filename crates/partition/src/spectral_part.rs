//! Global spectral partitioning (§3.2, the "spectral" rival).
//!
//! Solve Problem (3) — exactly via the Fiedler vector, or approximately
//! via a truncated power iteration — then perform a sweep cut over the
//! resulting vector. The cut is "quadratically good": by Cheeger, if
//! the graph has a cut of conductance `O(φ²)` the sweep finds one of
//! conductance ≤ `φ`. The truncated variant exposes the iteration count
//! so experiments can watch early stopping act as a regularizer.

use crate::{PartitionError, Result};
use acir_graph::Graph;
use acir_linalg::power::{power_method, power_method_budgeted, PowerOptions};
use acir_linalg::{vector, LinOp, ShiftedOp};
use acir_local::sweep::{sweep_cut, SweepResult};
use acir_runtime::{Budget, Certificate, SolverOutcome};
use acir_spectral::{fiedler_vector, normalized_laplacian, trivial_eigenvector};

/// Outcome of a spectral bisection.
#[derive(Debug, Clone)]
pub struct SpectralCut {
    /// The sweep result (best prefix set + conductance + profile).
    pub sweep: SweepResult,
    /// The embedding vector that was swept (degree-normalized order).
    pub embedding: Vec<f64>,
    /// `λ₂` of the normalized Laplacian (exact route only; the
    /// truncated route reports the Rayleigh quotient of its iterate).
    pub lambda2: f64,
}

/// Exact spectral bisection: Fiedler vector of `𝓛`, embedded as
/// `D^{−1/2} v₂`, then a sweep cut.
pub fn spectral_bisect(g: &Graph) -> Result<SpectralCut> {
    let f = fiedler_vector(g)?;
    let embedding = d_inv_sqrt_scale(g, &f.vector);
    let sweep = sweep_cut(g, &embedding);
    Ok(SpectralCut {
        sweep,
        embedding,
        lambda2: f.lambda2,
    })
}

/// Truncated spectral bisection: `iters` power-method steps on the
/// shifted operator `2I − 𝓛` (so the Fiedler direction is dominant
/// after deflating the trivial eigenvector), from a deterministic
/// pseudo-random seed, then the same sweep.
///
/// This is the §2.3 "early stopping" knob applied to §3.2: tiny budgets
/// give seed-dependent, smoothed cuts; large budgets converge to
/// [`spectral_bisect`].
pub fn spectral_bisect_truncated(g: &Graph, iters: usize) -> Result<SpectralCut> {
    if iters == 0 {
        return Err(PartitionError::InvalidArgument(
            "iters must be positive".into(),
        ));
    }
    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);
    // 2I − 𝓛 has spectrum in [0, 2] with the Fiedler direction at
    // 2 − λ₂ — the largest after deflation.
    let shifted = ShiftedOp::new(&nl, -1.0, 2.0);
    let seed = deterministic_seed(g.n());
    let opts = PowerOptions {
        max_iters: iters,
        tol: 0.0, // pure early stopping: run exactly `iters` steps
        deflate: vec![v1],
    };
    let r = power_method(&shifted, &seed, &opts)?;
    Ok(cut_from_iterate(g, &nl, &r.eigenvector))
}

/// Deterministic pseudo-random seed vector shared by the truncated and
/// budgeted bisections (an LCG from a fixed state, so every run — and
/// every thread count — sees the same starting iterate).
fn deterministic_seed(n: usize) -> Vec<f64> {
    let mut state = 0x243f6a8885a308d3u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// Sweep a power iterate into a [`SpectralCut`]: degree-normalize the
/// embedding, sweep it, and report the Rayleigh quotient of the iterate
/// against `𝓛` (not the shifted operator).
fn cut_from_iterate(g: &Graph, nl: &acir_linalg::CsrMatrix, v: &[f64]) -> SpectralCut {
    let embedding = d_inv_sqrt_scale(g, v);
    let sweep = sweep_cut(g, &embedding);
    let rq = {
        let lx = nl.apply_vec(v);
        vector::dot(v, &lx)
    };
    SpectralCut {
        sweep,
        embedding,
        lambda2: rq,
    }
}

/// Budgeted spectral bisection: power iteration on `2I − 𝓛` under a
/// resource [`Budget`], then a sweep cut over whatever iterate the
/// budget affords.
///
/// The sweep is an *anytime* consumer — any embedding vector yields a
/// valid cut with a real conductance — so budget exhaustion degrades
/// gracefully into a certified partial: the returned
/// [`Certificate::RayleighInterval`] (translated back from the shifted
/// operator, so `center ≈ λ₂ of 𝓛`) bounds how far the iterate's
/// eigenvalue estimate can be from a true one. This is §2.3 early
/// stopping surfaced as an explicit resource knob.
pub fn spectral_bisect_budgeted(g: &Graph, budget: &Budget) -> Result<SolverOutcome<SpectralCut>> {
    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);
    let shifted = ShiftedOp::new(&nl, -1.0, 2.0);
    let seed = deterministic_seed(g.n());
    let opts = PowerOptions {
        max_iters: usize::MAX,
        tol: 1e-10,
        deflate: vec![v1],
    };
    // CORE LOOP (delegated: the power recurrence lives in acir-linalg)
    let out = power_method_budgeted(&shifted, &seed, &opts, budget)?;

    let build = |r: acir_linalg::power::PowerResult| cut_from_iterate(g, &nl, &r.eigenvector);

    Ok(match out {
        SolverOutcome::Converged {
            value,
            mut diagnostics,
        } => {
            let cut = build(value);
            diagnostics.sweep_cut(cut.sweep.set.len(), cut.sweep.conductance);
            diagnostics.wrap_span("partition.spectral_bisect");
            SolverOutcome::Converged {
                value: cut,
                diagnostics,
            }
        }
        SolverOutcome::BudgetExhausted {
            best_so_far,
            exhausted,
            certificate,
            mut diagnostics,
        } => {
            // Translate the enclosure from 2I − 𝓛 back to 𝓛: an
            // eigenvalue μ of the shifted operator corresponds to
            // λ = 2 − μ, with the same radius.
            let certificate = match certificate {
                Certificate::RayleighInterval { center, radius } => Certificate::RayleighInterval {
                    center: 2.0 - center,
                    radius,
                },
                other => other,
            };
            diagnostics.note("sweep cut computed from the truncated power iterate");
            let cut = build(best_so_far);
            diagnostics.sweep_cut(cut.sweep.set.len(), cut.sweep.conductance);
            diagnostics.certificate_issued(&certificate);
            diagnostics.wrap_span("partition.spectral_bisect");
            SolverOutcome::BudgetExhausted {
                best_so_far: cut,
                exhausted,
                certificate,
                diagnostics,
            }
        }
        SolverOutcome::Diverged {
            at_iter,
            cause,
            mut diagnostics,
        } => {
            diagnostics.wrap_span("partition.spectral_bisect");
            SolverOutcome::Diverged {
                at_iter,
                cause,
                diagnostics,
            }
        }
    })
}

/// Ratio-cut spectral bisection: the Fiedler vector of the
/// *combinatorial* Laplacian `L = D − A` (deflating the constant
/// vector), swept in raw coordinate order.
///
/// This is the setting of the Guattery–Miller lower bound \[21\]: on the
/// cockroach graph the combinatorial Fiedler mode is the top/bottom
/// antisymmetric one for every `k`, so the half-size sweep prefix cuts
/// `Θ(k)` rung edges while the optimal bisection cuts 2. (Under the
/// normalized Laplacian the mode can cross over to the left/right cut
/// at large `k` because rung nodes carry higher degree.)
pub fn spectral_bisect_ratio(g: &Graph) -> Result<SpectralCut> {
    if g.n() < 2 || !acir_graph::traversal::is_connected(g) {
        return Err(PartitionError::InvalidArgument(
            "spectral_bisect_ratio needs a connected graph with >= 2 nodes".into(),
        ));
    }
    let l = acir_spectral::combinatorial_laplacian(g);
    let n = g.n();
    let ones = vec![1.0 / (n as f64).sqrt(); n];
    let (vals, vecs) = acir_linalg::lanczos::smallest_eigenpairs(
        &l,
        1,
        n.min(4 * (n as f64).ln() as usize + 60),
        std::slice::from_ref(&ones),
    )?;
    // Adaptive retry on residual, mirroring fiedler_vector.
    let mut lambda2 = vals[0];
    let mut v2 = vecs[0].clone();
    {
        let mut r = vec![0.0; n];
        l.matvec(&v2, &mut r);
        vector::axpy(-lambda2, &v2, &mut r);
        if vector::norm2(&r) > 1e-7 {
            let (vals, vecs) =
                acir_linalg::lanczos::smallest_eigenpairs(&l, 1, n, std::slice::from_ref(&ones))?;
            lambda2 = vals[0];
            v2 = vecs[0].clone();
        }
    }
    // Plain (non-degree-normalized) ordering: sweep on v2 directly by
    // feeding degree-scaled scores, cancelling sweep_cut's internal
    // division by degree.
    let embedding: Vec<f64> = v2
        .iter()
        .zip(g.degrees())
        .map(|(&x, &d)| x * d.max(f64::MIN_POSITIVE))
        .collect();
    let sweep = sweep_cut(g, &embedding);
    Ok(SpectralCut {
        sweep,
        embedding: v2,
        lambda2,
    })
}

fn d_inv_sqrt_scale(g: &Graph, x: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(g.degrees())
        .map(|(&v, &d)| if d > 0.0 { v / d.sqrt() } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, cockroach, grid2d};

    #[test]
    fn exact_bisect_finds_barbell_cut() {
        let g = barbell(8, 2).unwrap();
        let r = spectral_bisect(&g).unwrap();
        // Optimal-ish: one clique (possibly with bridge prefix).
        assert!(r.sweep.conductance < 0.05, "φ = {}", r.sweep.conductance);
        assert!(r.lambda2 < 0.1);
        // Cheeger sanity: sweep conductance ≥ λ₂ / 2.
        assert!(r.sweep.conductance >= r.lambda2 / 2.0 - 1e-9);
    }

    #[test]
    fn truncated_converges_to_exact() {
        let g = barbell(6, 0).unwrap();
        let exact = spectral_bisect(&g).unwrap();
        let late = spectral_bisect_truncated(&g, 3000).unwrap();
        // The eigenvector sign is arbitrary, so the converged sweep may
        // return either side of the (symmetric) optimal cut.
        let complement: Vec<u32> = (0..g.n() as u32)
            .filter(|u| !exact.sweep.set.contains(u))
            .collect();
        assert!(
            late.sweep.set == exact.sweep.set || late.sweep.set == complement,
            "{:?}",
            late.sweep.set
        );
        assert!((late.sweep.conductance - exact.sweep.conductance).abs() < 1e-9);
    }

    #[test]
    fn truncated_few_iters_is_still_usable() {
        let g = barbell(6, 0).unwrap();
        let early = spectral_bisect_truncated(&g, 3).unwrap();
        // Even an aggressively truncated iterate gives a real cut with
        // finite conductance (the practitioner's experience).
        assert!(early.sweep.conductance.is_finite());
        assert!(!early.sweep.set.is_empty());
        assert!(spectral_bisect_truncated(&g, 0).is_err());
    }

    #[test]
    fn budgeted_bisect_converges_like_exact() {
        let g = barbell(6, 0).unwrap();
        let out = spectral_bisect_budgeted(&g, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let exact = spectral_bisect(&g).unwrap();
        let cut = out.value().unwrap();
        assert!((cut.sweep.conductance - exact.sweep.conductance).abs() < 1e-9);
    }

    #[test]
    fn budgeted_bisect_exhaustion_still_cuts() {
        let g = barbell(6, 0).unwrap();
        let out = spectral_bisect_budgeted(&g, &Budget::iterations(3)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let cut = out.value().unwrap();
        // Anytime: a real cut with finite conductance, plus a
        // certificate translated back to the Laplacian's spectrum.
        assert!(cut.sweep.conductance.is_finite());
        assert!(!cut.sweep.set.is_empty());
        match out.certificate() {
            Some(&Certificate::RayleighInterval { center, radius }) => {
                // spec(𝓛) ⊆ [0, 2]: the interval must intersect it.
                assert!(center - radius <= 2.0 + 1e-9 && center + radius >= -1e-9);
            }
            c => panic!("wrong certificate {c:?}"),
        }
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn grid_cut_is_balancedish() {
        let g = grid2d(8, 8).unwrap();
        let r = spectral_bisect(&g).unwrap();
        // The spectral cut of a square grid is a near-half split.
        let frac = r.sweep.set.len() as f64 / 64.0;
        assert!((0.3..=0.7).contains(&frac), "fraction {frac}");
        assert!(r.sweep.conductance < 0.2);
    }

    #[test]
    fn cockroach_exhibits_spectral_weakness() {
        // Guattery–Miller: on the cockroach the Fiedler mode is the
        // top/bottom antisymmetric one (it pays energy only on the k
        // rungs and can concentrate on the free antennae), so the
        // spectral *bisection* — the half-size sweep prefix — cuts
        // Θ(k) rung edges, while the optimal bisection (antennae vs
        // ladder, a left/right cut) cuts only 2 edges. This is the
        // "long paths confused with deep cuts" pathology of §3.2.
        let k = 8;
        let g = cockroach(k).unwrap();
        let r = spectral_bisect(&g).unwrap();
        // Structural signature 1: antisymmetry of the Fiedler vector
        // between the two paths (top node i vs bottom node i).
        let f = acir_spectral::fiedler_vector(&g).unwrap();
        for i in 0..(2 * k) {
            let top = f.vector[i];
            let bot = f.vector[2 * k + i];
            assert!(
                (top + bot).abs() < 1e-6,
                "position {i}: {top} vs {bot} not antisymmetric"
            );
        }
        // Structural signature 2: the half-size sweep prefix (the
        // spectral bisection) cuts Θ(k) edges; the left/right bisection
        // cuts 2.
        let half: Vec<u32> = r.sweep.order[..2 * k].to_vec();
        let spectral_cut = crate::conductance::cut_weight(&g, &half).unwrap();
        let left_right: Vec<u32> = (0..k as u32) // left half of top path
            .chain(2 * k as u32..3 * k as u32) // left half of bottom path
            .collect();
        let optimal_cut = crate::conductance::cut_weight(&g, &left_right).unwrap();
        assert!((optimal_cut - 2.0).abs() < 1e-9);
        assert!(
            spectral_cut >= k as f64 * 0.75,
            "spectral bisection cut {spectral_cut} should be Θ(k = {k})"
        );
    }

    #[test]
    fn ratio_bisect_on_cockroach_is_top_bottom_for_all_k() {
        // The GM pathology under the combinatorial Laplacian persists
        // at sizes where the normalized variant crosses over.
        for k in [4usize, 8, 16] {
            let g = cockroach(k).unwrap();
            let r = spectral_bisect_ratio(&g).unwrap();
            let half: Vec<u32> = r.sweep.order[..g.n() / 2].to_vec();
            let cut = crate::conductance::cut_weight(&g, &half).unwrap();
            assert!(cut >= 0.75 * k as f64, "k={k}: bisection cut {cut}");
        }
    }

    #[test]
    fn ratio_bisect_finds_barbell_cut() {
        let g = barbell(6, 0).unwrap();
        let r = spectral_bisect_ratio(&g).unwrap();
        assert!(r.sweep.conductance < 0.05);
        assert!(r.lambda2 > 0.0);
        let disconnected = acir_graph::Graph::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        assert!(spectral_bisect_ratio(&disconnected).is_err());
    }

    #[test]
    fn embedding_is_degree_normalized_fiedler() {
        let g = barbell(5, 0).unwrap();
        let r = spectral_bisect(&g).unwrap();
        let f = fiedler_vector(&g).unwrap();
        for u in 0..g.n() {
            let expect = f.vector[u] / g.degree(u as u32).sqrt();
            // Up to global sign.
            assert!(
                (r.embedding[u] - expect).abs() < 1e-9 || (r.embedding[u] + expect).abs() < 1e-9
            );
        }
    }
}
