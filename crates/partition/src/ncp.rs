//! Network Community Profile (NCP) computation — the engine behind the
//! Figure 1 reproduction.
//!
//! The NCP (refs \[27, 28\]) plots, against cluster size `k`, the best
//! conductance found among clusters of ≈ `k` nodes. Figure 1 overlays
//! the NCPs of two approximation algorithms for the same intractable
//! objective:
//!
//! * [`ncp_local_spectral`] — the "LocalSpectral" method (blue in the
//!   paper): many ACL-push runs across seeds and teleportation/
//!   truncation scales; *every prefix of every sweep* contributes a
//!   candidate cluster, harvested into log-spaced size bins.
//! * [`ncp_metis_mqi`] — the "Metis+MQI" method (red): recursive
//!   multilevel partitioning down to a ladder of size targets, each
//!   piece polished by MQI.
//!
//! Both return the same [`NcpPoint`] shape (including the winning
//! cluster itself, so the Figure 1(b)/(c) niceness measures can be
//! evaluated on exactly the plotted clusters). Seed-level work fans out
//! on the deterministic [`acir_exec::ExecPool`] (`opts.threads` by
//! default, the `ACIR_THREADS` environment variable when set); the
//! per-bin accumulator's tie-breaking makes every profile independent
//! of the thread count.

use crate::conductance::conductance_of_mask;
use crate::multilevel::{recursive_partition, MultilevelOptions};
use crate::Result;
use acir_exec::ExecPool;
use acir_flow::mqi;
use acir_graph::Permutation;
use acir_graph::{Graph, NodeId};
use acir_local::push::ppr_push;
use acir_local::sweep::sweep_cut_sparse;
use acir_runtime::{Budget, Certificate, Diagnostics, Exhaustion, KernelCtx, SolverOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point of a network community profile.
#[derive(Debug, Clone)]
pub struct NcpPoint {
    /// Representative cluster size (the actual size of the best
    /// cluster in this bin).
    pub size: usize,
    /// Best conductance found at this scale.
    pub conductance: f64,
    /// The winning cluster (sorted node ids).
    pub set: Vec<NodeId>,
}

impl NcpPoint {
    /// Map a point computed on `g.permute(perm)` back to the original
    /// vertex ids (size and conductance are labelling-independent).
    pub fn map_back(&self, perm: &Permutation) -> NcpPoint {
        NcpPoint {
            size: self.size,
            conductance: self.conductance,
            set: perm.unmap_nodes(&self.set),
        }
    }
}

/// Options shared by the NCP methods.
#[derive(Debug, Clone)]
pub struct NcpOptions {
    /// Smallest cluster size of interest.
    pub min_size: usize,
    /// Largest cluster size of interest.
    pub max_size: usize,
    /// Log-spaced bins per decade of size.
    pub bins_per_decade: usize,
    /// Number of PPR seeds (local spectral method).
    pub seeds: usize,
    /// Teleportation values α for the push runs.
    pub alphas: Vec<f64>,
    /// Truncation values ε for the push runs.
    pub epsilons: Vec<f64>,
    /// Size targets for the Metis+MQI ladder (log-spaced if empty).
    pub metis_targets: Vec<usize>,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub rng_seed: u64,
}

impl Default for NcpOptions {
    fn default() -> Self {
        Self {
            min_size: 2,
            max_size: 10_000,
            bins_per_decade: 8,
            seeds: 64,
            alphas: vec![0.3, 0.1, 0.03, 0.01],
            epsilons: vec![1e-3, 1e-4, 1e-5],
            metis_targets: Vec::new(),
            threads: 4,
            rng_seed: 0xF1C,
        }
    }
}

/// Size → bin index (log-spaced).
fn bin_of(size: usize, bins_per_decade: usize) -> usize {
    ((size as f64).log10() * bins_per_decade as f64).floor() as usize
}

/// Accumulator: best (conductance, set) per size bin.
#[derive(Default)]
struct NcpAccum {
    best: std::collections::BTreeMap<usize, (f64, Vec<NodeId>)>,
}

impl NcpAccum {
    fn offer(&mut self, bins_per_decade: usize, phi: f64, set: &[NodeId]) {
        if set.is_empty() || !phi.is_finite() {
            return;
        }
        let bin = bin_of(set.len(), bins_per_decade);
        // Deterministic tie-breaking (symmetric graphs produce many
        // equal-conductance clusters): on equal φ prefer the
        // lexicographically smaller sorted set.
        let mut s = set.to_vec();
        s.sort_unstable();
        match self.best.get(&bin) {
            Some((best_phi, best_set))
                if *best_phi < phi || (*best_phi == phi && *best_set <= s) => {}
            _ => {
                self.best.insert(bin, (phi, s));
            }
        }
    }

    fn merge(&mut self, other: NcpAccum, bins_per_decade: usize) {
        for (_, (phi, set)) in other.best {
            self.offer(bins_per_decade, phi, &set);
        }
    }

    fn into_points(self) -> Vec<NcpPoint> {
        self.best
            .into_values()
            .map(|(conductance, set)| NcpPoint {
                size: set.len(),
                conductance,
                set,
            })
            .collect()
    }
}

fn validate(g: &Graph, opts: &NcpOptions) -> Result<()> {
    use crate::PartitionError::InvalidArgument;
    if g.n() < 4 {
        return Err(InvalidArgument("NCP needs at least 4 nodes".into()));
    }
    if opts.min_size < 1 || opts.min_size > opts.max_size {
        return Err(InvalidArgument("need 1 <= min_size <= max_size".into()));
    }
    if opts.bins_per_decade == 0 {
        return Err(InvalidArgument("bins_per_decade must be positive".into()));
    }
    if opts.threads == 0 {
        return Err(InvalidArgument("threads must be positive".into()));
    }
    Ok(())
}

/// Harvest every prefix of a sweep into the accumulator, subject to
/// the size window and the half-volume rule.
fn harvest_sweep(
    g: &Graph,
    accum: &mut NcpAccum,
    opts: &NcpOptions,
    order: &[NodeId],
    profile: &[(usize, f64)],
) {
    let total = g.total_volume();
    let mut vol = 0.0;
    for (i, &(size, phi)) in profile.iter().enumerate() {
        vol += g.degree(order[i]);
        if vol > total / 2.0 {
            break;
        }
        if size < opts.min_size || size > opts.max_size {
            continue;
        }
        accum.offer(opts.bins_per_decade, phi, &order[..size]);
    }
}

/// Validate the local-spectral grid options and sample the push seed
/// nodes (degree > 0), deterministic given `opts.rng_seed`. Shared by
/// the plain and budgeted local-spectral NCPs.
fn sample_push_seeds(g: &Graph, opts: &NcpOptions) -> Result<Vec<NodeId>> {
    if opts.seeds == 0 || opts.alphas.is_empty() || opts.epsilons.is_empty() {
        return Err(crate::PartitionError::InvalidArgument(
            "local spectral NCP needs seeds, alphas and epsilons".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(opts.rng_seed);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(opts.seeds);
    let mut guard = 0;
    while seeds.len() < opts.seeds && guard < 50 * opts.seeds {
        let u = rng.gen_range(0..g.n() as NodeId);
        if g.degree(u) > 0.0 {
            seeds.push(u);
        }
        guard += 1;
    }
    if seeds.is_empty() {
        return Err(crate::PartitionError::InvalidArgument(
            "no positive-degree seeds available".into(),
        ));
    }
    Ok(seeds)
}

/// One worker's share of the (seed, α, ε) push-sweep grid, run under
/// `ctx`. Returns the local harvest, the number of push runs completed,
/// and the first exhaustion hit (if any). An inert context makes the
/// metering free, so the plain NCP fans this same core out per seed.
fn ncp_shard(
    g: &Graph,
    opts: &NcpOptions,
    chunk_seeds: &[NodeId],
    ctx: &mut KernelCtx,
) -> (NcpAccum, usize, Option<Exhaustion>) {
    let mut accum = NcpAccum::default();
    let mut done = 0usize;
    let mut exhausted = None;
    // CORE LOOP
    'grid: for &seed in chunk_seeds {
        for &alpha in &opts.alphas {
            for &eps in &opts.epsilons {
                ctx.tick_iter();
                if let Some(ex) = ctx.check_budget() {
                    exhausted = Some(ex);
                    break 'grid;
                }
                let Ok(push) = ppr_push(g, &[seed], alpha, eps) else {
                    continue;
                };
                ctx.add_work(push.work as u64);
                // Sweep the sparse support directly — no O(n) densify;
                // the push vector is exactly the positive support the
                // dense filter used to find.
                let sweep = sweep_cut_sparse(g, &push.vector);
                harvest_sweep(g, &mut accum, opts, &sweep.order, &sweep.profile);
                done += 1;
            }
        }
    }
    (accum, done, exhausted)
}

/// Compute the NCP with the local spectral method (ACL push sweeps
/// from many seeds at several (α, ε) scales).
pub fn ncp_local_spectral(g: &Graph, opts: &NcpOptions) -> Result<Vec<NcpPoint>> {
    validate(g, opts)?;
    let seeds = sample_push_seeds(g, opts)?;

    // Per-seed accumulators fanned out on the pool and merged in seed
    // order afterward: the work decomposition is a function of the seed
    // list alone and the merge order is fixed, so the profile is
    // independent of both thread count and completion order.
    let pool = ExecPool::from_env_or(opts.threads);
    let locals = pool.par_map(&seeds, 1, |&seed| {
        let mut ctx = KernelCtx::new();
        let (local, _, _) = ncp_shard(g, opts, std::slice::from_ref(&seed), &mut ctx);
        local
    });

    let mut accum = NcpAccum::default();
    for r in locals {
        accum.merge(r, opts.bins_per_decade);
    }
    Ok(accum.into_points())
}

/// What one budgeted NCP worker reports back: its harvest, how much of
/// its grid share it covered, and its own metering record.
struct BudgetedShard {
    accum: NcpAccum,
    done: usize,
    exhausted: Option<Exhaustion>,
    diags: Diagnostics,
}

/// Budgeted local-spectral NCP: the same (seed, α, ε) sweep grid as
/// [`ncp_local_spectral`], metered against a [`Budget`] — one budget
/// iteration and `work = edge traversals` per push run.
///
/// The grid is split into `opts.threads` contiguous seed chunks and the
/// budget into matching fair shares ([`Budget::split_across`]); each
/// worker meters its own share and keeps its own [`Diagnostics`], so no
/// lock sits on the hot path. Shards merge in chunk order — together
/// with the deterministic split, the outcome is reproducible for a
/// given `opts`. The NCP is a lower envelope that only improves with
/// more runs, so exhaustion (any worker running dry) returns the
/// profile harvested so far as a certified partial: the
/// [`Certificate::ResidualNorm`] carries the *unexplored fraction* of
/// the planned grid — `0` means full coverage, `0.75` means three
/// quarters of the planned push runs never executed and the true
/// envelope at some scales may lie below the returned one.
pub fn ncp_local_spectral_budgeted(
    g: &Graph,
    opts: &NcpOptions,
    budget: &Budget,
) -> Result<SolverOutcome<Vec<NcpPoint>>> {
    validate(g, opts)?;
    let seeds = sample_push_seeds(g, opts)?;

    let planned = seeds.len() * opts.alphas.len() * opts.epsilons.len();
    // Contiguous seed chunks with matching fair budget shares: both are
    // pure functions of (seeds, threads, budget), so the run is
    // reproducible. Each worker owns its meter and diagnostics — no
    // shared lock on the push/sweep hot path.
    let chunk = seeds.len().div_ceil(opts.threads).max(1);
    let chunks: Vec<&[NodeId]> = seeds.chunks(chunk).collect();
    let shares = budget.split_across(chunks.len());
    let jobs: Vec<(&[NodeId], Budget)> = chunks.into_iter().zip(shares).collect();

    // Each shard runs behind a panic fence: a worker that dies (e.g. a
    // corrupted graph tripping an assert mid-push) forfeits only its own
    // grid share — the surviving shards still merge into a certified
    // partial profile instead of the panic unwinding through the pool.
    let pool = ExecPool::from_env_or(opts.threads);
    let shards = pool.try_par_map(&jobs, 1, |&(chunk_seeds, share)| {
        let mut ctx = KernelCtx::budgeted("partition.ncp_shard", &share);
        let (accum, done, exhausted) = ncp_shard(g, opts, chunk_seeds, &mut ctx);
        let mut diags = ctx.finish();
        diags.finish_spans();
        BudgetedShard {
            accum,
            done,
            exhausted,
            diags,
        }
    });

    // Merge shards in chunk order: accumulators fold, counters add, and
    // the reported exhaustion is the first worker's (fixed order, not
    // completion order). Panicked shards count as unexplored coverage.
    let mut accum = NcpAccum::default();
    let mut diags = Diagnostics::for_kernel("partition.ncp_local");
    let mut done = 0usize;
    let mut exhausted = None;
    let mut panics = 0usize;
    let n_shards = shards.len();
    for (i, slot) in shards.into_iter().enumerate() {
        match slot {
            Ok(shard) => {
                accum.merge(shard.accum, opts.bins_per_decade);
                done += shard.done;
                diags.merge(&shard.diags);
                if exhausted.is_none() {
                    exhausted = shard.exhausted;
                }
            }
            Err(panic_msg) => {
                panics += 1;
                diags.note(format!("shard {i} worker panic: {panic_msg}"));
            }
        }
    }
    if panics == n_shards {
        // Nothing survived: structured divergence, cause in the trail.
        diags.finish_spans();
        return Ok(SolverOutcome::diverged(
            acir_runtime::DivergenceCause::Breakdown {
                at_iter: 0,
                what: "every NCP shard worker panicked",
            },
            diags,
        ));
    }
    if panics > 0 && exhausted.is_none() {
        // A dead shard's grid share will never be explored: certify the
        // harvest as a partial along the work axis.
        exhausted = Some(Exhaustion::Work);
    }

    if let Some(ex) = exhausted {
        diags.note(format!(
            "{ex}: explored {done} of {planned} planned push runs"
        ));
        let remaining = 1.0 - done as f64 / planned as f64;
        let points = accum.into_points();
        for p in &points {
            diags.sweep_cut(p.size, p.conductance);
        }
        return Ok(SolverOutcome::exhausted(
            points,
            ex,
            Certificate::ResidualNorm { value: remaining },
            diags,
        ));
    }
    diags.note(format!("explored the full grid of {planned} push runs"));
    let points = accum.into_points();
    for p in &points {
        diags.sweep_cut(p.size, p.conductance);
    }
    Ok(SolverOutcome::converged(points, diags))
}

/// Traced variant of [`ncp_metis_mqi`]: the same profile plus a
/// [`Diagnostics`] record — one `partition.ncp_metis_mqi` span
/// bracketing a sweep-cut event per harvested profile point, so the
/// flow-based NCP pipeline shows up in the observability layer
/// alongside the local-spectral one.
pub fn ncp_metis_mqi_traced(g: &Graph, opts: &NcpOptions) -> Result<(Vec<NcpPoint>, Diagnostics)> {
    let mut diags = Diagnostics::for_kernel("partition.ncp_metis_mqi");
    let points = ncp_metis_mqi(g, opts)?;
    for p in &points {
        diags.sweep_cut(p.size, p.conductance);
    }
    diags.note(format!("{} profile points harvested", points.len()));
    diags.finish_spans();
    Ok((points, diags))
}

/// Compute the NCP with the Metis+MQI pipeline: recursive multilevel
/// partitioning at a ladder of size targets, each piece improved by
/// MQI before harvesting.
pub fn ncp_metis_mqi(g: &Graph, opts: &NcpOptions) -> Result<Vec<NcpPoint>> {
    validate(g, opts)?;
    // Build the target ladder: log-spaced sizes, unless supplied.
    let targets: Vec<usize> = if opts.metis_targets.is_empty() {
        let lo = (opts.min_size.max(4)) as f64;
        let hi = (opts.max_size.min(g.n())) as f64;
        let steps = (((hi / lo).log10() * opts.bins_per_decade as f64).ceil() as usize).max(1);
        (0..=steps)
            .map(|i| (lo * (hi / lo).powf(i as f64 / steps as f64)).round() as usize)
            .collect()
    } else {
        opts.metis_targets.clone()
    };

    let total = g.total_volume();
    // One job per ladder target, each seeded by its *global* ladder
    // index: the multilevel RNG stream for a target no longer depends on
    // how targets happen to be chunked across workers, only on the
    // ladder itself. Merging in ladder order keeps the profile
    // independent of thread count and completion order.
    let indexed: Vec<(usize, usize)> = targets.iter().copied().enumerate().collect();
    let pool = ExecPool::from_env_or(opts.threads);
    let locals = pool.par_map(&indexed, 1, |&(ti, target)| {
        let mut local = NcpAccum::default();
        let ml = MultilevelOptions {
            seed: opts.rng_seed ^ (ti as u64),
            ..Default::default()
        };
        let Ok(pieces) = recursive_partition(g, target, &ml) else {
            return local;
        };
        for piece in pieces {
            if piece.len() < opts.min_size || piece.len() > opts.max_size || piece.len() >= g.n() {
                continue;
            }
            if g.volume(&piece) > total / 2.0 {
                continue;
            }
            // Harvest the raw piece...
            let mut mask = vec![false; g.n()];
            for &u in &piece {
                mask[u as usize] = true;
            }
            let phi_raw = conductance_of_mask(g, &mask);
            local.offer(opts.bins_per_decade, phi_raw, &piece);
            // ...and its MQI polish.
            if let Ok(improved) = mqi(g, &piece) {
                if improved.set.len() >= opts.min_size && improved.set.len() <= opts.max_size {
                    local.offer(opts.bins_per_decade, improved.conductance, &improved.set);
                }
            }
        }
        local
    });

    let mut accum = NcpAccum::default();
    for r in locals {
        accum.merge(r, opts.bins_per_decade);
    }
    Ok(accum.into_points())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::community::{social_network, SocialNetworkParams};
    use acir_graph::gen::deterministic::ring_of_cliques;
    use acir_graph::traversal::largest_component;

    fn small_opts() -> NcpOptions {
        NcpOptions {
            min_size: 2,
            max_size: 200,
            bins_per_decade: 6,
            seeds: 12,
            alphas: vec![0.2, 0.05],
            epsilons: vec![1e-3, 1e-4],
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn bin_of_is_monotone() {
        let mut prev = 0;
        for size in [2usize, 5, 10, 30, 100, 500, 2000] {
            let b = bin_of(size, 8);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn local_spectral_ncp_finds_cliques() {
        let g = ring_of_cliques(8, 10).unwrap();
        let pts = ncp_local_spectral(&g, &small_opts()).unwrap();
        assert!(!pts.is_empty());
        // Some bin around size 10 should hit the clique conductance:
        // cut 2, vol(clique) = 10·9 + 2 = 92 → ≈ 0.0217.
        let best_near_10 = pts
            .iter()
            .filter(|p| (8..=13).contains(&p.size))
            .map(|p| p.conductance)
            .fold(f64::INFINITY, f64::min);
        assert!(best_near_10 < 0.05, "best φ near size 10: {best_near_10}");
        // Points are valid: recompute conductance.
        for p in &pts {
            let direct = crate::conductance::conductance(&g, &p.set).unwrap();
            assert!((p.conductance - direct).abs() < 1e-9);
            assert_eq!(p.size, p.set.len());
        }
    }

    #[test]
    fn metis_mqi_ncp_finds_cliques() {
        let g = ring_of_cliques(8, 10).unwrap();
        let pts = ncp_metis_mqi(&g, &small_opts()).unwrap();
        assert!(!pts.is_empty());
        let best_near_10 = pts
            .iter()
            .filter(|p| (8..=13).contains(&p.size))
            .map(|p| p.conductance)
            .fold(f64::INFINITY, f64::min);
        assert!(best_near_10 < 0.05, "best φ near size 10: {best_near_10}");
        for p in &pts {
            let direct = crate::conductance::conductance(&g, &p.set).unwrap();
            assert!((p.conductance - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn ncp_is_deterministic() {
        let g = ring_of_cliques(6, 8).unwrap();
        let a = ncp_local_spectral(&g, &small_opts()).unwrap();
        let b = ncp_local_spectral(&g, &small_opts()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.set, y.set);
        }
    }

    #[test]
    fn figure1_shape_on_social_surrogate() {
        // The headline qualitative claim of Figure 1(a): Metis+MQI
        // finds conductance at least as good as local spectral across
        // most size scales on social-network-like data.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let params = SocialNetworkParams {
            core_nodes: 400,
            core_attach: 3,
            communities: 10,
            community_size_range: (6, 80),
            whiskers: 30,
            whisker_max_len: 6,
            ..Default::default()
        };
        let pc = social_network(&mut rng, &params).unwrap();
        let (g, _) = largest_component(&pc.graph);

        let opts = small_opts();
        let spectral = ncp_local_spectral(&g, &opts).unwrap();
        let flow = ncp_metis_mqi(&g, &opts).unwrap();
        assert!(!spectral.is_empty() && !flow.is_empty());

        // Compare on shared bins: flow should win (or tie) on a clear
        // majority — the Figure 1(a) shape.
        let key = |p: &NcpPoint| bin_of(p.size, opts.bins_per_decade);
        let smap: std::collections::BTreeMap<usize, f64> =
            spectral.iter().map(|p| (key(p), p.conductance)).collect();
        let mut flow_wins = 0usize;
        let mut comparisons = 0usize;
        for p in &flow {
            if let Some(&sphi) = smap.get(&key(p)) {
                comparisons += 1;
                if p.conductance <= sphi * 1.05 {
                    flow_wins += 1;
                }
            }
        }
        assert!(comparisons >= 3, "need overlapping bins, got {comparisons}");
        assert!(
            flow_wins * 2 >= comparisons,
            "flow won {flow_wins}/{comparisons} bins"
        );
    }

    #[test]
    fn budgeted_ncp_full_budget_matches_plain() {
        let g = ring_of_cliques(6, 8).unwrap();
        let mut opts = small_opts();
        opts.threads = 1; // plain path must match the single-threaded grid order
        let out = ncp_local_spectral_budgeted(&g, &opts, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let plain = ncp_local_spectral(&g, &opts).unwrap();
        let pts = out.value().unwrap();
        assert_eq!(pts.len(), plain.len());
        for (a, b) in pts.iter().zip(&plain) {
            assert_eq!(a.set, b.set);
            assert!((a.conductance - b.conductance).abs() < 1e-12);
        }
    }

    #[test]
    fn budgeted_ncp_exhaustion_reports_coverage() {
        let g = ring_of_cliques(6, 8).unwrap();
        let out = ncp_local_spectral_budgeted(&g, &small_opts(), &Budget::iterations(5)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let unexplored = match out.certificate() {
            Some(&Certificate::ResidualNorm { value }) => value,
            c => panic!("wrong certificate {c:?}"),
        };
        assert!((0.0..=1.0).contains(&unexplored) && unexplored > 0.0);
        // Whatever was harvested is still a valid (partial) profile.
        for p in out.value().unwrap() {
            let direct = crate::conductance::conductance(&g, &p.set).unwrap();
            assert!((p.conductance - direct).abs() < 1e-9);
        }
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn validates_inputs() {
        let g = ring_of_cliques(3, 3).unwrap();
        let mut o = small_opts();
        o.min_size = 0;
        assert!(ncp_local_spectral(&g, &o).is_err());
        let mut o = small_opts();
        o.threads = 0;
        assert!(ncp_metis_mqi(&g, &o).is_err());
        let mut o = small_opts();
        o.alphas.clear();
        assert!(ncp_local_spectral(&g, &o).is_err());
        let tiny = acir_graph::Graph::from_pairs(2, [(0, 1)]).unwrap();
        assert!(ncp_local_spectral(&tiny, &small_opts()).is_err());
    }
}
