//! # acir-partition
//!
//! Graph partitioning for the ACIR reproduction of Mahoney (PODS 2012)
//! case study §3.2 — the conductance objective (Problems (6)/(7)), its
//! two rival approximation families, and the measurement apparatus of
//! Figure 1.
//!
//! * [`mod@conductance`] — cut/volume/conductance/expansion primitives.
//! * [`spectral_part`] — global spectral partitioning: exact Fiedler
//!   vector + sweep cut (and a truncated power-method variant — the
//!   early-stopping regularization knob).
//! * [`multilevel`] — a METIS-like multilevel bisection (heavy-edge
//!   matching coarsening, BFS region-growing initial cut, boundary
//!   Kernighan–Lin/FM refinement) and recursive partitioning; combined
//!   with MQI from `acir-flow` this is the paper's "Metis+MQI"
//!   flow-based clusterer.
//! * [`ncp`] — Network Community Profile computation: the
//!   best-conductance cluster at every size scale, by the local
//!   spectral method and by Metis+MQI; this regenerates Figure 1(a).
//! * [`niceness`] — the Figure 1(b)/(c) cluster "niceness" measures:
//!   internal average shortest-path length, and the ratio of external
//!   to internal conductance.
//! * [`cheeger`] — Cheeger-inequality checks `λ₂/2 ≤ φ(G) ≤ √(2λ₂)`
//!   with a brute-force exact `φ(G)` for small graphs.
//! * [`whisker`] — exact whisker extraction and the whisker-union
//!   envelope: the \[27, 28\] explanation of the NCP's small-scale
//!   dips.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cheeger;
pub mod conductance;
pub mod multilevel;
pub mod ncp;
pub mod niceness;
pub mod spectral_part;
pub mod whisker;

pub use cheeger::{cheeger_check, conductance_exact_bruteforce, CheegerReport};
pub use conductance::{conductance, cut_weight, CutStats};
pub use multilevel::{multilevel_bisect, recursive_partition, refine_bisection, MultilevelOptions};
pub use ncp::{
    ncp_local_spectral, ncp_local_spectral_budgeted, ncp_metis_mqi, ncp_metis_mqi_traced,
    NcpOptions, NcpPoint,
};
pub use niceness::{cluster_niceness, ClusterNiceness};
pub use spectral_part::{
    spectral_bisect, spectral_bisect_budgeted, spectral_bisect_ratio, spectral_bisect_truncated,
    SpectralCut,
};
pub use whisker::{whisker_union_envelope, whiskers, Whisker};

/// Errors from the partitioning layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// Invalid argument.
    InvalidArgument(String),
    /// Underlying spectral error.
    Spectral(acir_spectral::SpectralError),
    /// Underlying local-method error.
    Local(acir_local::LocalError),
    /// Underlying flow error.
    Flow(acir_flow::FlowError),
    /// Underlying graph error.
    Graph(acir_graph::GraphError),
    /// Underlying linear-algebra error.
    Linalg(acir_linalg::LinalgError),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            PartitionError::Spectral(e) => write!(f, "spectral: {e}"),
            PartitionError::Local(e) => write!(f, "local: {e}"),
            PartitionError::Flow(e) => write!(f, "flow: {e}"),
            PartitionError::Graph(e) => write!(f, "graph: {e}"),
            PartitionError::Linalg(e) => write!(f, "linalg: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<acir_spectral::SpectralError> for PartitionError {
    fn from(e: acir_spectral::SpectralError) -> Self {
        PartitionError::Spectral(e)
    }
}

impl From<acir_local::LocalError> for PartitionError {
    fn from(e: acir_local::LocalError) -> Self {
        PartitionError::Local(e)
    }
}

impl From<acir_flow::FlowError> for PartitionError {
    fn from(e: acir_flow::FlowError) -> Self {
        PartitionError::Flow(e)
    }
}

impl From<acir_graph::GraphError> for PartitionError {
    fn from(e: acir_graph::GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

impl From<acir_linalg::LinalgError> for PartitionError {
    fn from(e: acir_linalg::LinalgError) -> Self {
        PartitionError::Linalg(e)
    }
}

/// Result alias for partitioning operations.
pub type Result<T> = std::result::Result<T, PartitionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(PartitionError::InvalidArgument("p".into())
            .to_string()
            .contains("p"));
        let e: PartitionError = acir_spectral::SpectralError::InvalidArgument("s".into()).into();
        assert!(e.to_string().contains("spectral"));
        let e: PartitionError = acir_local::LocalError::InvalidArgument("l".into()).into();
        assert!(e.to_string().contains("local"));
        let e: PartitionError = acir_flow::FlowError::InvalidArgument("f".into()).into();
        assert!(e.to_string().contains("flow"));
        let e: PartitionError = acir_graph::GraphError::BadWeight(0.0).into();
        assert!(e.to_string().contains("graph"));
    }
}
