//! Multilevel graph bisection — the "Metis" half of the paper's
//! Metis+MQI flow-based clusterer (Figure 1).
//!
//! The classic three-phase scheme:
//!
//! 1. **Coarsen** by heavy-edge matching until the graph is small,
//!    carrying each supernode's original *volume* so conductance is
//!    preserved across levels;
//! 2. **Initial cut** on the coarsest graph by BFS region-growing from
//!    several seeds, keeping the best conductance;
//! 3. **Uncoarsen + refine** with greedy boundary Fiduccia–Mattheyses
//!    passes under a volume-balance constraint.
//!
//! The output bisection is then typically polished with MQI
//! (`acir_flow::mqi`) — see [`crate::ncp`] for the full Metis+MQI
//! pipeline.

use crate::{PartitionError, Result};
use acir_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Options for [`multilevel_bisect`].
#[derive(Debug, Clone)]
pub struct MultilevelOptions {
    /// Stop coarsening when at most this many supernodes remain.
    pub coarsen_until: usize,
    /// Allowed volume imbalance: each side must hold at least
    /// `(0.5 − balance) · total volume`.
    pub balance: f64,
    /// Greedy FM refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed (matching order, initial-cut seeds).
    pub seed: u64,
    /// Number of BFS seeds tried for the initial cut.
    pub initial_tries: usize,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        Self {
            coarsen_until: 64,
            balance: 0.15,
            refine_passes: 6,
            seed: 0xACE1,
            initial_tries: 8,
        }
    }
}

/// A bisection: membership mask of side A plus its quality.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// `true` for nodes on side A.
    pub side: Vec<bool>,
    /// Cut weight between the sides.
    pub cut: f64,
    /// Conductance of side A (min-side normalized, true graph volumes).
    pub conductance: f64,
}

/// One coarsening level: graph, per-node volume, and the mapping from
/// finer nodes to coarse nodes.
struct Level {
    graph: Graph,
    volume: Vec<f64>,
    /// `fine_to_coarse[u]` for the *finer* level below (empty at the
    /// finest level).
    fine_to_coarse: Vec<u32>,
}

/// Cut weight of a mask on a graph.
fn cut_of(g: &Graph, side: &[bool]) -> f64 {
    let mut cut = 0.0;
    for u in 0..g.n() as NodeId {
        if !side[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            if !side[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

fn side_volume(volume: &[f64], side: &[bool]) -> f64 {
    volume
        .iter()
        .zip(side)
        .filter(|&(_, &s)| s)
        .map(|(&v, _)| v)
        .sum()
}

/// Multilevel bisection of `g`. Errors on graphs with fewer than 2
/// nodes or zero volume.
pub fn multilevel_bisect(g: &Graph, opts: &MultilevelOptions) -> Result<Bisection> {
    if g.n() < 2 {
        return Err(PartitionError::InvalidArgument(
            "multilevel_bisect needs at least 2 nodes".into(),
        ));
    }
    if g.total_volume() <= 0.0 {
        return Err(PartitionError::InvalidArgument(
            "multilevel_bisect needs positive volume".into(),
        ));
    }
    if !(0.0..0.5).contains(&opts.balance) {
        return Err(PartitionError::InvalidArgument(
            "balance must be in [0, 0.5)".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // --- Phase 1: coarsen. ---
    let mut levels: Vec<Level> = vec![Level {
        graph: g.clone(),
        volume: g.degrees().to_vec(),
        fine_to_coarse: Vec::new(),
    }];
    while levels.last().unwrap().graph.n() > opts.coarsen_until.max(4) {
        let top = levels.last().unwrap();
        let (coarse_graph, coarse_volume, mapping) =
            coarsen_once(&top.graph, &top.volume, &mut rng)?;
        // Matching can stall (e.g. a clique of self-matched nodes);
        // stop if we shrank by less than 10%.
        if coarse_graph.n() as f64 > top.graph.n() as f64 * 0.95 {
            break;
        }
        levels.push(Level {
            graph: coarse_graph,
            volume: coarse_volume,
            fine_to_coarse: mapping,
        });
    }

    // --- Phase 2: initial cut on the coarsest level. ---
    let coarsest = levels.last().unwrap();
    let mut side = initial_cut(
        &coarsest.graph,
        &coarsest.volume,
        opts.initial_tries.max(1),
        &mut rng,
    );

    // --- Phase 3: uncoarsen + refine. ---
    for li in (0..levels.len()).rev() {
        let level = &levels[li];
        refine(
            &level.graph,
            &level.volume,
            &mut side,
            opts.balance,
            opts.refine_passes,
        );
        if li > 0 {
            // Project to the finer level below.
            let mapping = &levels[li].fine_to_coarse;
            let finer_n = levels[li - 1].graph.n();
            let mut fine_side = vec![false; finer_n];
            for u in 0..finer_n {
                fine_side[u] = side[mapping[u] as usize];
            }
            side = fine_side;
        }
    }

    let cut = cut_of(g, &side);
    let vol_a = side_volume(g.degrees(), &side);
    let denom = vol_a.min(g.total_volume() - vol_a);
    Ok(Bisection {
        conductance: if denom > 0.0 {
            cut / denom
        } else {
            f64::INFINITY
        },
        cut,
        side,
    })
}

/// One round of heavy-edge matching; returns the coarse graph, its
/// volumes, and the fine→coarse mapping.
fn coarsen_once(
    g: &Graph,
    volume: &[f64],
    rng: &mut StdRng,
) -> Result<(Graph, Vec<f64>, Vec<u32>)> {
    let n = g.n();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &u in &order {
        if mate[u as usize] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(NodeId, f64)> = None;
        for (v, w) in g.neighbors(u) {
            if v != u && mate[v as usize] == u32::MAX {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((v, w)),
                }
            }
        }
        match best {
            Some((v, _)) => {
                mate[u as usize] = v;
                mate[v as usize] = u;
            }
            None => mate[u as usize] = u, // self-matched
        }
    }
    // Assign coarse ids.
    let mut coarse_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n {
        if coarse_id[u] != u32::MAX {
            continue;
        }
        let m = mate[u] as usize;
        coarse_id[u] = next;
        coarse_id[m] = next;
        next += 1;
    }
    let coarse_n = next as usize;
    let mut coarse_volume = vec![0.0; coarse_n];
    for u in 0..n {
        coarse_volume[coarse_id[u] as usize] += volume[u];
    }
    let mut b = GraphBuilder::with_nodes(coarse_n);
    for (u, v, w) in g.edges() {
        let cu = coarse_id[u as usize];
        let cv = coarse_id[v as usize];
        if cu != cv {
            b.add_edge(cu, cv, w);
        }
    }
    Ok((b.build()?, coarse_volume, coarse_id))
}

/// BFS region-growing initial cut: grow from a random seed until half
/// the volume is absorbed; keep the best of `tries` attempts by
/// volume-based conductance.
fn initial_cut(g: &Graph, volume: &[f64], tries: usize, rng: &mut StdRng) -> Vec<bool> {
    let n = g.n();
    let total: f64 = volume.iter().sum();
    let mut best: Option<(Vec<bool>, f64)> = None;
    for _ in 0..tries {
        let seed = rng.gen_range(0..n as NodeId);
        let mut side = vec![false; n];
        let mut vol = 0.0;
        let mut queue = std::collections::VecDeque::new();
        side[seed as usize] = true;
        vol += volume[seed as usize];
        queue.push_back(seed);
        'grow: while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if !side[v as usize] {
                    side[v as usize] = true;
                    vol += volume[v as usize];
                    queue.push_back(v);
                    if vol >= total / 2.0 {
                        break 'grow;
                    }
                }
            }
        }
        // Degenerate grow (disconnected component absorbed everything
        // reachable): accept anyway, refinement will shuffle.
        let cut = cut_of(g, &side);
        let denom = vol.min(total - vol);
        let phi = if denom > 0.0 {
            cut / denom
        } else {
            f64::INFINITY
        };
        match &best {
            Some((_, bp)) if *bp <= phi => {}
            _ => best = Some((side, phi)),
        }
    }
    best.expect("tries >= 1").0
}

/// Greedy boundary FM passes: move the node with the best gain
/// (cut-weight decrease) that keeps both sides above the balance
/// floor; stop a pass when no positive-gain balanced move exists.
fn refine(g: &Graph, volume: &[f64], side: &mut [bool], balance: f64, passes: usize) {
    let n = g.n();
    let total: f64 = volume.iter().sum();
    let floor = (0.5 - balance) * total;
    let mut vol_a = side_volume(volume, side);

    for _ in 0..passes {
        let mut moved_any = false;
        // Gain of moving u to the other side: ext − int.
        let mut gains: Vec<(f64, NodeId)> = Vec::new();
        for u in 0..n as NodeId {
            let mut internal = 0.0;
            let mut external = 0.0;
            for (v, w) in g.neighbors(u) {
                if v == u {
                    continue;
                }
                if side[v as usize] == side[u as usize] {
                    internal += w;
                } else {
                    external += w;
                }
            }
            if external > 0.0 {
                gains.push((external - internal, u));
            }
        }
        gains.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(gain, u) in &gains {
            if gain <= 0.0 {
                break;
            }
            // Re-check the gain (earlier moves may have changed it).
            let mut internal = 0.0;
            let mut external = 0.0;
            for (v, w) in g.neighbors(u) {
                if v == u {
                    continue;
                }
                if side[v as usize] == side[u as usize] {
                    internal += w;
                } else {
                    external += w;
                }
            }
            if external - internal <= 0.0 {
                continue;
            }
            let vu = volume[u as usize];
            let (new_a, new_b) = if side[u as usize] {
                (vol_a - vu, total - vol_a + vu)
            } else {
                (vol_a + vu, total - vol_a - vu)
            };
            if new_a < floor || new_b < floor {
                continue;
            }
            side[u as usize] = !side[u as usize];
            vol_a = new_a;
            moved_any = true;
        }
        if !moved_any {
            break;
        }
    }
}

/// Standalone greedy FM refinement of an existing bisection — the
/// "local improvement methods, which can be used to clean up partitions
/// found with other methods" of the paper's footnote 20. Returns the
/// refined bisection; never worsens the cut.
pub fn refine_bisection(
    g: &Graph,
    side: &[bool],
    balance: f64,
    passes: usize,
) -> Result<Bisection> {
    if side.len() != g.n() {
        return Err(PartitionError::InvalidArgument(format!(
            "side mask length {} != n {}",
            side.len(),
            g.n()
        )));
    }
    if !(0.0..0.5).contains(&balance) {
        return Err(PartitionError::InvalidArgument(
            "balance must be in [0, 0.5)".into(),
        ));
    }
    let mut refined = side.to_vec();
    refine(g, g.degrees(), &mut refined, balance, passes.max(1));
    let cut = cut_of(g, &refined);
    let vol_a = side_volume(g.degrees(), &refined);
    let denom = vol_a.min(g.total_volume() - vol_a);
    Ok(Bisection {
        conductance: if denom > 0.0 {
            cut / denom
        } else {
            f64::INFINITY
        },
        cut,
        side: refined,
    })
}

/// Recursively bisect until every piece has at most `max_nodes` nodes;
/// returns the pieces as sorted node lists (in original ids).
///
/// This is how the Figure 1 pipeline manufactures candidate clusters at
/// a given size scale before MQI polishing.
pub fn recursive_partition(
    g: &Graph,
    max_nodes: usize,
    opts: &MultilevelOptions,
) -> Result<Vec<Vec<NodeId>>> {
    if max_nodes == 0 {
        return Err(PartitionError::InvalidArgument(
            "max_nodes must be positive".into(),
        ));
    }
    let mut pieces: Vec<Vec<NodeId>> = Vec::new();
    // Work stack of (node list in original ids).
    let all: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut stack = vec![all];
    let mut salt = 0u64;
    while let Some(nodes) = stack.pop() {
        if nodes.len() <= max_nodes || nodes.len() < 4 {
            pieces.push(nodes);
            continue;
        }
        let (sub, map) = g.induced_subgraph(&nodes)?;
        if sub.total_volume() <= 0.0 {
            pieces.push(nodes);
            continue;
        }
        let mut sub_opts = opts.clone();
        sub_opts.seed = opts.seed.wrapping_add(salt);
        salt += 1;
        let bis = multilevel_bisect(&sub, &sub_opts)?;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (local, &orig) in map.iter().enumerate() {
            if bis.side[local] {
                a.push(orig);
            } else {
                b.push(orig);
            }
        }
        if a.is_empty() || b.is_empty() {
            pieces.push(nodes); // refuse to loop on a degenerate cut
            continue;
        }
        stack.push(a);
        stack.push(b);
    }
    for p in &mut pieces {
        p.sort_unstable();
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::conductance;
    use acir_graph::gen::deterministic::{barbell, grid2d, ring_of_cliques};
    use acir_graph::gen::random::erdos_renyi_gnp;

    #[test]
    fn bisects_barbell_at_the_bridge() {
        let g = barbell(10, 0).unwrap();
        let r = multilevel_bisect(&g, &MultilevelOptions::default()).unwrap();
        assert!((r.cut - 1.0).abs() < 1e-9, "cut = {}", r.cut);
        // One clique per side.
        let a: Vec<u32> = (0..20).filter(|&u| r.side[u as usize]).collect();
        assert!(a.len() == 10);
        assert!(r.conductance < 0.02);
    }

    #[test]
    fn grid_bisection_is_balanced_and_cheap() {
        let g = grid2d(10, 10).unwrap();
        let r = multilevel_bisect(&g, &MultilevelOptions::default()).unwrap();
        let a = r.side.iter().filter(|&&s| s).count();
        assert!((30..=70).contains(&a), "side size {a}");
        // A 10x10 grid has a width-10 cut; accept anything near it.
        assert!(r.cut <= 20.0, "cut {}", r.cut);
    }

    #[test]
    fn conductance_matches_direct_computation() {
        let g = barbell(6, 2).unwrap();
        let r = multilevel_bisect(&g, &MultilevelOptions::default()).unwrap();
        let a: Vec<u32> = (0..g.n() as u32).filter(|&u| r.side[u as usize]).collect();
        let direct = conductance(&g, &a).unwrap();
        assert!((r.conductance - direct).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(8, 8).unwrap();
        let o = MultilevelOptions::default();
        let a = multilevel_bisect(&g, &o).unwrap();
        let b = multilevel_bisect(&g, &o).unwrap();
        assert_eq!(a.side, b.side);
    }

    #[test]
    fn recursive_partition_respects_size_cap() {
        let g = ring_of_cliques(6, 8).unwrap();
        let pieces = recursive_partition(&g, 10, &MultilevelOptions::default()).unwrap();
        let covered: usize = pieces.iter().map(Vec::len).sum();
        assert_eq!(covered, g.n(), "pieces cover the graph");
        // No duplicates across pieces.
        let mut seen = vec![false; g.n()];
        for p in &pieces {
            for &u in p {
                assert!(!seen[u as usize]);
                seen[u as usize] = true;
            }
        }
        assert!(pieces.iter().all(|p| p.len() <= 10 || p.len() < 4));
        // Ring of cliques: pieces should align with cliques often.
        assert!(pieces.len() >= 6);
    }

    #[test]
    fn refine_bisection_cleans_noisy_cut() {
        // Barbell with two nodes on the wrong side: FM moves them back.
        let g = barbell(8, 0).unwrap();
        let mut side = vec![false; 16];
        side[..8].fill(true);
        side[2] = false; // wrong
        side[12] = true; // wrong
        let noisy_cut = {
            let mut cut = 0.0;
            for (u, v, w) in g.edges() {
                if side[u as usize] != side[v as usize] {
                    cut += w;
                }
            }
            cut
        };
        let refined = refine_bisection(&g, &side, 0.15, 4).unwrap();
        assert!(refined.cut < noisy_cut);
        assert!((refined.cut - 1.0).abs() < 1e-9, "cut {}", refined.cut);
        assert!(refine_bisection(&g, &side[..3], 0.15, 2).is_err());
        assert!(refine_bisection(&g, &side, 0.9, 2).is_err());
    }

    #[test]
    fn validates_inputs() {
        let g = barbell(4, 0).unwrap();
        let o = MultilevelOptions {
            balance: 0.7,
            ..Default::default()
        };
        assert!(multilevel_bisect(&g, &o).is_err());
        let tiny = acir_graph::Graph::from_pairs(1, []).unwrap();
        assert!(multilevel_bisect(&tiny, &MultilevelOptions::default()).is_err());
        let hollow = acir_graph::Graph::from_pairs(3, []).unwrap();
        assert!(multilevel_bisect(&hollow, &MultilevelOptions::default()).is_err());
        assert!(recursive_partition(&g, 0, &MultilevelOptions::default()).is_err());
    }

    #[test]
    fn works_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let g = erdos_renyi_gnp(&mut rng, 120, 0.08).unwrap();
        let r = multilevel_bisect(&g, &MultilevelOptions::default()).unwrap();
        assert!(r.conductance.is_finite());
        let a = r.side.iter().filter(|&&s| s).count();
        assert!(a > 0 && a < 120);
    }
}
