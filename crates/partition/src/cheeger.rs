//! Cheeger-inequality checks (§3.2).
//!
//! The discrete Cheeger inequality — "originally proved in a continuous
//! setting for compact Riemannian manifolds" \[12, 14\] — bounds the
//! graph conductance by the spectral gap of the normalized Laplacian:
//!
//! ```text
//! λ₂ / 2  ≤  φ(G)  ≤  √(2·λ₂)
//! ```
//!
//! and the sweep cut of the Fiedler vector achieves the upper bound.
//! This module verifies the inequality experimentally: exact `φ(G)` by
//! brute force on small graphs, the sweep value as an upper bound
//! otherwise.

use crate::conductance::conductance_of_mask;
use crate::spectral_part::spectral_bisect;
use crate::{PartitionError, Result};
use acir_graph::Graph;

/// Outcome of a Cheeger check.
#[derive(Debug, Clone)]
pub struct CheegerReport {
    /// `λ₂` of the normalized Laplacian.
    pub lambda2: f64,
    /// Exact `φ(G)` if brute force was feasible.
    pub phi_exact: Option<f64>,
    /// Conductance of the spectral sweep cut (an upper bound on φ(G)).
    pub phi_sweep: f64,
    /// Lower bound `λ₂/2`.
    pub lower: f64,
    /// Upper bound `√(2·λ₂)`.
    pub upper: f64,
    /// Whether every applicable inequality held (with small slack).
    pub holds: bool,
}

/// Maximum node count for the exact brute-force conductance.
pub const BRUTEFORCE_LIMIT: usize = 22;

/// Exact `φ(G)` (Problem (7)) by enumerating all 2^(n−1) − 1 proper
/// subsets. Errors above [`BRUTEFORCE_LIMIT`] nodes.
pub fn conductance_exact_bruteforce(g: &Graph) -> Result<f64> {
    let n = g.n();
    if n < 2 {
        return Err(PartitionError::InvalidArgument(
            "conductance needs at least 2 nodes".into(),
        ));
    }
    if n > BRUTEFORCE_LIMIT {
        return Err(PartitionError::InvalidArgument(format!(
            "brute force limited to {BRUTEFORCE_LIMIT} nodes, got {n}"
        )));
    }
    let mut best = f64::INFINITY;
    let mut mask = vec![false; n];
    // Node 0 is always excluded from S, halving the enumeration
    // (φ(S) = φ(S̄)); bit i of `bits` decides node i + 1.
    for bits in 1u32..(1u32 << (n - 1)) {
        for i in 0..(n - 1) {
            mask[i + 1] = (bits >> i) & 1 == 1;
        }
        let phi = conductance_of_mask(g, &mask);
        if phi < best {
            best = phi;
        }
    }
    Ok(best)
}

/// Run the Cheeger check on a connected graph.
pub fn cheeger_check(g: &Graph) -> Result<CheegerReport> {
    let cut = spectral_bisect(g)?;
    let lambda2 = cut.lambda2;
    let lower = lambda2 / 2.0;
    let upper = (2.0 * lambda2).sqrt();
    let phi_sweep = cut.sweep.conductance;
    let phi_exact = if g.n() <= BRUTEFORCE_LIMIT {
        Some(conductance_exact_bruteforce(g)?)
    } else {
        None
    };

    const SLACK: f64 = 1e-9;
    let mut holds = phi_sweep >= lower - SLACK && phi_sweep <= upper + SLACK;
    if let Some(phi) = phi_exact {
        holds = holds && phi >= lower - SLACK && phi <= upper + SLACK && phi <= phi_sweep + SLACK;
    }
    Ok(CheegerReport {
        lambda2,
        phi_exact,
        phi_sweep,
        lower,
        upper,
        holds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path, star};
    use acir_graph::Graph;

    #[test]
    fn bruteforce_known_values() {
        // Dumbbell K3–K3: best cut separates the triangles;
        // cut 1, vol 7 each side → 1/7.
        let g = barbell(3, 0).unwrap();
        let phi = conductance_exact_bruteforce(&g).unwrap();
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);

        // C4: best cut = opposite pair of edges: cut 2 / vol 4 = 1/2.
        let c4 = cycle(4).unwrap();
        assert!((conductance_exact_bruteforce(&c4).unwrap() - 0.5).abs() < 1e-12);

        // K4: φ = min over sizes: {1}: 3/3 = 1; {2}: 4/6 = 2/3.
        let k4 = complete(4).unwrap();
        assert!((conductance_exact_bruteforce(&k4).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bruteforce_limits() {
        let big = cycle(30).unwrap();
        assert!(conductance_exact_bruteforce(&big).is_err());
        let tiny = Graph::from_pairs(1, []).unwrap();
        assert!(conductance_exact_bruteforce(&tiny).is_err());
    }

    #[test]
    fn cheeger_holds_across_families() {
        for g in [
            path(12).unwrap(),
            cycle(14).unwrap(),
            complete(8).unwrap(),
            star(9).unwrap(),
            barbell(5, 1).unwrap(),
        ] {
            let r = cheeger_check(&g).unwrap();
            assert!(r.holds, "failed on a graph: {r:?}");
            if let Some(phi) = r.phi_exact {
                assert!(phi >= r.lower - 1e-9);
                assert!(phi <= r.upper + 1e-9);
            }
        }
    }

    #[test]
    fn cheeger_holds_on_larger_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(41);
        let g = acir_graph::gen::random::random_regular(&mut rng, 64, 4).unwrap();
        let r = cheeger_check(&g).unwrap();
        assert!(r.phi_exact.is_none());
        assert!(r.holds, "{r:?}");
        // Expander: λ₂ bounded away from 0.
        assert!(r.lambda2 > 0.05);
    }

    #[test]
    fn path_tightness_of_lower_bound() {
        // Long paths make the lower bound relatively tight (φ ≈ λ₂ ...
        // within the quadratic window): check the ratio stays within
        // the window predicted by Cheeger.
        let g = path(50).unwrap();
        let r = cheeger_check(&g).unwrap();
        assert!(r.phi_sweep <= (2.0 * r.lambda2).sqrt() + 1e-9);
        assert!(r.phi_sweep >= r.lambda2 / 2.0 - 1e-9);
    }
}
