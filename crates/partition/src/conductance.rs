//! Conductance and related cut quality measures — the paper's
//! Problems (6) and (7).
//!
//! `φ(S) = |E(S, S̄)| / min(A(S), A(S̄))` where `A(S) = Σ_{i∈S} d_i` is
//! the volume. "Conductance probably is the combinatorial quantity that
//! most closely captures the intuitive bi-criterial notion of what it
//! means for a set of nodes to be a good 'community'" (footnote 27).

use crate::{PartitionError, Result};
use acir_graph::{Graph, NodeId};

/// Cut statistics for a node set.
#[derive(Debug, Clone, PartialEq)]
pub struct CutStats {
    /// Total weight of edges leaving the set.
    pub cut: f64,
    /// Volume of the set (`Σ degrees`).
    pub volume: f64,
    /// Volume of the complement.
    pub complement_volume: f64,
    /// Conductance `cut / min(volume, complement_volume)`.
    pub conductance: f64,
    /// Expansion `cut / min(|S|, |S̄|)` (the unweighted-denominator
    /// variant, footnote 19).
    pub expansion: f64,
    /// Number of nodes in the set.
    pub size: usize,
}

/// Validate a set: non-empty, in-range, duplicate-free; returns a
/// membership mask.
pub(crate) fn membership_mask(g: &Graph, set: &[NodeId]) -> Result<Vec<bool>> {
    if set.is_empty() {
        return Err(PartitionError::InvalidArgument("empty node set".into()));
    }
    let mut mask = vec![false; g.n()];
    for &u in set {
        if u as usize >= g.n() {
            return Err(PartitionError::InvalidArgument(format!(
                "node {u} out of range"
            )));
        }
        if mask[u as usize] {
            return Err(PartitionError::InvalidArgument(format!(
                "duplicate node {u}"
            )));
        }
        mask[u as usize] = true;
    }
    Ok(mask)
}

/// Weight of edges crossing from `set` to its complement.
pub fn cut_weight(g: &Graph, set: &[NodeId]) -> Result<f64> {
    let mask = membership_mask(g, set)?;
    let mut cut = 0.0;
    for &u in set {
        for (v, w) in g.neighbors(u) {
            if !mask[v as usize] {
                cut += w;
            }
        }
    }
    Ok(cut)
}

/// Full cut statistics of a set.
pub fn cut_stats(g: &Graph, set: &[NodeId]) -> Result<CutStats> {
    let mask = membership_mask(g, set)?;
    let mut cut = 0.0;
    let mut volume = 0.0;
    for &u in set {
        volume += g.degree(u);
        for (v, w) in g.neighbors(u) {
            if !mask[v as usize] {
                cut += w;
            }
        }
    }
    let total = g.total_volume();
    let complement_volume = total - volume;
    let vol_denom = volume.min(complement_volume);
    let size_denom = set.len().min(g.n() - set.len()) as f64;
    Ok(CutStats {
        cut,
        volume,
        complement_volume,
        conductance: if vol_denom > 0.0 {
            cut / vol_denom
        } else {
            f64::INFINITY
        },
        expansion: if size_denom > 0.0 {
            cut / size_denom
        } else {
            f64::INFINITY
        },
        size: set.len(),
    })
}

/// Conductance `φ(S)` of a node set (Problem (6)).
pub fn conductance(g: &Graph, set: &[NodeId]) -> Result<f64> {
    Ok(cut_stats(g, set)?.conductance)
}

/// Conductance computed from a boolean membership mask (avoids
/// materializing the node list in hot loops).
pub fn conductance_of_mask(g: &Graph, mask: &[bool]) -> f64 {
    let mut cut = 0.0;
    let mut volume = 0.0;
    for u in 0..g.n() as NodeId {
        if !mask[u as usize] {
            continue;
        }
        volume += g.degree(u);
        for (v, w) in g.neighbors(u) {
            if !mask[v as usize] {
                cut += w;
            }
        }
    }
    let denom = volume.min(g.total_volume() - volume);
    if denom > 0.0 {
        cut / denom
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path};
    use acir_graph::Graph;

    #[test]
    fn known_values_on_cycle() {
        let g = cycle(8).unwrap();
        // Arc of 3 nodes: cut 2, vol 6 → 1/3; expansion 2/3.
        let s = cut_stats(&g, &[0, 1, 2]).unwrap();
        assert!((s.conductance - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.expansion - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.size, 3);
    }

    #[test]
    fn min_side_normalization() {
        // A 6-node set on an 8-cycle: denominator is the *complement*.
        let g = cycle(8).unwrap();
        let s = cut_stats(&g, &[0, 1, 2, 3, 4, 5]).unwrap();
        assert!((s.conductance - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn barbell_optimal_cut() {
        let g = barbell(6, 0).unwrap();
        let phi = conductance(&g, &(0..6).collect::<Vec<u32>>()).unwrap();
        assert!((phi - 1.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_conductance_of_clique() {
        let g = complete(5).unwrap();
        assert!((conductance(&g, &[0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_edges_respected() {
        let g = Graph::from_edges(3, [(0, 1, 5.0), (1, 2, 1.0)]).unwrap();
        // {0}: cut 5, vol 5, complement vol 7 → 1.
        assert!((conductance(&g, &[0]).unwrap() - 1.0).abs() < 1e-12);
        // {0,1}: cut 1, vol 11, comp 1 → 1/1 = 1.
        assert!((conductance(&g, &[0, 1]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(cut_weight(&g, &[0]).unwrap(), 5.0);
    }

    #[test]
    fn mask_variant_matches() {
        let g = path(7).unwrap();
        let set = vec![1u32, 2, 3];
        let mut mask = vec![false; 7];
        for &u in &set {
            mask[u as usize] = true;
        }
        assert!((conductance(&g, &set).unwrap() - conductance_of_mask(&g, &mask)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let g = path(4).unwrap();
        assert!(conductance(&g, &[]).is_err());
        assert!(conductance(&g, &[9]).is_err());
        assert!(conductance(&g, &[1, 1]).is_err());
    }

    #[test]
    fn whole_graph_is_infinite() {
        let g = path(4).unwrap();
        let s = cut_stats(&g, &[0, 1, 2, 3]).unwrap();
        assert!(s.conductance.is_infinite());
    }
}
