//! Cluster "niceness" measures — the Y-axes of Figure 1(b) and 1(c).
//!
//! The paper's empirical point: flow-based clusters win on the
//! *objective* (conductance, Fig 1(a)) but spectral clusters win on
//! *niceness*:
//!
//! * **Fig 1(b)** — average shortest-path length inside the cluster
//!   (compact, ball-like clusters score low; stringy quota-fillers
//!   score high);
//! * **Fig 1(c)** — ratio of external conductance to internal
//!   conductance (a good community is well separated *and* internally
//!   well connected; a low ratio means exactly that).
//!
//! Internal conductance is the conductance profile of the *induced*
//! subgraph `G[S]`: we approximate `φ(G[S])` from above with a spectral
//! sweep inside `G[S]` (exact enough for the comparison; a disconnected
//! `G[S]` has internal conductance 0 and therefore an infinite ratio —
//! the nastiest possible cluster).

use crate::conductance::cut_stats;
use crate::spectral_part::spectral_bisect;
use crate::Result;
use acir_graph::traversal::{average_shortest_path_sampled, is_connected};
use acir_graph::{Graph, NodeId};

/// Niceness report for one cluster.
#[derive(Debug, Clone)]
pub struct ClusterNiceness {
    /// Cluster size (nodes).
    pub size: usize,
    /// External conductance `φ(S)` in the host graph.
    pub external_conductance: f64,
    /// Average shortest-path length within `G[S]` (Fig 1(b));
    /// `None` for singletons.
    pub avg_shortest_path: Option<f64>,
    /// Internal conductance `φ(G[S])` (spectral-sweep upper bound);
    /// 0 when `G[S]` is disconnected.
    pub internal_conductance: f64,
    /// `external / internal` (Fig 1(c)); `f64::INFINITY` when the
    /// cluster is internally disconnected.
    pub ratio: f64,
    /// Whether `G[S]` is connected.
    pub connected: bool,
}

/// Compute the niceness measures of a cluster.
///
/// `asp_samples` bounds the BFS sources used for the average
/// shortest-path estimate (clusters larger than this are sampled).
pub fn cluster_niceness(g: &Graph, set: &[NodeId], asp_samples: usize) -> Result<ClusterNiceness> {
    let stats = cut_stats(g, set)?;
    let (sub, _) = g.induced_subgraph(set)?;
    let connected = is_connected(&sub) && sub.n() > 0;

    let internal_conductance = if !connected || sub.n() < 2 || sub.total_volume() <= 0.0 {
        0.0
    } else {
        match spectral_bisect(&sub) {
            Ok(cut) => cut.sweep.conductance.min(1.0),
            Err(_) => 0.0,
        }
    };

    let avg_shortest_path = average_shortest_path_sampled(g, set, asp_samples.max(1));

    let ratio = if internal_conductance > 0.0 {
        stats.conductance / internal_conductance
    } else {
        f64::INFINITY
    };

    Ok(ClusterNiceness {
        size: set.len(),
        external_conductance: stats.conductance,
        avg_shortest_path,
        internal_conductance,
        ratio,
        connected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, path};
    use acir_graph::GraphBuilder;

    #[test]
    fn clique_cluster_is_maximally_nice() {
        let g = barbell(8, 0).unwrap();
        let clique: Vec<u32> = (0..8).collect();
        let n = cluster_niceness(&g, &clique, 64).unwrap();
        assert!(n.connected);
        assert!(n.external_conductance < 0.05);
        // Clique internal: ASP = 1, internal conductance high.
        assert!((n.avg_shortest_path.unwrap() - 1.0).abs() < 1e-12);
        assert!(n.internal_conductance > 0.5);
        assert!(n.ratio < 0.1);
    }

    #[test]
    fn stringy_cluster_scores_badly_on_asp() {
        // A path segment inside a longer path: low conductance (cut 2)
        // but terrible compactness.
        let g = path(40).unwrap();
        let segment: Vec<u32> = (10..30).collect();
        let n = cluster_niceness(&g, &segment, 64).unwrap();
        assert!(n.connected);
        assert!(
            n.avg_shortest_path.unwrap() > 5.0,
            "stringy: long internal paths"
        );
        // Internal conductance of a path is poor too.
        assert!(n.internal_conductance < 0.3);
    }

    #[test]
    fn disconnected_cluster_has_infinite_ratio() {
        let g = path(10).unwrap();
        // Two far-apart nodes: induced subgraph has no edges.
        let n = cluster_niceness(&g, &[0, 9], 16).unwrap();
        assert!(!n.connected);
        assert_eq!(n.internal_conductance, 0.0);
        assert!(n.ratio.is_infinite());
        assert_eq!(n.avg_shortest_path, None);
    }

    #[test]
    fn compact_beats_stringy_at_equal_conductance() {
        // Build a graph holding both a clique community and an
        // equally-low-conductance stringy community; the niceness
        // measures must rank the clique nicer.
        let mut b = GraphBuilder::new();
        // Clique 0..9 attached to hub 20 by one edge.
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                b.add_pair(u, v);
            }
        }
        b.add_pair(0, 20);
        // Path 10..19 attached to hub by one edge.
        for u in 10..19u32 {
            b.add_pair(u, u + 1);
        }
        b.add_pair(10, 20);
        let g = b.build().unwrap();
        let clique: Vec<u32> = (0..10).collect();
        let stringy: Vec<u32> = (10..20).collect();
        let nc = cluster_niceness(&g, &clique, 64).unwrap();
        let ns = cluster_niceness(&g, &stringy, 64).unwrap();
        assert!(nc.avg_shortest_path.unwrap() < ns.avg_shortest_path.unwrap());
        assert!(nc.ratio < ns.ratio);
    }

    #[test]
    fn singleton_cluster() {
        let g = complete(4).unwrap();
        let n = cluster_niceness(&g, &[0], 8).unwrap();
        assert_eq!(n.size, 1);
        assert_eq!(n.avg_shortest_path, None);
        assert_eq!(n.internal_conductance, 0.0);
    }

    #[test]
    fn validates_inputs() {
        let g = path(4).unwrap();
        assert!(cluster_niceness(&g, &[], 8).is_err());
        assert!(cluster_niceness(&g, &[11], 8).is_err());
    }
}
