//! Trace sinks: where recorded events go when a caller wants them
//! outside the in-memory [`crate::Trace`].

use crate::event::Event;
use std::io::Write;

/// Consumer of a stream of trace events.
pub trait TraceSink {
    /// Accept one event.
    fn emit(&mut self, event: &Event);
    /// Flush any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Collects events into memory, for tests and in-process inspection.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<Event>,
}

impl MemorySink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Serializes each event as one JSON line into any [`Write`].
///
/// With `include_wall` off the output is the canonical golden format;
/// with it on each line carries its `wall_us` stamp for humans.
pub struct JsonlSink<W: Write> {
    writer: W,
    include_wall: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Canonical (wall-free) JSONL into `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            include_wall: false,
        }
    }

    /// JSONL with wall stamps included.
    pub fn with_wall(writer: W) -> Self {
        Self {
            writer,
            include_wall: true,
        }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        let line = serde_json::to_string(&event.to_value(self.include_wall));
        // Sink I/O is best-effort by design: a full disk must not turn
        // a converged solve into a panic.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Discards everything: the zero-overhead default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::event::EventKind;

    fn sample() -> Event {
        Event {
            wall_us: 42,
            kind: EventKind::Residual { value: 0.5 },
        }
    }

    #[test]
    fn memory_sink_collects() {
        let mut s = MemorySink::new();
        s.emit(&sample());
        s.emit(&sample());
        assert_eq!(s.events().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_canonical_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(&sample());
        s.flush();
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(out, "{\"kind\":\"residual\",\"value\":0.5}\n");
    }

    #[test]
    fn jsonl_sink_with_wall_includes_stamp() {
        let mut s = JsonlSink::with_wall(Vec::new());
        s.emit(&sample());
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert!(out.contains("\"wall_us\":42"));
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.emit(&sample());
        s.flush();
    }
}
