//! Typed trace events: the vocabulary every instrumented kernel speaks.
//!
//! An [`Event`] is a wall-clock stamp plus an [`EventKind`]. The stamp
//! is *excluded* from the canonical (golden-comparable) serialization —
//! wall time is never deterministic — while the kind and its payload
//! are fully canonical: same solver, same seed, same event bytes,
//! regardless of `ACIR_THREADS`.

use serde_json::Value;
use std::collections::BTreeMap;

/// One structured occurrence inside a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the owning trace started. Diagnostic only;
    /// never part of the canonical serialization.
    pub wall_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed payload of an [`Event`].
///
/// Variants mirror the observable lifecycle of the workspace's
/// budgeted solvers: phases open and close as spans, residuals tick,
/// retries restart, and runs end in a certificate, an exhausted
/// budget axis, or a divergence cause. Sweep cuts and injected faults
/// are the two domain-specific extras the paper's experiments revolve
/// around.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A solver phase began.
    SpanEnter {
        /// Phase name, dotted (`"linalg.power"`).
        name: &'static str,
    },
    /// A solver phase ended, with the counters it accumulated.
    SpanExit {
        /// Phase name, matching the corresponding `SpanEnter`.
        name: &'static str,
        /// Outer iterations performed inside the span.
        iterations: usize,
        /// Solver-defined work units consumed inside the span.
        work: u64,
    },
    /// One residual sample from the convergence trail.
    Residual {
        /// The residual value.
        value: f64,
    },
    /// A retry policy restarted the solver.
    Restart {
        /// 1-based attempt number that is starting.
        attempt: usize,
        /// Why the previous attempt was abandoned.
        reason: String,
    },
    /// A quality certificate was attached to a truncated result.
    CertificateIssued {
        /// Certificate family (`"residual_norm"`, `"flow_gap"`, …).
        kind: &'static str,
        /// The certificate's scalar slack (0 = exact).
        slack: f64,
    },
    /// A budget axis ran out.
    BudgetExhausted {
        /// Which axis (`"iterations"`, `"work"`, `"deadline"`).
        axis: &'static str,
    },
    /// A fault-injection harness corrupted solver state.
    FaultInjected {
        /// Corruption family (`"nan"`, `"sign_flip"`, …).
        kind: String,
        /// How many values were corrupted.
        count: u64,
    },
    /// A sweep cut (or harvested cluster) was found.
    SweepCut {
        /// Nodes on the small side of the cut.
        size: usize,
        /// Conductance of the cut.
        conductance: f64,
    },
    /// The run was halted as unrecoverable.
    Diverged {
        /// Human-readable cause.
        cause: String,
        /// Iteration at which the failure was detected.
        at_iter: usize,
    },
    /// Free-form annotation (mirrors `Diagnostics::note`).
    Note {
        /// The annotation text.
        text: String,
    },
    /// A serving-layer request crossed a lifecycle stage
    /// (`"admitted"`, `"degraded"`, `"retried"`, `"responded"`, …).
    /// Emitted by `acir-serve`, never by kernels, so golden kernel
    /// traces are unaffected.
    Request {
        /// Engine-assigned request id (unique per engine instance).
        id: u64,
        /// Lifecycle stage label.
        stage: String,
    },
}

impl EventKind {
    /// Stable snake_case tag for this kind, used as the `"kind"` field
    /// in serialized events and as the key of count summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanEnter { .. } => "span_enter",
            EventKind::SpanExit { .. } => "span_exit",
            EventKind::Residual { .. } => "residual",
            EventKind::Restart { .. } => "restart",
            EventKind::CertificateIssued { .. } => "certificate",
            EventKind::BudgetExhausted { .. } => "budget_exhausted",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::SweepCut { .. } => "sweep_cut",
            EventKind::Diverged { .. } => "diverged",
            EventKind::Note { .. } => "note",
            EventKind::Request { .. } => "request",
        }
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = BTreeMap::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

impl Event {
    /// Serialize to a JSON object. `include_wall` adds the `wall_us`
    /// stamp; the canonical form used for golden comparison omits it.
    pub fn to_value(&self, include_wall: bool) -> Value {
        let mut entries: Vec<(&str, Value)> =
            vec![("kind", Value::String(self.kind.tag().to_string()))];
        match &self.kind {
            EventKind::SpanEnter { name } => {
                entries.push(("name", Value::String((*name).to_string())));
            }
            EventKind::SpanExit {
                name,
                iterations,
                work,
            } => {
                entries.push(("name", Value::String((*name).to_string())));
                entries.push(("iterations", Value::Number(*iterations as f64)));
                entries.push(("work", Value::Number(*work as f64)));
            }
            EventKind::Residual { value } => {
                entries.push(("value", Value::Number(*value)));
            }
            EventKind::Restart { attempt, reason } => {
                entries.push(("attempt", Value::Number(*attempt as f64)));
                entries.push(("reason", Value::String(reason.clone())));
            }
            EventKind::CertificateIssued { kind, slack } => {
                entries.push(("cert", Value::String((*kind).to_string())));
                entries.push(("slack", Value::Number(*slack)));
            }
            EventKind::BudgetExhausted { axis } => {
                entries.push(("axis", Value::String((*axis).to_string())));
            }
            EventKind::FaultInjected { kind, count } => {
                entries.push(("fault", Value::String(kind.clone())));
                entries.push(("count", Value::Number(*count as f64)));
            }
            EventKind::SweepCut { size, conductance } => {
                entries.push(("size", Value::Number(*size as f64)));
                entries.push(("conductance", Value::Number(*conductance)));
            }
            EventKind::Diverged { cause, at_iter } => {
                entries.push(("cause", Value::String(cause.clone())));
                entries.push(("at_iter", Value::Number(*at_iter as f64)));
            }
            EventKind::Note { text } => {
                entries.push(("text", Value::String(text.clone())));
            }
            EventKind::Request { id, stage } => {
                entries.push(("id", Value::Number(*id as f64)));
                entries.push(("stage", Value::String(stage.clone())));
            }
        }
        if include_wall {
            entries.push(("wall_us", Value::Number(self.wall_us as f64)));
        }
        obj(entries)
    }

    /// Canonical single-line JSON for golden snapshots (no wall stamp).
    pub fn canonical_line(&self) -> String {
        serde_json::to_string(&self.to_value(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(EventKind::SpanEnter { name: "x" }.tag(), "span_enter");
        assert_eq!(
            EventKind::Diverged {
                cause: "c".into(),
                at_iter: 1
            }
            .tag(),
            "diverged"
        );
    }

    #[test]
    fn canonical_line_omits_wall_and_is_sorted() {
        let e = Event {
            wall_us: 123,
            kind: EventKind::SweepCut {
                size: 7,
                conductance: 0.25,
            },
        };
        let line = e.canonical_line();
        assert!(!line.contains("wall_us"));
        assert_eq!(line, r#"{"conductance":0.25,"kind":"sweep_cut","size":7}"#);
        let with_wall = serde_json::to_string(&e.to_value(true));
        assert!(with_wall.contains("\"wall_us\":123"));
    }

    #[test]
    fn request_events_serialize_canonically() {
        let e = Event {
            wall_us: 0,
            kind: EventKind::Request {
                id: 42,
                stage: "admitted".into(),
            },
        };
        assert_eq!(e.kind.tag(), "request");
        assert_eq!(
            e.canonical_line(),
            r#"{"id":42,"kind":"request","stage":"admitted"}"#
        );
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        let e = Event {
            wall_us: 0,
            kind: EventKind::SpanExit {
                name: "linalg.power",
                iterations: 12,
                work: 34,
            },
        };
        assert_eq!(
            e.canonical_line(),
            r#"{"iterations":12,"kind":"span_exit","name":"linalg.power","work":34}"#
        );
    }
}
