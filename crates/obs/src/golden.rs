//! Golden-trace snapshots: canonical traces committed as JSONL files
//! and structurally diffed against fresh runs.
//!
//! The comparison is *structural*, not textual: event kinds, span
//! names, and integer counters must match exactly, while float-valued
//! payloads (residuals, certificate slacks, conductances) compare to a
//! tolerance — solver behavior drift fails the test, harmless
//! last-bit noise does not. Set `ACIR_BLESS=1` to (re)write snapshots
//! instead of checking them; blessing is idempotent because the
//! canonical form is deterministic.

use crate::trace::Trace;
use serde_json::Value;
use std::path::Path;

/// Keys whose numeric payloads compare to tolerance rather than
/// exactly: these carry floating-point solver quantities.
const FLOAT_KEYS: [&str; 3] = ["value", "slack", "conductance"];

/// Whether `ACIR_BLESS=1` is set: snapshot writes replace checks.
pub fn bless_requested() -> bool {
    std::env::var("ACIR_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn numbers_close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn values_match(key: &str, a: &Value, b: &Value, tol: f64) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) if FLOAT_KEYS.contains(&key) => {
            numbers_close(*x, *y, tol)
        }
        _ => a == b,
    }
}

fn diff_objects(line_no: usize, exp: &Value, act: &Value, tol: f64, out: &mut Vec<String>) {
    let (Some(em), Some(am)) = (exp.as_object(), act.as_object()) else {
        out.push(format!("line {line_no}: event is not a JSON object"));
        return;
    };
    for (k, ev) in em {
        match am.get(k) {
            None => out.push(format!(
                "line {line_no}: missing field {k:?} (expected {ev:?})"
            )),
            Some(av) if !values_match(k, ev, av, tol) => out.push(format!(
                "line {line_no}: field {k:?} expected {ev:?}, got {av:?}"
            )),
            Some(_) => {}
        }
    }
    for k in am.keys() {
        if !em.contains_key(k) {
            out.push(format!("line {line_no}: unexpected field {k:?}"));
        }
    }
}

/// Structurally diff two canonical JSONL documents. Returns one
/// human-readable message per mismatch; empty means they agree.
pub fn diff_lines(expected: &str, actual: &str, tol: f64) -> Vec<String> {
    let exp: Vec<&str> = expected.lines().filter(|l| !l.trim().is_empty()).collect();
    let act: Vec<&str> = actual.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::new();
    if exp.len() != act.len() {
        out.push(format!(
            "event count mismatch: expected {}, got {}",
            exp.len(),
            act.len()
        ));
    }
    for (i, (e, a)) in exp.iter().zip(act.iter()).enumerate() {
        let line_no = i + 1;
        match (serde_json::from_str(e), serde_json::from_str(a)) {
            (Ok(ev), Ok(av)) => diff_objects(line_no, &ev, &av, tol, &mut out),
            (Err(err), _) => out.push(format!("line {line_no}: unparseable expected line: {err}")),
            (_, Err(err)) => out.push(format!("line {line_no}: unparseable actual line: {err}")),
        }
        if out.len() > 32 {
            out.push("... (diff truncated)".to_string());
            break;
        }
    }
    out
}

/// Check a trace against the snapshot at `path`, or (re)write the
/// snapshot when `ACIR_BLESS=1`.
///
/// On mismatch the error lists every structural difference and the
/// fresh canonical trace is written next to the snapshot as
/// `<name>.actual` so CI can upload it as an artifact.
pub fn check_trace(path: &Path, trace: &Trace, tol: f64) -> Result<(), String> {
    let actual = {
        let mut s = trace.canonical_lines().join("\n");
        s.push('\n');
        s
    };
    if bless_requested() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        return std::fs::write(path, &actual)
            .map_err(|e| format!("blessing {}: {e}", path.display()));
    }
    let expected = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "missing golden snapshot {}: {e}\nrun the suite once with ACIR_BLESS=1 to create it",
            path.display()
        )
    })?;
    let diffs = diff_lines(&expected, &actual, tol);
    if diffs.is_empty() {
        return Ok(());
    }
    let actual_path = path.with_extension("jsonl.actual");
    let _ = std::fs::write(&actual_path, &actual);
    Err(format!(
        "golden trace drift in {} ({} difference(s); fresh trace written to {}):\n  {}",
        path.display(),
        diffs.len(),
        actual_path.display(),
        diffs.join("\n  ")
    ))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn identical_lines_have_no_diff() {
        let doc = "{\"kind\":\"residual\",\"value\":0.5}\n{\"kind\":\"span_exit\",\"iterations\":3,\"name\":\"x\",\"work\":9}\n";
        assert!(diff_lines(doc, doc, 0.0).is_empty());
    }

    #[test]
    fn float_fields_compare_to_tolerance() {
        let a = "{\"kind\":\"residual\",\"value\":0.5}";
        let b = "{\"kind\":\"residual\",\"value\":0.5000001}";
        assert!(diff_lines(a, b, 1e-6).is_empty());
        assert!(!diff_lines(a, b, 1e-9).is_empty());
    }

    #[test]
    fn integer_and_kind_fields_compare_exactly() {
        let a = "{\"iterations\":3,\"kind\":\"span_exit\",\"name\":\"x\",\"work\":9}";
        let b = "{\"iterations\":4,\"kind\":\"span_exit\",\"name\":\"x\",\"work\":9}";
        let d = diff_lines(a, b, 1.0);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("iterations"));
    }

    #[test]
    fn count_mismatch_is_reported() {
        let d = diff_lines("{\"kind\":\"note\",\"text\":\"a\"}", "", 0.0);
        assert!(d[0].contains("count mismatch"));
    }

    #[test]
    fn bless_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("acir-obs-golden-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        let mut t = Trace::new();
        t.enter("k");
        t.record(EventKind::Residual { value: 0.25 });
        t.close_all(1, 2);
        // Bless manually (env vars are process-global; don't mutate them
        // in tests).
        std::fs::create_dir_all(&dir).unwrap();
        let mut doc = t.canonical_lines().join("\n");
        doc.push('\n');
        std::fs::write(&path, &doc).unwrap();
        assert!(check_trace(&path, &t, 1e-9).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drift_writes_actual_file() {
        let dir = std::env::temp_dir().join(format!("acir-obs-drift-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "{\"kind\":\"residual\",\"value\":1.0}\n").unwrap();
        let mut t = Trace::new();
        t.record(EventKind::Residual { value: 2.0 });
        let err = check_trace(&path, &t, 1e-9).unwrap_err();
        assert!(err.contains("drift"));
        assert!(path.with_extension("jsonl.actual").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
