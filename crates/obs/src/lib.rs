//! # acir-obs
//!
//! Structured, deterministic observability for the ACIR reproduction
//! of Mahoney, *"Approximate Computation and Implicit Regularization
//! for Very Large-scale Data Analysis"* (PODS 2012).
//!
//! The paper's argument is about what approximate solvers do *along
//! the way*: each truncated iterate is the exact solution of an
//! implicitly regularized problem, so the trajectory — residuals,
//! restarts, certificates, budget exhaustions, sweep cuts — is the
//! result, not incidental logging. This crate makes that trajectory a
//! first-class, assertable artifact:
//!
//! * [`Event`] / [`EventKind`] — the typed vocabulary: span
//!   enter/exit, residual samples, restarts, certificates, budget
//!   exhaustion, fault injection, sweep cuts, divergence, notes;
//! * [`Trace`] — an ordered per-run event log with span bookkeeping
//!   and chunk-ordered merging, bit-stable across `ACIR_THREADS`
//!   because parallel workers are merged in ascending chunk order
//!   (the same discipline `acir-exec` applies to values);
//! * [`MetricsRegistry`] — named counters and log₂-bucket
//!   [`Histogram`]s whose merge is order-independent;
//! * [`TraceSink`] — where events go: [`MemorySink`] for tests,
//!   [`JsonlSink`] for JSONL streams (canonical or wall-stamped, via
//!   the serde_json shim), [`NullSink`] for zero overhead;
//! * [`golden`] — snapshot conformance: canonical JSONL snapshots
//!   checked structurally (kinds and counters exactly, floats to
//!   tolerance) with `ACIR_BLESS=1` regeneration.
//!
//! The crate is dependency-free apart from the workspace's offline
//! `serde_json` shim; `acir-runtime`'s `Diagnostics` embeds a
//! [`Trace`] and [`MetricsRegistry`] so every budgeted kernel in the
//! workspace is traced without changing its call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod golden;
pub mod metrics;
pub mod sink;
pub mod trace;

pub use event::{Event, EventKind};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{JsonlSink, MemorySink, NullSink, TraceSink};
pub use trace::Trace;
