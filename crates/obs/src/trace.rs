//! Deterministic per-run event traces with span bookkeeping.
//!
//! A [`Trace`] records [`Event`]s in program order. Wall-clock stamps
//! are attached for humans but excluded from the canonical form, so
//! the *sequence* of events is a pure function of the solver's inputs.
//! Parallel solvers keep one trace per worker and [`Trace::merge`]
//! them in ascending chunk order (the same discipline `acir-exec`
//! uses for values), which makes the merged trace bit-stable across
//! `ACIR_THREADS`.

use crate::event::{Event, EventKind};
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::time::Instant;

/// Hard cap on stored `Residual` events; past it further residual
/// samples are counted but not stored, so hot million-iteration loops
/// cannot blow up trace memory. All other kinds are unbounded (their
/// counts are structurally small).
const MAX_RESIDUAL_EVENTS: usize = 4096;

/// An ordered, deterministic event log for one solver run.
#[derive(Debug, Clone)]
pub struct Trace {
    start: Instant,
    events: Vec<Event>,
    open: Vec<&'static str>,
    residual_events: usize,
    dropped_residuals: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Fresh, empty trace; the wall clock starts now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            events: Vec::new(),
            open: Vec::new(),
            residual_events: 0,
            dropped_residuals: 0,
        }
    }

    /// Record one event, stamping it with the elapsed wall time.
    ///
    /// `Residual` events past the storage cap are dropped (but
    /// counted); the drop rule depends only on how many residuals were
    /// recorded before, so it is deterministic.
    pub fn record(&mut self, kind: EventKind) {
        if matches!(kind, EventKind::Residual { .. }) {
            if self.residual_events >= MAX_RESIDUAL_EVENTS {
                self.dropped_residuals += 1;
                return;
            }
            self.residual_events += 1;
        }
        let wall_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.events.push(Event { wall_us, kind });
    }

    /// Open a span: record `SpanEnter` and push it on the span stack.
    pub fn enter(&mut self, name: &'static str) {
        self.record(EventKind::SpanEnter { name });
        self.open.push(name);
    }

    /// Close the innermost open span with the given counters.
    /// No-op when no span is open.
    pub fn exit(&mut self, iterations: usize, work: u64) {
        if let Some(name) = self.open.pop() {
            self.record(EventKind::SpanExit {
                name,
                iterations,
                work,
            });
        }
    }

    /// Close every open span (innermost first) with the given
    /// counters. Outcome constructors call this so a solver can return
    /// from any exit path without hand-balancing its spans.
    pub fn close_all(&mut self, iterations: usize, work: u64) {
        while !self.open.is_empty() {
            self.exit(iterations, work);
        }
    }

    /// Retroactively wrap everything recorded so far in a span: a
    /// `SpanEnter` is inserted before the first event and a matching
    /// `SpanExit` appended. Used by kernels that delegate their whole
    /// body to an inner solver and only afterwards own its trace.
    pub fn wrap_span(&mut self, name: &'static str, iterations: usize, work: u64) {
        let wall_us = self.events.last().map(|e| e.wall_us).unwrap_or(0);
        self.events.insert(
            0,
            Event {
                wall_us: 0,
                kind: EventKind::SpanEnter { name },
            },
        );
        self.events.push(Event {
            wall_us,
            kind: EventKind::SpanExit {
                name,
                iterations,
                work,
            },
        });
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names of currently open (unbalanced) spans, outermost first.
    pub fn open_spans(&self) -> &[&'static str] {
        &self.open
    }

    /// Residual samples that were counted but not stored.
    pub fn dropped_residuals(&self) -> u64 {
        self.dropped_residuals
    }

    /// Append another trace's events after this one's, preserving the
    /// other trace's relative wall stamps. Callers merge workers in a
    /// fixed (ascending chunk) order, so the combined sequence is
    /// deterministic across thread counts.
    pub fn merge(&mut self, other: &Trace) {
        for e in &other.events {
            if matches!(e.kind, EventKind::Residual { .. }) {
                if self.residual_events >= MAX_RESIDUAL_EVENTS {
                    self.dropped_residuals += 1;
                    continue;
                }
                self.residual_events += 1;
            }
            self.events.push(e.clone());
        }
        self.open.extend_from_slice(&other.open);
        self.dropped_residuals += other.dropped_residuals;
    }

    /// Event counts keyed by kind tag — the cheap structural summary
    /// tests assert on.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for e in &self.events {
            *m.entry(e.kind.tag()).or_insert(0) += 1;
        }
        m
    }

    /// Canonical JSONL lines (one per event, wall stamps omitted) —
    /// the golden snapshot format.
    pub fn canonical_lines(&self) -> Vec<String> {
        self.events.iter().map(Event::canonical_line).collect()
    }

    /// Replay every event into a sink, in order.
    pub fn replay_into(&self, sink: &mut dyn TraceSink) {
        for e in &self.events {
            sink.emit(e);
        }
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn spans_balance_lifo() {
        let mut t = Trace::new();
        t.enter("outer");
        t.enter("inner");
        t.record(EventKind::Residual { value: 0.5 });
        t.close_all(3, 10);
        assert!(t.open_spans().is_empty());
        let tags: Vec<_> = t.events().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "span_enter",
                "span_enter",
                "residual",
                "span_exit",
                "span_exit"
            ]
        );
        match &t.events()[3].kind {
            EventKind::SpanExit { name, .. } => assert_eq!(*name, "inner"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn residual_cap_drops_deterministically() {
        let mut t = Trace::new();
        for i in 0..(MAX_RESIDUAL_EVENTS + 10) {
            t.record(EventKind::Residual { value: i as f64 });
        }
        assert_eq!(t.len(), MAX_RESIDUAL_EVENTS);
        assert_eq!(t.dropped_residuals(), 10);
    }

    #[test]
    fn merge_appends_in_call_order() {
        let mut a = Trace::new();
        a.record(EventKind::Note { text: "a".into() });
        let mut b = Trace::new();
        b.record(EventKind::Note { text: "b".into() });
        let mut c = Trace::new();
        c.record(EventKind::Note { text: "c".into() });
        a.merge(&b);
        a.merge(&c);
        let texts: Vec<_> = a
            .events()
            .iter()
            .map(|e| match &e.kind {
                EventKind::Note { text } => text.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn wrap_span_brackets_existing_events() {
        let mut t = Trace::new();
        t.record(EventKind::Residual { value: 1.0 });
        t.wrap_span("outer", 5, 9);
        let tags: Vec<_> = t.events().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, vec!["span_enter", "residual", "span_exit"]);
    }

    #[test]
    fn counts_summarize_by_tag() {
        let mut t = Trace::new();
        t.enter("s");
        t.record(EventKind::Residual { value: 1.0 });
        t.record(EventKind::Residual { value: 0.5 });
        t.close_all(2, 2);
        let c = t.counts();
        assert_eq!(c["residual"], 2);
        assert_eq!(c["span_enter"], 1);
        assert_eq!(c["span_exit"], 1);
    }
}
