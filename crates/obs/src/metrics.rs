//! Counters and histograms with deterministic contents and
//! deterministic (sorted-key, fixed-bucket) serialization.

use serde_json::Value;
use std::collections::BTreeMap;

/// Number of log₂ buckets per histogram: exponents −64..=63, clamped.
const BUCKETS: usize = 128;

/// A fixed-bucket log₂ histogram of nonnegative samples.
///
/// Bucket `i` holds samples whose binary exponent is `i − 64` (clamped
/// at both ends); zero, negative, and non-finite samples land in
/// bucket 0. Array-backed, so merging is a bucketwise add and two
/// histograms built from the same samples are identical regardless of
/// arrival order.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let e = v.log2().floor();
        (e.clamp(-64.0, 63.0) + 64.0) as usize
    }

    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite sample, if any finite sample was recorded.
    pub fn min(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.min)
    }

    /// Largest finite sample, if any finite sample was recorded.
    pub fn max(&self) -> Option<f64> {
        (self.min <= self.max).then_some(self.max)
    }

    /// Bucketwise merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize the summary plus nonzero buckets (keyed by exponent).
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("count".to_string(), Value::Number(self.count as f64));
        m.insert("sum".to_string(), Value::Number(self.sum));
        if let (Some(lo), Some(hi)) = (self.min(), self.max()) {
            m.insert("min".to_string(), Value::Number(lo));
            m.insert("max".to_string(), Value::Number(hi));
        }
        let mut b = BTreeMap::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                b.insert(format!("{:+04}", i as i64 - 64), Value::Number(n as f64));
            }
        }
        m.insert("log2_buckets".to_string(), Value::Object(b));
        Value::Object(m)
    }
}

/// Named counters and histograms for one solver run (or a merged
/// fan-out of runs). `BTreeMap`-keyed, so iteration and serialization
/// order are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a sample into the named histogram (creating it empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// The named histogram, if any sample was ever recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merge another registry: counters add, histograms merge
    /// bucketwise. Deterministic regardless of merge grouping.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serialize as `{ "counters": {...}, "histograms": {...} }`.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        let mut m = BTreeMap::new();
        m.insert("counters".to_string(), Value::Object(counters));
        m.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn histogram_buckets_by_exponent() {
        let mut h = Histogram::new();
        h.observe(1.5); // exponent 0
        h.observe(0.25); // exponent -2
        h.observe(1024.0); // exponent 10
        h.observe(0.0); // special bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(1024.0));
        let v = h.to_value();
        let buckets = v.get("log2_buckets").unwrap().as_object().unwrap();
        assert_eq!(buckets.len(), 4);
        assert!(buckets.contains_key("+000"));
        assert!(buckets.contains_key("-002"));
        assert!(buckets.contains_key("+010"));
        assert!(buckets.contains_key("-064"));
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [0.5, 2.0, 8.0, 1e-9, 3.5];
        let mut one = Histogram::new();
        for &s in &samples {
            one.observe(s);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(s);
            } else {
                b.observe(s);
            }
        }
        a.merge(&b);
        assert_eq!(
            serde_json::to_string(&a.to_value()),
            serde_json::to_string(&one.to_value())
        );
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.incr("iterations", 3);
        a.observe("residual", 0.5);
        let mut b = MetricsRegistry::new();
        b.incr("iterations", 4);
        b.incr("restarts", 1);
        b.observe("residual", 0.25);
        a.merge(&b);
        assert_eq!(a.counter("iterations"), 7);
        assert_eq!(a.counter("restarts"), 1);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.histogram("residual").unwrap().count(), 2);
        assert!(!a.is_empty());
        let s = serde_json::to_string(&a.to_value());
        assert!(s.contains("\"iterations\":7"));
    }
}
