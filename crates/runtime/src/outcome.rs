//! Structured solver outcomes: converged, budget-exhausted with a
//! quality certificate, or diverged with a cause.

use crate::budget::Exhaustion;
use crate::diagnostics::Diagnostics;

/// Why an iteration was halted as diverged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceCause {
    /// The scalar residual became NaN or infinite.
    NonFiniteResidual {
        /// Iteration at which contamination was observed.
        at_iter: usize,
    },
    /// The iterate vector itself contains NaN or infinite entries.
    NonFiniteIterate {
        /// Iteration at which contamination was observed.
        at_iter: usize,
    },
    /// The residual blew up far past the best value achieved.
    ResidualBlowup {
        /// Iteration at which the blow-up was observed.
        at_iter: usize,
        /// The offending residual.
        residual: f64,
        /// Best residual previously achieved.
        best: f64,
    },
    /// No meaningful progress over a whole observation window.
    Stagnation {
        /// Iteration at which stagnation was declared.
        at_iter: usize,
        /// Window length that saw no progress.
        window: usize,
    },
    /// A structural breakdown specific to the method (e.g. a Lanczos
    /// β collapse that full reorthogonalization could not repair, or a
    /// CG direction with nonpositive curvature).
    Breakdown {
        /// Iteration at which the breakdown occurred.
        at_iter: usize,
        /// Method-specific description.
        what: &'static str,
    },
}

impl DivergenceCause {
    /// Iteration index at which the failure was detected.
    pub fn at_iter(&self) -> usize {
        match *self {
            DivergenceCause::NonFiniteResidual { at_iter }
            | DivergenceCause::NonFiniteIterate { at_iter }
            | DivergenceCause::ResidualBlowup { at_iter, .. }
            | DivergenceCause::Stagnation { at_iter, .. }
            | DivergenceCause::Breakdown { at_iter, .. } => at_iter,
        }
    }
}

impl std::fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceCause::NonFiniteResidual { at_iter } => {
                write!(f, "non-finite residual at iteration {at_iter}")
            }
            DivergenceCause::NonFiniteIterate { at_iter } => {
                write!(f, "non-finite iterate at iteration {at_iter}")
            }
            DivergenceCause::ResidualBlowup {
                at_iter,
                residual,
                best,
            } => write!(
                f,
                "residual blow-up at iteration {at_iter}: {residual:.3e} vs best {best:.3e}"
            ),
            DivergenceCause::Stagnation { at_iter, window } => write!(
                f,
                "stagnation: no progress over {window} iterations (declared at {at_iter})"
            ),
            DivergenceCause::Breakdown { at_iter, what } => {
                write!(f, "method breakdown at iteration {at_iter}: {what}")
            }
        }
    }
}

/// A computable quality bound attached to a truncated result.
///
/// Per the paper, the truncated iterate *is* the (implicitly
/// regularized) answer; the certificate quantifies how far from the
/// un-regularized limit it can be, in the natural metric of the method
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Certificate {
    /// Relative residual norm at the returned iterate: for a linear
    /// solve, `‖A x − b‖ / ‖b‖ ≤ value`.
    ResidualNorm {
        /// The residual bound.
        value: f64,
    },
    /// An eigenvalue enclosure: some true eigenvalue of the operator
    /// lies within `radius` of `center` (e.g. Rayleigh quotient ±
    /// eigen-residual norm, by symmetric perturbation theory).
    RayleighInterval {
        /// Rayleigh quotient of the returned vector.
        center: f64,
        /// Enclosure radius `‖A v − θ v‖₂` for the unit vector `v`.
        radius: f64,
    },
    /// Local diffusion bound: un-pushed residual mass `remaining`
    /// guarantees per-node error ≤ `per_degree_bound × deg(u)` (the
    /// ACL push invariant).
    ResidualMass {
        /// Residual mass not yet distributed.
        remaining: f64,
        /// Per-unit-degree error bound (the ε of the push loop).
        per_degree_bound: f64,
    },
    /// Flow duality gap: the returned flow has `value`, and any flow —
    /// including the max — is bounded above by the witnessed cut
    /// capacity `upper_bound`.
    FlowGap {
        /// Flow value achieved so far (a feasible lower bound).
        value: f64,
        /// Capacity of a witnessed cut (an upper bound on the max flow).
        upper_bound: f64,
    },
    /// A [`Certificate::ResidualMass`] bound served from a cache after
    /// the graph moved on: the bound held against the graph snapshot
    /// identified by `epoch`, not necessarily against the current one.
    /// Serving layers use this so a stale answer can never masquerade
    /// as a fresh one.
    StaleResidualMass {
        /// Residual mass not distributed when the answer was computed.
        remaining: f64,
        /// Per-unit-degree error bound against the `epoch` snapshot.
        per_degree_bound: f64,
        /// Graph version the bound was certified against.
        epoch: u64,
    },
}

impl Certificate {
    /// Stable snake_case family name, used as the `cert` field of
    /// [`acir_obs::EventKind::CertificateIssued`] trace events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Certificate::ResidualNorm { .. } => "residual_norm",
            Certificate::RayleighInterval { .. } => "rayleigh_interval",
            Certificate::ResidualMass { .. } => "residual_mass",
            Certificate::FlowGap { .. } => "flow_gap",
            Certificate::StaleResidualMass { .. } => "stale_residual_mass",
        }
    }

    /// Label a residual-mass certificate with the graph epoch its
    /// answer was certified against, producing the stale form a cache
    /// rung serves. Idempotent on already-stale certificates (the
    /// original epoch label is replaced); other certificate families
    /// pass through unchanged.
    pub fn staled(self, epoch: u64) -> Certificate {
        match self {
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            }
            | Certificate::StaleResidualMass {
                remaining,
                per_degree_bound,
                ..
            } => Certificate::StaleResidualMass {
                remaining,
                per_degree_bound,
                epoch,
            },
            other => other,
        }
    }

    /// The graph-epoch label, if this certificate carries one.
    pub fn epoch(&self) -> Option<u64> {
        match *self {
            Certificate::StaleResidualMass { epoch, .. } => Some(epoch),
            _ => None,
        }
    }

    /// The scalar slack of the certificate: how far the result can be
    /// from the exact answer, in the method's own metric. Zero means
    /// exact.
    pub fn slack(&self) -> f64 {
        match *self {
            Certificate::ResidualNorm { value } => value,
            Certificate::RayleighInterval { radius, .. } => radius,
            Certificate::ResidualMass { remaining, .. } => remaining,
            Certificate::FlowGap { value, upper_bound } => (upper_bound - value).max(0.0),
            Certificate::StaleResidualMass { remaining, .. } => remaining,
        }
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certificate::ResidualNorm { value } => write!(f, "relative residual ≤ {value:.3e}"),
            Certificate::RayleighInterval { center, radius } => {
                write!(
                    f,
                    "eigenvalue in [{:.6e}, {:.6e}]",
                    center - radius,
                    center + radius
                )
            }
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            } => write!(
                f,
                "residual mass {remaining:.3e}, per-degree error ≤ {per_degree_bound:.3e}"
            ),
            Certificate::FlowGap { value, upper_bound } => {
                write!(f, "flow {value:.6e} ≤ max-flow ≤ {upper_bound:.6e}")
            }
            Certificate::StaleResidualMass {
                remaining,
                per_degree_bound,
                epoch,
            } => write!(
                f,
                "stale (epoch {epoch}): residual mass {remaining:.3e}, per-degree error ≤ {per_degree_bound:.3e}"
            ),
        }
    }
}

/// How an iterative run ended.
///
/// The three-way split is the crate's core contract: *usable* results
/// (`Converged`, `BudgetExhausted`) always carry a value, and
/// budget-exhausted values always carry a [`Certificate`]; *unusable*
/// runs (`Diverged`) never leak a poisoned value. All three carry
/// [`Diagnostics`].
#[derive(Debug, Clone)]
pub enum SolverOutcome<T> {
    /// The method met its own convergence criterion.
    Converged {
        /// The converged result.
        value: T,
        /// Run diagnostics.
        diagnostics: Diagnostics,
    },
    /// A budget axis ran out first; the best iterate found is returned
    /// as a certified partial result.
    BudgetExhausted {
        /// Best iterate at exhaustion (the regularized answer).
        best_so_far: T,
        /// Which axis ran out.
        exhausted: Exhaustion,
        /// Quality bound for `best_so_far`.
        certificate: Certificate,
        /// Run diagnostics.
        diagnostics: Diagnostics,
    },
    /// The iteration was halted as unrecoverable; no value is returned.
    Diverged {
        /// Iteration at which the run was halted.
        at_iter: usize,
        /// What went wrong.
        cause: DivergenceCause,
        /// Run diagnostics.
        diagnostics: Diagnostics,
    },
}

impl<T> SolverOutcome<T> {
    /// Build a `Converged` outcome, closing any spans still open in
    /// the diagnostics trace so every traced run ends balanced.
    pub fn converged(value: T, mut diagnostics: Diagnostics) -> Self {
        diagnostics.finish_spans();
        SolverOutcome::Converged { value, diagnostics }
    }

    /// Build a `BudgetExhausted` outcome. The exhausted axis and the
    /// certificate are recorded as typed trace events and any open
    /// spans are closed, so a truncated run tells its own story.
    pub fn exhausted(
        best_so_far: T,
        exhausted: Exhaustion,
        certificate: Certificate,
        mut diagnostics: Diagnostics,
    ) -> Self {
        diagnostics.budget_exhausted(&exhausted);
        diagnostics.certificate_issued(&certificate);
        diagnostics.finish_spans();
        SolverOutcome::BudgetExhausted {
            best_so_far,
            exhausted,
            certificate,
            diagnostics,
        }
    }

    /// Build a `Diverged` outcome from its cause.
    ///
    /// The cause is also recorded in the diagnostics event trail (flat
    /// and typed) and any open spans are closed, so a divergence is
    /// never silent even when the solver noted nothing else along the
    /// way.
    pub fn diverged(cause: DivergenceCause, mut diagnostics: Diagnostics) -> Self {
        diagnostics.note(format!("diverged: {cause}"));
        diagnostics.trace.record(acir_obs::EventKind::Diverged {
            cause: cause.to_string(),
            at_iter: cause.at_iter(),
        });
        diagnostics.finish_spans();
        SolverOutcome::Diverged {
            at_iter: cause.at_iter(),
            cause,
            diagnostics,
        }
    }

    /// Did the method meet its own convergence criterion?
    pub fn is_converged(&self) -> bool {
        matches!(self, SolverOutcome::Converged { .. })
    }

    /// Is there a value at all (converged or certified-partial)?
    pub fn is_usable(&self) -> bool {
        !matches!(self, SolverOutcome::Diverged { .. })
    }

    /// The value, if usable.
    pub fn value(&self) -> Option<&T> {
        match self {
            SolverOutcome::Converged { value, .. } => Some(value),
            SolverOutcome::BudgetExhausted { best_so_far, .. } => Some(best_so_far),
            SolverOutcome::Diverged { .. } => None,
        }
    }

    /// The value by move, if usable.
    pub fn into_value(self) -> Option<T> {
        match self {
            SolverOutcome::Converged { value, .. } => Some(value),
            SolverOutcome::BudgetExhausted { best_so_far, .. } => Some(best_so_far),
            SolverOutcome::Diverged { .. } => None,
        }
    }

    /// The certificate carried by a budget-exhausted result.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            SolverOutcome::BudgetExhausted { certificate, .. } => Some(certificate),
            _ => None,
        }
    }

    /// Diagnostics of the run, however it ended.
    pub fn diagnostics(&self) -> &Diagnostics {
        match self {
            SolverOutcome::Converged { diagnostics, .. }
            | SolverOutcome::BudgetExhausted { diagnostics, .. }
            | SolverOutcome::Diverged { diagnostics, .. } => diagnostics,
        }
    }

    /// Mutable diagnostics access (used by retry policies to annotate).
    pub fn diagnostics_mut(&mut self) -> &mut Diagnostics {
        match self {
            SolverOutcome::Converged { diagnostics, .. }
            | SolverOutcome::BudgetExhausted { diagnostics, .. }
            | SolverOutcome::Diverged { diagnostics, .. } => diagnostics,
        }
    }

    /// Map the carried value, preserving the outcome shape.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SolverOutcome<U> {
        match self {
            SolverOutcome::Converged { value, diagnostics } => SolverOutcome::Converged {
                value: f(value),
                diagnostics,
            },
            SolverOutcome::BudgetExhausted {
                best_so_far,
                exhausted,
                certificate,
                diagnostics,
            } => SolverOutcome::BudgetExhausted {
                best_so_far: f(best_so_far),
                exhausted,
                certificate,
                diagnostics,
            },
            SolverOutcome::Diverged {
                at_iter,
                cause,
                diagnostics,
            } => SolverOutcome::Diverged {
                at_iter,
                cause,
                diagnostics,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn diags() -> Diagnostics {
        let mut d = Diagnostics::new();
        d.push_residual(0.5);
        d
    }

    #[test]
    fn accessors_follow_the_contract() {
        let c: SolverOutcome<u32> = SolverOutcome::Converged {
            value: 7,
            diagnostics: diags(),
        };
        assert!(c.is_converged() && c.is_usable());
        assert_eq!(c.value(), Some(&7));
        assert!(c.certificate().is_none());

        let b: SolverOutcome<u32> = SolverOutcome::BudgetExhausted {
            best_so_far: 3,
            exhausted: Exhaustion::Work,
            certificate: Certificate::ResidualNorm { value: 1e-2 },
            diagnostics: diags(),
        };
        assert!(!b.is_converged() && b.is_usable());
        assert_eq!(b.certificate().map(Certificate::slack), Some(1e-2));
        assert_eq!(b.into_value(), Some(3));

        let d: SolverOutcome<u32> =
            SolverOutcome::diverged(DivergenceCause::NonFiniteResidual { at_iter: 4 }, diags());
        assert!(!d.is_usable());
        assert_eq!(d.value(), None);
        assert_eq!(d.diagnostics().residuals.len(), 1);
        match d {
            SolverOutcome::Diverged { at_iter, .. } => assert_eq!(at_iter, 4),
            _ => unreachable!(),
        }
    }

    #[test]
    fn constructors_record_typed_events_and_close_spans() {
        let c = SolverOutcome::converged(1u32, Diagnostics::for_kernel("k"));
        let counts = c.diagnostics().trace.counts();
        assert_eq!(counts["span_enter"], 1);
        assert_eq!(counts["span_exit"], 1);
        assert!(c.diagnostics().trace.open_spans().is_empty());

        let b = SolverOutcome::exhausted(
            2u32,
            Exhaustion::Deadline,
            Certificate::ResidualNorm { value: 0.25 },
            Diagnostics::for_kernel("k"),
        );
        let counts = b.diagnostics().trace.counts();
        assert_eq!(counts["budget_exhausted"], 1);
        assert_eq!(counts["certificate"], 1);
        assert!(b.diagnostics().trace.open_spans().is_empty());

        let d: SolverOutcome<u32> = SolverOutcome::diverged(
            DivergenceCause::Stagnation {
                at_iter: 5,
                window: 3,
            },
            Diagnostics::for_kernel("k"),
        );
        let counts = d.diagnostics().trace.counts();
        assert_eq!(counts["diverged"], 1);
        assert!(d.diagnostics().trace.open_spans().is_empty());
    }

    #[test]
    fn certificate_kind_names_are_stable() {
        assert_eq!(
            Certificate::ResidualNorm { value: 0.0 }.kind_name(),
            "residual_norm"
        );
        assert_eq!(
            Certificate::FlowGap {
                value: 1.0,
                upper_bound: 2.0
            }
            .kind_name(),
            "flow_gap"
        );
    }

    #[test]
    fn staled_labels_residual_mass_with_epoch() {
        let fresh = Certificate::ResidualMass {
            remaining: 0.2,
            per_degree_bound: 1e-4,
        };
        assert_eq!(fresh.epoch(), None);
        let stale = fresh.staled(3);
        assert_eq!(stale.epoch(), Some(3));
        assert_eq!(stale.kind_name(), "stale_residual_mass");
        assert_eq!(stale.slack(), 0.2);
        // Idempotent: re-labeling replaces the epoch.
        assert_eq!(stale.staled(5).epoch(), Some(5));
        // Other families pass through untouched.
        let norm = Certificate::ResidualNorm { value: 0.1 };
        assert_eq!(norm.staled(7), norm);
        assert!(stale.to_string().contains("epoch 3"));
    }

    #[test]
    fn map_preserves_shape() {
        let b: SolverOutcome<u32> = SolverOutcome::BudgetExhausted {
            best_so_far: 3,
            exhausted: Exhaustion::Iterations,
            certificate: Certificate::ResidualMass {
                remaining: 0.2,
                per_degree_bound: 1e-4,
            },
            diagnostics: diags(),
        };
        let mapped = b.map(|v| v * 2);
        assert_eq!(mapped.value(), Some(&6));
        assert!(matches!(
            mapped.certificate(),
            Some(Certificate::ResidualMass { .. })
        ));
    }

    #[test]
    fn certificate_slack_semantics() {
        assert_eq!(Certificate::ResidualNorm { value: 0.5 }.slack(), 0.5);
        assert_eq!(
            Certificate::FlowGap {
                value: 3.0,
                upper_bound: 5.0
            }
            .slack(),
            2.0
        );
        assert_eq!(
            Certificate::RayleighInterval {
                center: 1.0,
                radius: 0.25
            }
            .slack(),
            0.25
        );
    }

    #[test]
    fn displays_are_informative() {
        let s = DivergenceCause::ResidualBlowup {
            at_iter: 9,
            residual: 1e3,
            best: 1e-3,
        }
        .to_string();
        assert!(s.contains("iteration 9"));
        let s = Certificate::FlowGap {
            value: 1.0,
            upper_bound: 2.0,
        }
        .to_string();
        assert!(s.contains("max-flow"));
    }
}
