//! Retry-with-escalation: a small, reusable shell around "attempt,
//! and on divergence try the next-stronger variant", plus the
//! deterministic exponential [`Backoff`] the serving supervisor waits
//! between attempts.

use crate::outcome::SolverOutcome;
use std::time::Duration;

/// Deterministic exponential backoff with bounded jitter.
///
/// The nominal delay before retry `k` (0-based: the wait *after* the
/// first failed attempt has `k = 0`) is `base · factor^k`, capped at
/// `cap`. Jitter then shrinks it by up to `jitter` of itself:
/// `delay ∈ [(1 − jitter) · nominal, nominal]`, drawn from a
/// [SplitMix64-style] hash of `(seed, k)` — a pure function, so a
/// replayed schedule waits exactly as long as the original and tests
/// can assert the sequence. Shrinking (rather than stretching) keeps
/// the cap a hard upper bound, which deadline math relies on.
///
/// [SplitMix64-style]: crate::fault
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Nominal delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per further retry (≥ 1 in practice).
    pub factor: f64,
    /// Hard upper bound on any single delay.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1)`: how much of the nominal delay may
    /// be shaved off.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::none()
    }
}

impl Backoff {
    /// No waiting at all (every delay is zero) — the default, so
    /// kernel-side retry ladders keep their historical behavior.
    pub fn none() -> Self {
        Self {
            base: Duration::ZERO,
            factor: 1.0,
            cap: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Exponential doubling from `base` up to `cap`, no jitter.
    pub fn exponential(base: Duration, cap: Duration) -> Self {
        Self {
            base,
            factor: 2.0,
            cap,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Builder: shave up to `fraction` of each delay, deterministically
    /// from `seed`. `fraction` is clamped to `[0, 1)`.
    pub fn with_jitter(mut self, fraction: f64, seed: u64) -> Self {
        self.jitter = fraction.clamp(0.0, 0.999_999);
        self.seed = seed;
        self
    }

    /// The delay before 0-based retry `k`. Pure in `(self, k)`.
    pub fn delay(&self, k: usize) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let nominal = (self.base.as_secs_f64() * self.factor.max(0.0).powi(k.min(64) as i32))
            .min(self.cap.as_secs_f64().max(self.base.as_secs_f64()));
        let scaled = if self.jitter > 0.0 {
            // One SplitMix64 round over (seed, k): replayable jitter.
            let mut z = self
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let unit = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            nominal * (1.0 - self.jitter * unit)
        } else {
            nominal
        };
        Duration::from_secs_f64(scaled.max(0.0))
    }

    /// The first `n` delays, for logging a planned schedule.
    pub fn schedule(&self, n: usize) -> Vec<Duration> {
        (0..n).map(|k| self.delay(k)).collect()
    }
}

/// Bounded retry loop for solvers with known escalation ladders.
///
/// Each attempt is a closure receiving the 0-based attempt index; the
/// closure encodes the ladder — e.g. for Lanczos: attempt 0 is the
/// plain run, attempt 1 restarts with a perturbed seed, attempt 2
/// switches to full reorthogonalization of everything. A new attempt is
/// made only when the previous one *diverged* (budget exhaustion is a
/// legitimate answer and is returned as-is; retrying it would just
/// spend the same budget again).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts allowed (including the first). `1` disables
    /// retries.
    pub max_attempts: usize,
    /// Delay schedule between attempts. Defaults to [`Backoff::none`]
    /// (no waiting), which is what in-process kernel ladders want; the
    /// serve supervisor opts into exponential backoff.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Backoff::none(),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff: Backoff::none(),
        }
    }

    /// A policy allowing `n` total attempts.
    pub fn attempts(n: usize) -> Self {
        Self {
            max_attempts: n.max(1),
            backoff: Backoff::none(),
        }
    }

    /// Builder: wait according to `backoff` before each retry.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Run `attempt(k)` for `k = 0, 1, …` until it converges, exhausts
    /// its budget, errors, or the attempt limit is reached. Divergence
    /// of the final attempt is returned as-is. The returned outcome's
    /// diagnostics record the number of escalations in
    /// [`crate::Diagnostics::restarts`] and an event per retry.
    pub fn run<T, E>(
        &self,
        mut attempt: impl FnMut(usize) -> Result<SolverOutcome<T>, E>,
    ) -> Result<SolverOutcome<T>, E> {
        let attempts = self.max_attempts.max(1);
        // Trail carried across attempts (flat events and the typed
        // trace alike), so the surviving outcome tells the full
        // escalation story.
        let mut carried = crate::diagnostics::Diagnostics::new();
        let mut k = 0;
        loop {
            let mut outcome = attempt(k)?;
            {
                let d = outcome.diagnostics_mut();
                d.restarts = k;
                let mut all = std::mem::take(&mut carried);
                all.events.extend(std::mem::take(&mut d.events));
                all.trace.merge(&std::mem::take(&mut d.trace));
                all.metrics.merge(&std::mem::take(&mut d.metrics));
                d.events = all.events;
                d.trace = all.trace;
                d.metrics = all.metrics;
            }
            let cause = match &outcome {
                SolverOutcome::Diverged { cause, .. } if k + 1 < attempts => *cause,
                _ => return Ok(outcome),
            };
            let d = outcome.diagnostics_mut();
            carried.events = std::mem::take(&mut d.events);
            carried.trace = std::mem::take(&mut d.trace);
            carried.metrics = std::mem::take(&mut d.metrics);
            carried
                .events
                .push(format!("attempt {k} diverged ({cause}); escalating"));
            carried.trace.record(acir_obs::EventKind::Restart {
                attempt: k + 1,
                reason: format!("attempt {k} diverged: {cause}"),
            });
            carried.metrics.incr("restarts", 1);
            let delay = self.backoff.delay(k);
            if !delay.is_zero() {
                carried
                    .events
                    .push(format!("backoff before attempt {}: {delay:?}", k + 1));
                std::thread::sleep(delay);
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::diagnostics::Diagnostics;
    use crate::outcome::DivergenceCause;

    fn diverged<T>() -> SolverOutcome<T> {
        SolverOutcome::diverged(
            DivergenceCause::NonFiniteResidual { at_iter: 1 },
            Diagnostics::new(),
        )
    }

    fn converged(v: u32) -> SolverOutcome<u32> {
        SolverOutcome::Converged {
            value: v,
            diagnostics: Diagnostics::new(),
        }
    }

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<_, ()> = RetryPolicy::default().run(|k| {
            calls += 1;
            assert_eq!(k, 0);
            Ok(converged(9))
        });
        assert_eq!(calls, 1);
        assert_eq!(out.unwrap().value(), Some(&9));
    }

    #[test]
    fn divergence_escalates_then_succeeds() {
        let out: Result<_, ()> = RetryPolicy::attempts(3).run(|k| {
            Ok(if k < 2 {
                diverged()
            } else {
                converged(k as u32)
            })
        });
        let out = out.unwrap();
        assert_eq!(out.value(), Some(&2));
        assert_eq!(out.diagnostics().restarts, 2);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn escalation_records_restart_events_in_trace() {
        let out: Result<_, ()> = RetryPolicy::attempts(3).run(|k| {
            Ok(if k < 2 {
                SolverOutcome::diverged(
                    DivergenceCause::NonFiniteResidual { at_iter: 1 },
                    Diagnostics::for_kernel("test.kernel"),
                )
            } else {
                SolverOutcome::converged(k as u32, Diagnostics::for_kernel("test.kernel"))
            })
        });
        let out = out.unwrap();
        let counts = out.diagnostics().trace.counts();
        // Three attempts: three kernel spans, two diverged, two restarts.
        assert_eq!(counts["span_enter"], 3);
        assert_eq!(counts["span_exit"], 3);
        assert_eq!(counts["diverged"], 2);
        assert_eq!(counts["restart"], 2);
        assert_eq!(out.diagnostics().metrics.counter("restarts"), 2);
    }

    #[test]
    fn persistent_divergence_is_returned() {
        let mut calls = 0;
        let out: Result<SolverOutcome<u32>, ()> = RetryPolicy::attempts(3).run(|_| {
            calls += 1;
            Ok(diverged())
        });
        assert_eq!(calls, 3);
        assert!(!out.unwrap().is_usable());
    }

    #[test]
    fn budget_exhaustion_is_not_retried() {
        let mut calls = 0;
        let out: Result<SolverOutcome<u32>, ()> = RetryPolicy::attempts(5).run(|_| {
            calls += 1;
            Ok(SolverOutcome::BudgetExhausted {
                best_so_far: 1,
                exhausted: crate::budget::Exhaustion::Work,
                certificate: crate::outcome::Certificate::ResidualNorm { value: 0.1 },
                diagnostics: Diagnostics::new(),
            })
        });
        assert_eq!(calls, 1);
        assert!(out.unwrap().is_usable());
    }

    #[test]
    fn errors_propagate() {
        let out: Result<SolverOutcome<u32>, &str> = RetryPolicy::default().run(|_| Err("boom"));
        assert_eq!(out.unwrap_err(), "boom");
    }

    #[test]
    fn backoff_none_is_all_zero() {
        let b = Backoff::none();
        assert_eq!(b.schedule(4), vec![Duration::ZERO; 4]);
    }

    #[test]
    fn backoff_sequence_doubles_then_caps() {
        let b = Backoff::exponential(Duration::from_millis(10), Duration::from_millis(50));
        assert_eq!(
            b.schedule(5),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(50),
                Duration::from_millis(50),
            ]
        );
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let b = Backoff::exponential(Duration::from_millis(100), Duration::from_secs(1))
            .with_jitter(0.5, 42);
        for k in 0..16 {
            let d = b.delay(k);
            let nominal = Backoff::exponential(b.base, b.cap).delay(k);
            assert!(d <= nominal, "jitter must only shrink: {d:?} > {nominal:?}");
            let floor = nominal.mul_f64(1.0 - b.jitter);
            assert!(
                d >= floor.saturating_sub(Duration::from_nanos(1)),
                "jitter below floor at k={k}: {d:?} < {floor:?}"
            );
        }
        // Same seed → same schedule; different seed → (almost surely) not.
        assert_eq!(b.schedule(8), b.schedule(8));
        let other = b.with_jitter(0.5, 43);
        assert_ne!(b.schedule(8), other.schedule(8));
    }

    #[test]
    fn retry_loop_applies_backoff_between_attempts() {
        let policy = RetryPolicy::attempts(3).with_backoff(Backoff::exponential(
            Duration::from_millis(2),
            Duration::from_millis(4),
        ));
        let t0 = std::time::Instant::now();
        let out: Result<SolverOutcome<u32>, ()> = policy.run(|_| Ok(diverged()));
        // Two retries: 2ms + 4ms of deliberate waiting.
        assert!(t0.elapsed() >= Duration::from_millis(6));
        let out = out.unwrap();
        assert!(!out.is_usable());
        assert!(out
            .diagnostics()
            .events
            .iter()
            .any(|e| e.contains("backoff before attempt")));
    }

    #[test]
    fn huge_attempt_index_does_not_overflow() {
        let b = Backoff::exponential(Duration::from_millis(1), Duration::from_secs(2));
        assert_eq!(b.delay(10_000), Duration::from_secs(2));
    }
}
