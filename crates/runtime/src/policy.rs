//! Retry-with-escalation: a small, reusable shell around "attempt,
//! and on divergence try the next-stronger variant".

use crate::outcome::SolverOutcome;

/// Bounded retry loop for solvers with known escalation ladders.
///
/// Each attempt is a closure receiving the 0-based attempt index; the
/// closure encodes the ladder — e.g. for Lanczos: attempt 0 is the
/// plain run, attempt 1 restarts with a perturbed seed, attempt 2
/// switches to full reorthogonalization of everything. A new attempt is
/// made only when the previous one *diverged* (budget exhaustion is a
/// legitimate answer and is returned as-is; retrying it would just
/// spend the same budget again).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts allowed (including the first). `1` disables
    /// retries.
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self { max_attempts: 1 }
    }

    /// A policy allowing `n` total attempts.
    pub fn attempts(n: usize) -> Self {
        Self {
            max_attempts: n.max(1),
        }
    }

    /// Run `attempt(k)` for `k = 0, 1, …` until it converges, exhausts
    /// its budget, errors, or the attempt limit is reached. Divergence
    /// of the final attempt is returned as-is. The returned outcome's
    /// diagnostics record the number of escalations in
    /// [`crate::Diagnostics::restarts`] and an event per retry.
    pub fn run<T, E>(
        &self,
        mut attempt: impl FnMut(usize) -> Result<SolverOutcome<T>, E>,
    ) -> Result<SolverOutcome<T>, E> {
        let attempts = self.max_attempts.max(1);
        // Trail carried across attempts (flat events and the typed
        // trace alike), so the surviving outcome tells the full
        // escalation story.
        let mut carried = crate::diagnostics::Diagnostics::new();
        let mut k = 0;
        loop {
            let mut outcome = attempt(k)?;
            {
                let d = outcome.diagnostics_mut();
                d.restarts = k;
                let mut all = std::mem::take(&mut carried);
                all.events.extend(std::mem::take(&mut d.events));
                all.trace.merge(&std::mem::take(&mut d.trace));
                all.metrics.merge(&std::mem::take(&mut d.metrics));
                d.events = all.events;
                d.trace = all.trace;
                d.metrics = all.metrics;
            }
            let cause = match &outcome {
                SolverOutcome::Diverged { cause, .. } if k + 1 < attempts => *cause,
                _ => return Ok(outcome),
            };
            let d = outcome.diagnostics_mut();
            carried.events = std::mem::take(&mut d.events);
            carried.trace = std::mem::take(&mut d.trace);
            carried.metrics = std::mem::take(&mut d.metrics);
            carried
                .events
                .push(format!("attempt {k} diverged ({cause}); escalating"));
            carried.trace.record(acir_obs::EventKind::Restart {
                attempt: k + 1,
                reason: format!("attempt {k} diverged: {cause}"),
            });
            carried.metrics.incr("restarts", 1);
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::diagnostics::Diagnostics;
    use crate::outcome::DivergenceCause;

    fn diverged<T>() -> SolverOutcome<T> {
        SolverOutcome::diverged(
            DivergenceCause::NonFiniteResidual { at_iter: 1 },
            Diagnostics::new(),
        )
    }

    fn converged(v: u32) -> SolverOutcome<u32> {
        SolverOutcome::Converged {
            value: v,
            diagnostics: Diagnostics::new(),
        }
    }

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<_, ()> = RetryPolicy::default().run(|k| {
            calls += 1;
            assert_eq!(k, 0);
            Ok(converged(9))
        });
        assert_eq!(calls, 1);
        assert_eq!(out.unwrap().value(), Some(&9));
    }

    #[test]
    fn divergence_escalates_then_succeeds() {
        let out: Result<_, ()> = RetryPolicy::attempts(3).run(|k| {
            Ok(if k < 2 {
                diverged()
            } else {
                converged(k as u32)
            })
        });
        let out = out.unwrap();
        assert_eq!(out.value(), Some(&2));
        assert_eq!(out.diagnostics().restarts, 2);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn escalation_records_restart_events_in_trace() {
        let out: Result<_, ()> = RetryPolicy::attempts(3).run(|k| {
            Ok(if k < 2 {
                SolverOutcome::diverged(
                    DivergenceCause::NonFiniteResidual { at_iter: 1 },
                    Diagnostics::for_kernel("test.kernel"),
                )
            } else {
                SolverOutcome::converged(k as u32, Diagnostics::for_kernel("test.kernel"))
            })
        });
        let out = out.unwrap();
        let counts = out.diagnostics().trace.counts();
        // Three attempts: three kernel spans, two diverged, two restarts.
        assert_eq!(counts["span_enter"], 3);
        assert_eq!(counts["span_exit"], 3);
        assert_eq!(counts["diverged"], 2);
        assert_eq!(counts["restart"], 2);
        assert_eq!(out.diagnostics().metrics.counter("restarts"), 2);
    }

    #[test]
    fn persistent_divergence_is_returned() {
        let mut calls = 0;
        let out: Result<SolverOutcome<u32>, ()> = RetryPolicy::attempts(3).run(|_| {
            calls += 1;
            Ok(diverged())
        });
        assert_eq!(calls, 3);
        assert!(!out.unwrap().is_usable());
    }

    #[test]
    fn budget_exhaustion_is_not_retried() {
        let mut calls = 0;
        let out: Result<SolverOutcome<u32>, ()> = RetryPolicy::attempts(5).run(|_| {
            calls += 1;
            Ok(SolverOutcome::BudgetExhausted {
                best_so_far: 1,
                exhausted: crate::budget::Exhaustion::Work,
                certificate: crate::outcome::Certificate::ResidualNorm { value: 0.1 },
                diagnostics: Diagnostics::new(),
            })
        });
        assert_eq!(calls, 1);
        assert!(out.unwrap().is_usable());
    }

    #[test]
    fn errors_propagate() {
        let out: Result<SolverOutcome<u32>, &str> = RetryPolicy::default().run(|_| Err("boom"));
        assert_eq!(out.unwrap_err(), "boom");
    }
}
