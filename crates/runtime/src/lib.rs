//! # acir-runtime
//!
//! Solver resilience runtime for the ACIR reproduction of Mahoney,
//! *"Approximate Computation and Implicit Regularization for Very
//! Large-scale Data Analysis"* (PODS 2012).
//!
//! The paper's thesis is that approximate answers produced by *truncated*
//! iterative dynamics are first-class results: an early-stopped power
//! iteration, a partially-pushed PageRank, or a truncated CG solve each
//! carries a precise statistical meaning (implicit regularization), so
//! hitting a budget is not a failure mode — it is an answer with a
//! smaller certificate. What *is* a failure mode is silent poisoning:
//! NaNs propagating through a diffusion, a stalled solver spinning
//! forever, or a panic on adversarial input. This crate gives every
//! iterative kernel in the workspace a shared vocabulary for the
//! difference:
//!
//! * [`Budget`] — iteration, work-unit, and wall-clock ceilings checked
//!   cheaply inside solver loops through a [`BudgetMeter`];
//! * [`ConvergenceGuard`] — NaN/Inf contamination, residual stagnation,
//!   and divergence detection with a recorded residual trail;
//! * [`SolverOutcome`] — `Converged` / `BudgetExhausted` / `Diverged`,
//!   where exhausted budgets still return the best iterate found plus a
//!   [`Certificate`] bounding its quality (the truncated iterate *is*
//!   the regularized answer — the certificate says how regularized);
//! * [`Diagnostics`] — per-run residual history, work counters, wall
//!   time, and a structured event trail, mirrored into a typed
//!   `acir-obs` trace (spans, residual/certificate/restart events,
//!   metrics) that golden-trace tests snapshot;
//! * [`RetryPolicy`] — bounded retry-with-escalation loops (restart
//!   Lanczos with a fresh seed, fall back from Chebyshev to the power
//!   method, jitter a stalled CG) expressed once instead of ad-hoc in
//!   each solver;
//! * [`fault`] — a deterministic fault-injection stream (NaNs, sign
//!   flips, adversarial rounding, artificial latency) and graph-level
//!   corruption helpers, used by tests across the workspace to prove
//!   the guardrails actually fire;
//! * [`KernelCtx`] — the single seam bundling all of the above (plus
//!   an execution-pool handle and fault hooks) behind one `&mut`
//!   parameter, so each kernel keeps exactly one core iteration loop
//!   and every legacy entry point is a thin context-building wrapper;
//! * [`workspace`] — reusable kernel scratch: epoch-stamped dense
//!   arrays with `O(|touched|)` reset ([`StampedVec`]/[`StampedSet`]),
//!   buffer freelists ([`Workspace`]), and a checkout pool
//!   ([`WorkspacePool`]) so hot kernels stop allocating after warm-up
//!   without changing a single bit of their output.
//!
//! The crate depends only on `acir-obs` (itself dependency-free apart
//! from the offline serde_json shim); the `LinOp` adapter for fault injection
//! lives in `acir-linalg::fault` and the budgeted solver entry points
//! live next to each solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod ctx;
pub mod diagnostics;
pub mod fault;
pub mod guard;
pub mod outcome;
pub mod policy;
pub mod workspace;

pub use acir_exec::SpmvLayout;
pub use acir_obs as obs;
pub use budget::{Budget, BudgetMeter, Exhaustion};
pub use ctx::KernelCtx;
pub use diagnostics::Diagnostics;
pub use fault::{FaultConfig, FaultStream};
pub use guard::{ConvergenceGuard, GuardConfig, GuardVerdict};
pub use outcome::{Certificate, DivergenceCause, SolverOutcome};
pub use policy::{Backoff, RetryPolicy};
pub use workspace::{StampedSet, StampedVec, Workspace, WorkspacePool};
