//! Structured per-run diagnostics: residual trail, work counters,
//! wall time, and a typed event trace.
//!
//! Since the observability layer landed, `Diagnostics` is a facade
//! over [`acir_obs`]: every residual, note, certificate, budget
//! exhaustion, restart, sweep cut, and fault is mirrored into a typed
//! [`Trace`] (and the residual histogram / iteration counters into a
//! [`MetricsRegistry`]), while the flat `residuals` / `events` fields
//! keep their original shape so existing call sites never notice.

use crate::budget::{BudgetMeter, Exhaustion};
use crate::outcome::Certificate;
use acir_obs::{EventKind, MetricsRegistry, Trace};
use std::time::Duration;

/// Hard cap on stored residuals; beyond it the trail is thinned by
/// dropping every other stored sample, so memory stays bounded on
/// million-iteration runs while early and late behavior both survive.
const MAX_RESIDUALS: usize = 4096;

/// What a solver run did, regardless of how it ended.
///
/// Every [`crate::SolverOutcome`] carries one of these, so callers can
/// always answer "how hard did it try, and what did convergence look
/// like" — the observability half of treating truncated runs as
/// first-class answers.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Residual trail (possibly thinned; see [`Diagnostics::push_residual`]).
    pub residuals: Vec<f64>,
    /// Stride between stored residuals (1 = every iteration recorded).
    pub residual_stride: usize,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Solver-defined work units consumed (matvecs, pushes, arc scans).
    pub work: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Restarts / escalations performed by a [`crate::RetryPolicy`].
    pub restarts: usize,
    /// Human-readable event trail ("restarted with fresh seed", …).
    pub events: Vec<String>,
    /// Typed, deterministic event trace (spans, residuals,
    /// certificates, …) for sinks and golden snapshots.
    pub trace: Trace,
    /// Counters and histograms accumulated alongside the trace.
    pub metrics: MetricsRegistry,
}

impl Diagnostics {
    /// Fresh, empty diagnostics.
    pub fn new() -> Self {
        Self {
            residual_stride: 1,
            ..Self::default()
        }
    }

    /// Fresh diagnostics with the kernel's root span already open.
    ///
    /// This is how every instrumented solver starts: the span is
    /// closed automatically by the [`crate::SolverOutcome`]
    /// constructors, so no exit path can leave it dangling.
    pub fn for_kernel(name: &'static str) -> Self {
        let mut d = Self::new();
        d.trace.enter(name);
        d
    }

    /// Open a nested phase span (closed by [`Self::end_span`] or, for
    /// whatever is still open, by the outcome constructors).
    pub fn begin_span(&mut self, name: &'static str) {
        self.trace.enter(name);
    }

    /// Close the innermost open span with the current counters.
    pub fn end_span(&mut self) {
        self.trace.exit(self.iterations, self.work);
    }

    /// Close every open span with the current counters. Called by the
    /// outcome constructors; harmless to call twice.
    pub fn finish_spans(&mut self) {
        self.trace.close_all(self.iterations, self.work);
    }

    /// Retroactively wrap the whole trace in an outer kernel span —
    /// for wrappers that delegate their body to an inner solver and
    /// adopt its diagnostics (e.g. `expm` over Lanczos).
    pub fn wrap_span(&mut self, name: &'static str) {
        self.trace.wrap_span(name, self.iterations, self.work);
    }

    /// Record one residual sample, thinning the trail if it has grown
    /// past the cap.
    pub fn push_residual(&mut self, r: f64) {
        if self.residuals.len() >= MAX_RESIDUALS {
            let mut keep = 0;
            for i in (0..self.residuals.len()).step_by(2) {
                self.residuals[keep] = self.residuals[i];
                keep += 1;
            }
            self.residuals.truncate(keep);
            self.residual_stride = self.residual_stride.max(1) * 2;
        }
        self.residuals.push(r);
        self.trace.record(EventKind::Residual { value: r });
        self.metrics.observe("residual", r);
    }

    /// Record a notable event.
    pub fn note(&mut self, event: impl Into<String>) {
        let text = event.into();
        self.trace.record(EventKind::Note { text: text.clone() });
        self.events.push(text);
    }

    /// Record that a quality certificate was attached to the result.
    pub fn certificate_issued(&mut self, certificate: &Certificate) {
        self.trace.record(EventKind::CertificateIssued {
            kind: certificate.kind_name(),
            slack: certificate.slack(),
        });
        self.metrics.incr("certificates", 1);
    }

    /// Record that a budget axis ran out.
    pub fn budget_exhausted(&mut self, exhausted: &Exhaustion) {
        self.trace.record(EventKind::BudgetExhausted {
            axis: exhausted.axis_name(),
        });
        self.metrics.incr("budget_exhaustions", 1);
    }

    /// Record a retry-policy restart (1-based attempt number starting).
    pub fn restart(&mut self, attempt: usize, reason: impl Into<String>) {
        let reason = reason.into();
        self.trace.record(EventKind::Restart {
            attempt,
            reason: reason.clone(),
        });
        self.metrics.incr("restarts", 1);
        self.events.push(format!("restart {attempt}: {reason}"));
    }

    /// Record injected faults observed during the run. No-op when
    /// `count` is zero, so callers can report unconditionally.
    pub fn fault_injected(&mut self, kind: impl Into<String>, count: u64) {
        if count == 0 {
            return;
        }
        self.trace.record(EventKind::FaultInjected {
            kind: kind.into(),
            count,
        });
        self.metrics.incr("faults_injected", count);
    }

    /// Record a serving-layer request lifecycle stage (`"admitted"`,
    /// `"degraded"`, `"responded"`, …). Kernels never emit these;
    /// `acir-serve` uses them to stitch per-request stories out of the
    /// shared trace vocabulary.
    pub fn request_stage(&mut self, id: u64, stage: impl Into<String>) {
        let stage = stage.into();
        self.trace.record(EventKind::Request {
            id,
            stage: stage.clone(),
        });
        self.events.push(format!("request {id}: {stage}"));
    }

    /// Record a sweep cut (or harvested cluster).
    pub fn sweep_cut(&mut self, size: usize, conductance: f64) {
        self.trace.record(EventKind::SweepCut { size, conductance });
        self.metrics.incr("sweep_cuts", 1);
        self.metrics.observe("sweep_conductance", conductance);
    }

    /// Copy counters out of a finished meter.
    pub fn absorb_meter(&mut self, meter: &BudgetMeter) {
        self.iterations = meter.iterations();
        self.work = meter.work();
        self.elapsed = meter.elapsed();
        self.metrics.set("iterations", self.iterations as u64);
        self.metrics.set("work", self.work);
    }

    /// Fold another run's diagnostics into this one, for fan-out solvers
    /// that meter each parallel worker separately and report one merged
    /// record.
    ///
    /// Counters add; `elapsed` takes the maximum (workers run
    /// concurrently, so the slowest one is the wall time); events and
    /// the typed trace append in call order and each worker's residual
    /// trail is concatenated (the merged `residual_stride` becomes the
    /// coarsest of the two — the trail is a convergence sketch, not an
    /// aligned time series). Merging workers in a fixed (ascending
    /// chunk) order keeps the result — including the typed event
    /// sequence — deterministic across thread counts.
    pub fn merge(&mut self, other: &Diagnostics) {
        self.iterations += other.iterations;
        self.work += other.work;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.restarts += other.restarts;
        self.residual_stride = self.residual_stride.max(other.residual_stride);
        for &r in &other.residuals {
            if self.residuals.len() >= MAX_RESIDUALS {
                let mut keep = 0;
                for i in (0..self.residuals.len()).step_by(2) {
                    self.residuals[keep] = self.residuals[i];
                    keep += 1;
                }
                self.residuals.truncate(keep);
                self.residual_stride = self.residual_stride.max(1) * 2;
            }
            self.residuals.push(r);
        }
        self.events.extend(other.events.iter().cloned());
        self.trace.merge(&other.trace);
        self.metrics.merge(&other.metrics);
    }

    /// Last recorded residual, if any.
    pub fn last_residual(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Best (smallest) recorded residual, ignoring non-finite samples.
    pub fn best_residual(&self) -> Option<f64> {
        self.residuals
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn residual_trail_thins_but_keeps_endpoints() {
        let mut d = Diagnostics::new();
        for i in 0..(MAX_RESIDUALS * 4) {
            d.push_residual(i as f64);
        }
        assert!(d.residuals.len() <= MAX_RESIDUALS + 1);
        assert!(d.residual_stride >= 4);
        assert_eq!(d.residuals[0], 0.0);
        assert_eq!(d.last_residual(), Some((MAX_RESIDUALS * 4 - 1) as f64));
    }

    #[test]
    fn best_residual_ignores_nans() {
        let mut d = Diagnostics::new();
        d.push_residual(3.0);
        d.push_residual(f64::NAN);
        d.push_residual(1.5);
        assert_eq!(d.best_residual(), Some(1.5));
    }

    #[test]
    fn merge_adds_counters_and_takes_max_elapsed() {
        let mut a = Diagnostics::new();
        a.iterations = 3;
        a.work = 10;
        a.elapsed = Duration::from_millis(5);
        a.push_residual(0.5);
        a.note("worker 0 done");
        let mut b = Diagnostics::new();
        b.iterations = 4;
        b.work = 7;
        b.restarts = 1;
        b.elapsed = Duration::from_millis(9);
        b.push_residual(0.25);
        b.note("worker 1 done");
        a.merge(&b);
        assert_eq!(a.iterations, 7);
        assert_eq!(a.work, 17);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.elapsed, Duration::from_millis(9));
        assert_eq!(a.residuals, vec![0.5, 0.25]);
        assert_eq!(a.events, vec!["worker 0 done", "worker 1 done"]);
    }

    #[test]
    fn events_accumulate() {
        let mut d = Diagnostics::new();
        d.note("restarted");
        d.note(format!("attempt {}", 2));
        assert_eq!(d.events.len(), 2);
    }

    #[test]
    fn for_kernel_opens_span_and_finish_closes_it() {
        let mut d = Diagnostics::for_kernel("linalg.power");
        assert_eq!(d.trace.open_spans(), ["linalg.power"]);
        d.iterations = 7;
        d.work = 21;
        d.finish_spans();
        assert!(d.trace.open_spans().is_empty());
        match &d.trace.events().last().unwrap().kind {
            EventKind::SpanExit {
                name,
                iterations,
                work,
            } => {
                assert_eq!(*name, "linalg.power");
                assert_eq!(*iterations, 7);
                assert_eq!(*work, 21);
            }
            other => panic!("unexpected terminal event {other:?}"),
        }
    }

    #[test]
    fn facade_mirrors_into_typed_trace() {
        let mut d = Diagnostics::for_kernel("k");
        d.push_residual(0.5);
        d.note("hello");
        d.certificate_issued(&Certificate::ResidualNorm { value: 0.1 });
        d.budget_exhausted(&Exhaustion::Work);
        d.sweep_cut(4, 0.25);
        d.fault_injected("nan", 3);
        d.fault_injected("nan", 0); // no-op
        d.restart(1, "fresh seed");
        d.request_stage(7, "admitted");
        d.finish_spans();
        let c = d.trace.counts();
        assert_eq!(c["request"], 1);
        assert!(d.events.iter().any(|e| e == "request 7: admitted"));
        assert_eq!(c["span_enter"], 1);
        assert_eq!(c["span_exit"], 1);
        assert_eq!(c["residual"], 1);
        assert_eq!(c["note"], 1);
        assert_eq!(c["certificate"], 1);
        assert_eq!(c["budget_exhausted"], 1);
        assert_eq!(c["sweep_cut"], 1);
        assert_eq!(c["fault_injected"], 1);
        assert_eq!(c["restart"], 1);
        assert_eq!(d.metrics.counter("faults_injected"), 3);
        assert_eq!(d.metrics.histogram("residual").unwrap().count(), 1);
    }

    #[test]
    fn merge_splices_traces_in_call_order() {
        let mk = |tag: &str| {
            let mut d = Diagnostics::new();
            d.note(tag.to_string());
            d
        };
        let mut all = Diagnostics::for_kernel("parent");
        for tag in ["w0", "w1", "w2"] {
            all.merge(&mk(tag));
        }
        all.finish_spans();
        let texts: Vec<String> = all
            .trace
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Note { text } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["w0", "w1", "w2"]);
    }
}
