//! Structured per-run diagnostics: residual trail, work counters,
//! wall time, and events.

use crate::budget::BudgetMeter;
use std::time::Duration;

/// Hard cap on stored residuals; beyond it the trail is thinned by
/// dropping every other stored sample, so memory stays bounded on
/// million-iteration runs while early and late behavior both survive.
const MAX_RESIDUALS: usize = 4096;

/// What a solver run did, regardless of how it ended.
///
/// Every [`crate::SolverOutcome`] carries one of these, so callers can
/// always answer "how hard did it try, and what did convergence look
/// like" — the observability half of treating truncated runs as
/// first-class answers.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Residual trail (possibly thinned; see [`Diagnostics::push_residual`]).
    pub residuals: Vec<f64>,
    /// Stride between stored residuals (1 = every iteration recorded).
    pub residual_stride: usize,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Solver-defined work units consumed (matvecs, pushes, arc scans).
    pub work: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Restarts / escalations performed by a [`crate::RetryPolicy`].
    pub restarts: usize,
    /// Human-readable event trail ("restarted with fresh seed", …).
    pub events: Vec<String>,
}

impl Diagnostics {
    /// Fresh, empty diagnostics.
    pub fn new() -> Self {
        Self {
            residual_stride: 1,
            ..Self::default()
        }
    }

    /// Record one residual sample, thinning the trail if it has grown
    /// past the cap.
    pub fn push_residual(&mut self, r: f64) {
        if self.residuals.len() >= MAX_RESIDUALS {
            let mut keep = 0;
            for i in (0..self.residuals.len()).step_by(2) {
                self.residuals[keep] = self.residuals[i];
                keep += 1;
            }
            self.residuals.truncate(keep);
            self.residual_stride = self.residual_stride.max(1) * 2;
        }
        self.residuals.push(r);
    }

    /// Record a notable event.
    pub fn note(&mut self, event: impl Into<String>) {
        self.events.push(event.into());
    }

    /// Copy counters out of a finished meter.
    pub fn absorb_meter(&mut self, meter: &BudgetMeter) {
        self.iterations = meter.iterations();
        self.work = meter.work();
        self.elapsed = meter.elapsed();
    }

    /// Fold another run's diagnostics into this one, for fan-out solvers
    /// that meter each parallel worker separately and report one merged
    /// record.
    ///
    /// Counters add; `elapsed` takes the maximum (workers run
    /// concurrently, so the slowest one is the wall time); events append
    /// in call order and each worker's residual trail is concatenated
    /// (the merged `residual_stride` becomes the coarsest of the two —
    /// the trail is a convergence sketch, not an aligned time series).
    /// Merging workers in a fixed order keeps the result deterministic.
    pub fn merge(&mut self, other: &Diagnostics) {
        self.iterations += other.iterations;
        self.work += other.work;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.restarts += other.restarts;
        self.residual_stride = self.residual_stride.max(other.residual_stride);
        for &r in &other.residuals {
            self.push_residual(r);
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Last recorded residual, if any.
    pub fn last_residual(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Best (smallest) recorded residual, ignoring non-finite samples.
    pub fn best_residual(&self) -> Option<f64> {
        self.residuals
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn residual_trail_thins_but_keeps_endpoints() {
        let mut d = Diagnostics::new();
        for i in 0..(MAX_RESIDUALS * 4) {
            d.push_residual(i as f64);
        }
        assert!(d.residuals.len() <= MAX_RESIDUALS + 1);
        assert!(d.residual_stride >= 4);
        assert_eq!(d.residuals[0], 0.0);
        assert_eq!(d.last_residual(), Some((MAX_RESIDUALS * 4 - 1) as f64));
    }

    #[test]
    fn best_residual_ignores_nans() {
        let mut d = Diagnostics::new();
        d.push_residual(3.0);
        d.push_residual(f64::NAN);
        d.push_residual(1.5);
        assert_eq!(d.best_residual(), Some(1.5));
    }

    #[test]
    fn merge_adds_counters_and_takes_max_elapsed() {
        let mut a = Diagnostics::new();
        a.iterations = 3;
        a.work = 10;
        a.elapsed = Duration::from_millis(5);
        a.push_residual(0.5);
        a.note("worker 0 done");
        let mut b = Diagnostics::new();
        b.iterations = 4;
        b.work = 7;
        b.restarts = 1;
        b.elapsed = Duration::from_millis(9);
        b.push_residual(0.25);
        b.note("worker 1 done");
        a.merge(&b);
        assert_eq!(a.iterations, 7);
        assert_eq!(a.work, 17);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.elapsed, Duration::from_millis(9));
        assert_eq!(a.residuals, vec![0.5, 0.25]);
        assert_eq!(a.events, vec!["worker 0 done", "worker 1 done"]);
    }

    #[test]
    fn events_accumulate() {
        let mut d = Diagnostics::new();
        d.note("restarted");
        d.note(format!("attempt {}", 2));
        assert_eq!(d.events.len(), 2);
    }
}
