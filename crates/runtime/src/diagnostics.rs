//! Structured per-run diagnostics: residual trail, work counters,
//! wall time, and events.

use crate::budget::BudgetMeter;
use std::time::Duration;

/// Hard cap on stored residuals; beyond it the trail is thinned by
/// dropping every other stored sample, so memory stays bounded on
/// million-iteration runs while early and late behavior both survive.
const MAX_RESIDUALS: usize = 4096;

/// What a solver run did, regardless of how it ended.
///
/// Every [`crate::SolverOutcome`] carries one of these, so callers can
/// always answer "how hard did it try, and what did convergence look
/// like" — the observability half of treating truncated runs as
/// first-class answers.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Residual trail (possibly thinned; see [`Diagnostics::push_residual`]).
    pub residuals: Vec<f64>,
    /// Stride between stored residuals (1 = every iteration recorded).
    pub residual_stride: usize,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Solver-defined work units consumed (matvecs, pushes, arc scans).
    pub work: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Restarts / escalations performed by a [`crate::RetryPolicy`].
    pub restarts: usize,
    /// Human-readable event trail ("restarted with fresh seed", …).
    pub events: Vec<String>,
}

impl Diagnostics {
    /// Fresh, empty diagnostics.
    pub fn new() -> Self {
        Self {
            residual_stride: 1,
            ..Self::default()
        }
    }

    /// Record one residual sample, thinning the trail if it has grown
    /// past the cap.
    pub fn push_residual(&mut self, r: f64) {
        if self.residuals.len() >= MAX_RESIDUALS {
            let mut keep = 0;
            for i in (0..self.residuals.len()).step_by(2) {
                self.residuals[keep] = self.residuals[i];
                keep += 1;
            }
            self.residuals.truncate(keep);
            self.residual_stride = self.residual_stride.max(1) * 2;
        }
        self.residuals.push(r);
    }

    /// Record a notable event.
    pub fn note(&mut self, event: impl Into<String>) {
        self.events.push(event.into());
    }

    /// Copy counters out of a finished meter.
    pub fn absorb_meter(&mut self, meter: &BudgetMeter) {
        self.iterations = meter.iterations();
        self.work = meter.work();
        self.elapsed = meter.elapsed();
    }

    /// Last recorded residual, if any.
    pub fn last_residual(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Best (smallest) recorded residual, ignoring non-finite samples.
    pub fn best_residual(&self) -> Option<f64> {
        self.residuals
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn residual_trail_thins_but_keeps_endpoints() {
        let mut d = Diagnostics::new();
        for i in 0..(MAX_RESIDUALS * 4) {
            d.push_residual(i as f64);
        }
        assert!(d.residuals.len() <= MAX_RESIDUALS + 1);
        assert!(d.residual_stride >= 4);
        assert_eq!(d.residuals[0], 0.0);
        assert_eq!(d.last_residual(), Some((MAX_RESIDUALS * 4 - 1) as f64));
    }

    #[test]
    fn best_residual_ignores_nans() {
        let mut d = Diagnostics::new();
        d.push_residual(3.0);
        d.push_residual(f64::NAN);
        d.push_residual(1.5);
        assert_eq!(d.best_residual(), Some(1.5));
    }

    #[test]
    fn events_accumulate() {
        let mut d = Diagnostics::new();
        d.note("restarted");
        d.note(format!("attempt {}", 2));
        assert_eq!(d.events.len(), 2);
    }
}
