//! Divergence, contamination, and stagnation detection for iterative
//! solver loops.

use crate::outcome::DivergenceCause;

/// Tuning for a [`ConvergenceGuard`].
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// A residual larger than `divergence_factor × best-so-far` is
    /// treated as divergence (the iteration has blown past anything it
    /// previously achieved) — but only once it also exceeds the *first*
    /// observed residual. Without that scale anchor, a solver that has
    /// converged to machine precision would be flagged for femto-scale
    /// floating-point noise (e.g. 1e-10 after a best of 1e-16).
    pub divergence_factor: f64,
    /// Number of iterations over which the residual must improve by at
    /// least [`GuardConfig::stagnation_drop`] (relative) before the run
    /// is declared stagnant. `usize::MAX` disables the check.
    pub stagnation_window: usize,
    /// Required relative residual drop per window: the residual must
    /// fall below `(1 − stagnation_drop) ×` its value one window ago.
    pub stagnation_drop: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            divergence_factor: 1e6,
            stagnation_window: 128,
            stagnation_drop: 1e-4,
        }
    }
}

impl GuardConfig {
    /// A guard that only detects NaN/Inf contamination and blow-up,
    /// never stagnation — for solvers whose residuals legitimately
    /// plateau (e.g. pure early-stopping runs with `tol = 0`).
    pub fn contamination_only() -> Self {
        Self {
            stagnation_window: usize::MAX,
            ..Self::default()
        }
    }
}

/// What the guard concluded from the latest residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Keep iterating.
    Proceed,
    /// The run should stop with [`crate::SolverOutcome::Diverged`].
    Halt(DivergenceCause),
}

/// Watches a residual sequence for the three ways iterations go wrong:
/// non-finite contamination, blow-up past the best achieved value, and
/// stagnation (no meaningful progress over a window).
///
/// The guard also remembers the index of the best residual seen, so
/// solvers can report *which* iterate to return as `best_so_far`.
#[derive(Debug, Clone)]
pub struct ConvergenceGuard {
    cfg: GuardConfig,
    observed: usize,
    first: f64,
    best: f64,
    best_at: usize,
    window: Vec<f64>,
}

impl ConvergenceGuard {
    /// New guard with the given tuning.
    pub fn new(cfg: GuardConfig) -> Self {
        let window_len = if cfg.stagnation_window == usize::MAX {
            0
        } else {
            cfg.stagnation_window
        };
        Self {
            cfg,
            observed: 0,
            first: f64::INFINITY,
            best: f64::INFINITY,
            best_at: 0,
            window: Vec::with_capacity(window_len),
        }
    }

    /// Feed the residual of the iteration that just completed.
    pub fn observe(&mut self, residual: f64) -> GuardVerdict {
        let at_iter = self.observed;
        self.observed += 1;

        if !residual.is_finite() {
            return GuardVerdict::Halt(DivergenceCause::NonFiniteResidual { at_iter });
        }
        if !self.first.is_finite() {
            self.first = residual;
        }
        if residual < self.best {
            self.best = residual;
            self.best_at = at_iter;
        } else if self.best.is_finite()
            && residual > self.cfg.divergence_factor * self.best.max(f64::MIN_POSITIVE)
            && residual > self.first
        {
            return GuardVerdict::Halt(DivergenceCause::ResidualBlowup {
                at_iter,
                residual,
                best: self.best,
            });
        }

        if self.cfg.stagnation_window != usize::MAX {
            if self.window.len() == self.cfg.stagnation_window {
                let then = self.window[0];
                if residual > (1.0 - self.cfg.stagnation_drop) * then {
                    return GuardVerdict::Halt(DivergenceCause::Stagnation {
                        at_iter,
                        window: self.cfg.stagnation_window,
                    });
                }
                self.window.remove(0);
            }
            self.window.push(residual);
        }
        GuardVerdict::Proceed
    }

    /// Verify a whole iterate for contamination (cheap linear scan;
    /// call at checkpoints, not every inner op).
    pub fn check_finite(values: &[f64], at_iter: usize) -> GuardVerdict {
        if values.iter().all(|v| v.is_finite()) {
            GuardVerdict::Proceed
        } else {
            GuardVerdict::Halt(DivergenceCause::NonFiniteIterate { at_iter })
        }
    }

    /// Best residual seen so far (`+∞` before any finite observation).
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Iteration index (0-based) at which the best residual occurred.
    pub fn best_at(&self) -> usize {
        self.best_at
    }

    /// Residuals observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }
}

impl Default for ConvergenceGuard {
    fn default() -> Self {
        Self::new(GuardConfig::default())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn clean_decay_proceeds() {
        let mut g = ConvergenceGuard::default();
        let mut r = 1.0;
        for _ in 0..500 {
            assert_eq!(g.observe(r), GuardVerdict::Proceed);
            r *= 0.9;
        }
        assert!(g.best() < 1e-20);
    }

    #[test]
    fn nan_is_flagged_immediately() {
        let mut g = ConvergenceGuard::default();
        assert_eq!(g.observe(0.5), GuardVerdict::Proceed);
        match g.observe(f64::NAN) {
            GuardVerdict::Halt(DivergenceCause::NonFiniteResidual { at_iter }) => {
                assert_eq!(at_iter, 1)
            }
            v => panic!("wrong verdict {v:?}"),
        }
    }

    #[test]
    fn blowup_past_best_is_divergence() {
        let mut g = ConvergenceGuard::new(GuardConfig {
            divergence_factor: 100.0,
            ..GuardConfig::contamination_only()
        });
        assert_eq!(g.observe(1e-3), GuardVerdict::Proceed);
        assert_eq!(g.observe(1e-2), GuardVerdict::Proceed);
        match g.observe(1.0) {
            GuardVerdict::Halt(DivergenceCause::ResidualBlowup { best, .. }) => {
                assert_eq!(best, 1e-3)
            }
            v => panic!("wrong verdict {v:?}"),
        }
    }

    #[test]
    fn machine_precision_noise_after_convergence_is_not_blowup() {
        let mut g = ConvergenceGuard::new(GuardConfig::contamination_only());
        assert_eq!(g.observe(0.8), GuardVerdict::Proceed);
        assert_eq!(g.observe(1e-16), GuardVerdict::Proceed);
        // A million times the best, but far below where the run started:
        // floating-point noise around a converged iterate, not blow-up.
        assert_eq!(g.observe(4e-10), GuardVerdict::Proceed);
        // Climbing past the first residual is the real thing.
        assert!(matches!(
            g.observe(2.0),
            GuardVerdict::Halt(DivergenceCause::ResidualBlowup { .. })
        ));
    }

    #[test]
    fn plateau_is_stagnation() {
        let mut g = ConvergenceGuard::new(GuardConfig {
            stagnation_window: 10,
            stagnation_drop: 1e-3,
            ..GuardConfig::default()
        });
        let mut verdict = GuardVerdict::Proceed;
        for _ in 0..100 {
            verdict = g.observe(0.5);
            if verdict != GuardVerdict::Proceed {
                break;
            }
        }
        assert!(
            matches!(
                verdict,
                GuardVerdict::Halt(DivergenceCause::Stagnation { window: 10, .. })
            ),
            "got {verdict:?}"
        );
    }

    #[test]
    fn contamination_only_never_stagnates() {
        let mut g = ConvergenceGuard::new(GuardConfig::contamination_only());
        for _ in 0..10_000 {
            assert_eq!(g.observe(0.5), GuardVerdict::Proceed);
        }
    }

    #[test]
    fn check_finite_catches_poisoned_iterates() {
        assert_eq!(
            ConvergenceGuard::check_finite(&[1.0, 2.0], 3),
            GuardVerdict::Proceed
        );
        assert!(matches!(
            ConvergenceGuard::check_finite(&[1.0, f64::INFINITY], 3),
            GuardVerdict::Halt(DivergenceCause::NonFiniteIterate { at_iter: 3 })
        ));
    }

    #[test]
    fn best_at_tracks_minimum() {
        let mut g = ConvergenceGuard::new(GuardConfig::contamination_only());
        for r in [5.0, 2.0, 3.0, 1.0, 4.0] {
            let _ = g.observe(r);
        }
        assert_eq!(g.best(), 1.0);
        assert_eq!(g.best_at(), 3);
    }
}
