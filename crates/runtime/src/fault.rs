//! Deterministic fault injection: value corruption streams for operator
//! wrappers and graph-level corruption for edge lists.
//!
//! Everything here is seeded and reproducible — a failing fault test
//! can be replayed exactly. The numeric corruption kinds mirror the
//! ways large-scale pipelines actually go wrong: NaN poisoning from
//! upstream bad data, sign flips from bit corruption or races,
//! adversarial rounding from mixed-precision hardware, and latency
//! spikes from slow storage tiers.

use std::time::Duration;

/// SplitMix64: tiny, seedable, dependency-free PRNG for fault decisions.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// What faults to inject, and how often.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Per-entry probability of replacing a value with NaN.
    pub nan_rate: f64,
    /// Per-entry probability of flipping a value's sign.
    pub sign_flip_rate: f64,
    /// When set, every entry is adversarially rounded to a multiple of
    /// this quantum (simulating catastrophic precision loss).
    pub rounding_quantum: Option<f64>,
    /// Artificial delay added to each operator application.
    pub latency: Option<Duration>,
    /// Applications that pass through clean before faults start (lets a
    /// solver build up state worth poisoning).
    pub clean_applies: u64,
    /// PRNG seed; same seed → same fault pattern.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            nan_rate: 0.0,
            sign_flip_rate: 0.0,
            rounding_quantum: None,
            latency: None,
            clean_applies: 0,
            seed: 0x5eed,
        }
    }
}

impl FaultConfig {
    /// NaN poisoning at `rate` per entry.
    pub fn nans(rate: f64) -> Self {
        Self {
            nan_rate: rate,
            ..Self::default()
        }
    }

    /// Sign flips at `rate` per entry.
    pub fn sign_flips(rate: f64) -> Self {
        Self {
            sign_flip_rate: rate,
            ..Self::default()
        }
    }

    /// Adversarial rounding to multiples of `quantum`.
    pub fn rounding(quantum: f64) -> Self {
        Self {
            rounding_quantum: Some(quantum),
            ..Self::default()
        }
    }

    /// Pure latency injection (for deadline tests).
    pub fn latency(delay: Duration) -> Self {
        Self {
            latency: Some(delay),
            ..Self::default()
        }
    }

    /// Builder: change the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: let the first `n` applications through unfaulted.
    pub fn after_clean_applies(mut self, n: u64) -> Self {
        self.clean_applies = n;
        self
    }

    /// Start a stream of fault decisions for one run.
    pub fn stream(&self) -> FaultStream {
        FaultStream {
            cfg: *self,
            rng: SplitMix64::new(self.seed),
            applies: 0,
        }
    }
}

/// Stateful fault decisions for a sequence of operator applications.
pub struct FaultStream {
    cfg: FaultConfig,
    rng: SplitMix64,
    applies: u64,
}

impl FaultStream {
    /// Mark the start of one operator application: sleeps if latency
    /// injection is on, and advances the clean-apply countdown.
    pub fn begin_apply(&mut self) {
        self.applies += 1;
        if let Some(delay) = self.cfg.latency {
            std::thread::sleep(delay);
        }
    }

    /// Whether faults are active for the current application.
    fn active(&self) -> bool {
        self.applies > self.cfg.clean_applies
    }

    /// Corrupt a whole output vector in place according to the config.
    /// Returns the number of entries actually corrupted, so harnesses
    /// can surface fault-injection events in diagnostics traces.
    pub fn corrupt_slice(&mut self, values: &mut [f64]) -> u64 {
        if !self.active() {
            return 0;
        }
        let mut hit = 0u64;
        if let Some(q) = self.cfg.rounding_quantum {
            for v in values.iter_mut() {
                // Round *away* from the true value when possible: the
                // adversarial direction.
                let down = (*v / q).floor() * q;
                let up = (*v / q).ceil() * q;
                let rounded = if (*v - down) >= (up - *v) { down } else { up };
                if rounded != *v {
                    hit += 1;
                }
                *v = rounded;
            }
        }
        if self.cfg.sign_flip_rate > 0.0 {
            for v in values.iter_mut() {
                if self.rng.unit_f64() < self.cfg.sign_flip_rate {
                    *v = -*v;
                    hit += 1;
                }
            }
        }
        if self.cfg.nan_rate > 0.0 {
            for v in values.iter_mut() {
                if self.rng.unit_f64() < self.cfg.nan_rate {
                    *v = f64::NAN;
                    hit += 1;
                }
            }
        }
        hit
    }

    /// Applications begun so far.
    pub fn applies(&self) -> u64 {
        self.applies
    }
}

/// Graph-level corruption for adversarial-input tests: operates on raw
/// edge triplets so it stays independent of any graph crate.
pub mod corrupt {
    use super::SplitMix64;

    /// Retarget roughly `rate` of all arcs to out-of-range node ids
    /// (`>= n`), producing dangling references a robust reader must
    /// reject. Returns the number of edges corrupted.
    pub fn dangling_arcs(edges: &mut [(u32, u32, f64)], n: u32, rate: f64, seed: u64) -> usize {
        let mut rng = SplitMix64::new(seed);
        let mut hit = 0;
        for e in edges.iter_mut() {
            if rng.unit_f64() < rate {
                let bogus = n + 1 + rng.below(16) as u32;
                if rng.next_u64() & 1 == 0 {
                    e.0 = bogus;
                } else {
                    e.1 = bogus;
                }
                hit += 1;
            }
        }
        hit
    }

    /// Zero out roughly `rate` of all edge weights. Returns the number
    /// of edges corrupted.
    pub fn zero_weights(edges: &mut [(u32, u32, f64)], rate: f64, seed: u64) -> usize {
        let mut rng = SplitMix64::new(seed);
        let mut hit = 0;
        for e in edges.iter_mut() {
            if rng.unit_f64() < rate {
                e.2 = 0.0;
                hit += 1;
            }
        }
        hit
    }

    /// Negate roughly `rate` of all edge weights (illegal for
    /// conductance/flow computations). Returns the number corrupted.
    pub fn negative_weights(edges: &mut [(u32, u32, f64)], rate: f64, seed: u64) -> usize {
        let mut rng = SplitMix64::new(seed);
        let mut hit = 0;
        for e in edges.iter_mut() {
            if rng.unit_f64() < rate {
                e.2 = -e.2.abs().max(1.0);
                hit += 1;
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultConfig::nans(0.3).with_seed(9).stream();
        let mut b = FaultConfig::nans(0.3).with_seed(9).stream();
        let mut va = vec![1.0; 64];
        let mut vb = vec![1.0; 64];
        a.begin_apply();
        b.begin_apply();
        a.corrupt_slice(&mut va);
        b.corrupt_slice(&mut vb);
        assert_eq!(
            va.iter().map(|v| v.is_nan()).collect::<Vec<_>>(),
            vb.iter().map(|v| v.is_nan()).collect::<Vec<_>>()
        );
        assert!(va.iter().any(|v| v.is_nan()));
        assert!(va.iter().any(|v| !v.is_nan()));
    }

    #[test]
    fn clean_applies_pass_through() {
        let mut s = FaultConfig::nans(1.0).after_clean_applies(2).stream();
        let mut v = vec![1.0; 8];
        s.begin_apply();
        s.corrupt_slice(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        s.begin_apply();
        s.corrupt_slice(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        s.begin_apply();
        s.corrupt_slice(&mut v);
        assert!(v.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn sign_flips_preserve_magnitude() {
        let mut s = FaultConfig::sign_flips(0.5).stream();
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let before: f64 = v.iter().map(|x| x.abs()).sum();
        s.begin_apply();
        s.corrupt_slice(&mut v);
        let after: f64 = v.iter().map(|x| x.abs()).sum();
        assert!((before - after).abs() < 1e-12);
        assert!(v.iter().any(|&x| x < 0.0));
    }

    #[test]
    fn rounding_quantizes() {
        let mut s = FaultConfig::rounding(0.5).stream();
        let mut v = vec![0.3, 1.4, 2.74, -0.9];
        s.begin_apply();
        s.corrupt_slice(&mut v);
        for x in &v {
            let q = x / 0.5;
            assert!((q - q.round()).abs() < 1e-9, "not quantized: {x}");
        }
    }

    #[test]
    fn latency_injection_delays() {
        let mut s = FaultConfig::latency(Duration::from_millis(5)).stream();
        let t0 = std::time::Instant::now();
        s.begin_apply();
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn graph_corruption_is_seeded_and_counted() {
        let base: Vec<(u32, u32, f64)> = (0..50).map(|i| (i, (i + 1) % 50, 1.0)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let ha = corrupt::dangling_arcs(&mut a, 50, 0.3, 7);
        let hb = corrupt::dangling_arcs(&mut b, 50, 0.3, 7);
        assert_eq!(a, b);
        assert_eq!(ha, hb);
        assert!(ha > 0);
        assert!(a.iter().any(|&(u, v, _)| u >= 50 || v >= 50));

        let mut c = base.clone();
        let hz = corrupt::zero_weights(&mut c, 0.2, 3);
        assert_eq!(c.iter().filter(|e| e.2 == 0.0).count(), hz);

        let mut d = base;
        let hn = corrupt::negative_weights(&mut d, 0.2, 3);
        assert_eq!(d.iter().filter(|e| e.2 < 0.0).count(), hn);
        assert!(hn > 0);
    }
}
