//! Iteration / work / wall-clock budgets and their cheap in-loop meter.

use std::time::{Duration, Instant};

/// A resource ceiling for one solver run.
///
/// Three independent axes, each optional:
///
/// * **iterations** — outer-loop count (the paper's early-stopping
///   regularization knob);
/// * **work units** — solver-defined atomic operations (matvecs for
///   Krylov methods, pushes for local diffusions, arc scans for flow),
///   so heterogeneous solvers can share one budget meaningfully;
/// * **deadline** — wall-clock bound for latency-sensitive callers.
///
/// `Budget` is `Copy`-cheap to pass around; call [`Budget::start`] to
/// begin metering a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum outer iterations (restarts count extra attempts
    /// separately; see [`crate::RetryPolicy`]).
    pub max_iters: usize,
    /// Maximum solver-defined work units.
    pub max_work: u64,
    /// Optional wall-clock deadline for the whole run.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No ceilings at all: solvers run to their own convergence logic.
    pub fn unlimited() -> Self {
        Self {
            max_iters: usize::MAX,
            max_work: u64::MAX,
            deadline: None,
        }
    }

    /// Ceiling on outer iterations only.
    pub fn iterations(max_iters: usize) -> Self {
        Self {
            max_iters,
            ..Self::unlimited()
        }
    }

    /// Ceiling on work units only.
    pub fn work(max_work: u64) -> Self {
        Self {
            max_work,
            ..Self::unlimited()
        }
    }

    /// Wall-clock deadline only.
    pub fn deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::unlimited()
        }
    }

    /// Builder: replace the iteration ceiling.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder: replace the work ceiling.
    pub fn with_max_work(mut self, max_work: u64) -> Self {
        self.max_work = max_work;
        self
    }

    /// Builder: replace the deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The empty budget: zero iterations, zero work, no deadline. A
    /// meter started on it reports [`Exhaustion::Iterations`] on its
    /// very first check — the well-defined "nothing left" value that
    /// over-splitting and re-splitting an exhausted run produce.
    pub fn zero() -> Self {
        Self {
            max_iters: 0,
            max_work: 0,
            deadline: None,
        }
    }

    /// Is this a budget no solver can make progress under (either
    /// finite axis already at zero)?
    pub fn is_zero(&self) -> bool {
        self.max_iters == 0 || self.max_work == 0
    }

    /// Split this budget into `k` fair shares for parallel workers.
    ///
    /// Iteration and work ceilings are divided so the shares sum to at
    /// most the original ceiling (`floor(total/k)` each, with the
    /// remainder spread one unit at a time over the *first* shares —
    /// a pure function of `(total, k)`, so the split is deterministic).
    /// Unlimited axes stay unlimited, and the wall-clock deadline is
    /// copied verbatim: workers run concurrently, so they share the
    /// calendar, not a quota.
    ///
    /// Every edge case is well-defined (the serving layer splits live
    /// capacity and cannot afford surprises):
    ///
    /// * `k == 0` returns an empty vector — no workers, no shares;
    /// * `k` larger than a finite axis hands the first `total` shares
    ///   one unit each and the rest [`Budget::zero`]-like zero shares,
    ///   which exhaust immediately instead of panicking mid-compute;
    /// * splitting an already-[`Budget::zero`] budget yields `k` zero
    ///   shares.
    pub fn split_across(&self, k: usize) -> Vec<Budget> {
        if k == 0 {
            return Vec::new();
        }
        let share = |total: u64, i: u64| -> u64 {
            if total == u64::MAX {
                u64::MAX
            } else {
                total / k as u64 + u64::from(i < total % k as u64)
            }
        };
        (0..k as u64)
            .map(|i| Budget {
                max_iters: if self.max_iters == usize::MAX {
                    usize::MAX
                } else {
                    share(self.max_iters as u64, i) as usize
                },
                max_work: share(self.max_work, i),
                deadline: self.deadline,
            })
            .collect()
    }

    /// Begin metering a run against this budget.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            budget: *self,
            iters: 0,
            work: 0,
            started: Instant::now(),
            exhausted: None,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Which budget axis ran out first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhaustion {
    /// The iteration ceiling was reached.
    Iterations,
    /// The work-unit ceiling was reached.
    Work,
    /// The wall-clock deadline passed.
    Deadline,
}

impl Exhaustion {
    /// Stable snake_case axis name, used as the `axis` field of
    /// [`acir_obs::EventKind::BudgetExhausted`] trace events.
    pub fn axis_name(&self) -> &'static str {
        match self {
            Exhaustion::Iterations => "iterations",
            Exhaustion::Work => "work",
            Exhaustion::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Iterations => write!(f, "iteration budget exhausted"),
            Exhaustion::Work => write!(f, "work budget exhausted"),
            Exhaustion::Deadline => write!(f, "wall-clock deadline exceeded"),
        }
    }
}

/// Live accounting for one run against a [`Budget`].
///
/// Designed for tight loops: integer compares on every call, and the
/// deadline clock is consulted only when a deadline is actually set.
/// Once an axis is exhausted the meter latches: further checks keep
/// reporting the same [`Exhaustion`], so solvers can exit cleanly from
/// any depth.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: Budget,
    iters: usize,
    work: u64,
    started: Instant,
    exhausted: Option<Exhaustion>,
}

impl BudgetMeter {
    /// Account for one outer iteration; returns the exhaustion if any
    /// axis is now out of budget.
    #[inline]
    pub fn tick_iter(&mut self) -> Option<Exhaustion> {
        self.iters += 1;
        self.check()
    }

    /// Account for `units` work units; returns the exhaustion if any
    /// axis is now out of budget.
    #[inline]
    pub fn add_work(&mut self, units: u64) -> Option<Exhaustion> {
        self.work = self.work.saturating_add(units);
        self.check()
    }

    /// Re-check all axes without consuming anything.
    #[inline]
    pub fn check(&mut self) -> Option<Exhaustion> {
        if self.exhausted.is_some() {
            return self.exhausted;
        }
        if self.iters >= self.budget.max_iters {
            self.exhausted = Some(Exhaustion::Iterations);
        } else if self.work >= self.budget.max_work {
            self.exhausted = Some(Exhaustion::Work);
        } else if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                self.exhausted = Some(Exhaustion::Deadline);
            }
        }
        self.exhausted
    }

    /// Iterations consumed so far.
    pub fn iterations(&self) -> usize {
        self.iters
    }

    /// Work units consumed so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Wall time since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The budget this meter enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Whether any axis has latched exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.is_some()
    }

    /// Wall-clock time left before the deadline; `None` when no
    /// deadline is set, `Some(ZERO)` once it has passed. The serving
    /// layer's degradation ladder keys off this.
    pub fn remaining_duration(&self) -> Option<Duration> {
        self.budget
            .deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// The unconsumed portion of the budget, as a budget of its own:
    /// finite axes subtract saturating (an exhausted axis leaves zero),
    /// unlimited axes stay unlimited, and the deadline shrinks to the
    /// time actually left (`ZERO` once passed, so a re-split of an
    /// expired run hands out only immediately-exhausted shares).
    ///
    /// `remaining.split_across(k)` is therefore always well-defined:
    /// re-splitting a dry run yields `k` empty budgets, never a panic
    /// and never freshly minted capacity.
    pub fn remaining_budget(&self) -> Budget {
        Budget {
            max_iters: if self.budget.max_iters == usize::MAX {
                usize::MAX
            } else {
                self.budget.max_iters.saturating_sub(self.iters)
            },
            max_work: if self.budget.max_work == u64::MAX {
                u64::MAX
            } else {
                self.budget.max_work.saturating_sub(self.work)
            },
            deadline: self.remaining_duration(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut m = Budget::unlimited().start();
        for _ in 0..10_000 {
            assert_eq!(m.tick_iter(), None);
            assert_eq!(m.add_work(1_000), None);
        }
    }

    #[test]
    fn iteration_ceiling_latches() {
        let mut m = Budget::iterations(3).start();
        assert_eq!(m.tick_iter(), None);
        assert_eq!(m.tick_iter(), None);
        assert_eq!(m.tick_iter(), Some(Exhaustion::Iterations));
        // Latched: later work checks report the same cause.
        assert_eq!(m.add_work(1), Some(Exhaustion::Iterations));
        assert!(m.is_exhausted());
    }

    #[test]
    fn work_ceiling_counts_units() {
        let mut m = Budget::work(100).start();
        assert_eq!(m.add_work(60), None);
        assert_eq!(m.add_work(60), Some(Exhaustion::Work));
        assert_eq!(m.work(), 120);
    }

    #[test]
    fn deadline_fires_within_tolerance() {
        let mut m = Budget::deadline(Duration::from_millis(20)).start();
        assert_eq!(m.check(), None);
        let t0 = Instant::now();
        let cause = loop {
            if let Some(c) = m.tick_iter() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(cause, Exhaustion::Deadline);
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(15),
            "fired early: {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(500),
            "fired late: {waited:?}"
        );
    }

    #[test]
    fn split_across_is_fair_and_preserves_unlimited() {
        let shares = Budget::work(10).split_across(3);
        assert_eq!(shares.len(), 3);
        assert_eq!(
            shares.iter().map(|b| b.max_work).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        assert!(shares.iter().all(|b| b.max_iters == usize::MAX));

        let it = Budget::iterations(7).split_across(2);
        assert_eq!(it[0].max_iters, 4);
        assert_eq!(it[1].max_iters, 3);

        let unl = Budget::unlimited().split_across(5);
        assert!(unl
            .iter()
            .all(|b| b.max_iters == usize::MAX && b.max_work == u64::MAX));

        let d = Budget::deadline(Duration::from_secs(9)).split_across(4);
        assert!(d.iter().all(|b| b.deadline == Some(Duration::from_secs(9))));
    }

    #[test]
    fn split_across_zero_shares_is_empty() {
        assert!(Budget::unlimited().split_across(0).is_empty());
        assert!(Budget::work(100).split_across(0).is_empty());
        assert!(Budget::zero().split_across(0).is_empty());
    }

    #[test]
    fn split_across_more_shares_than_budget_yields_zero_tails() {
        // 3 work units over 5 workers: first three get one unit, the
        // last two get well-defined zero budgets (not a panic, not a
        // debug-only wrap). A zero share exhausts on its first check.
        let shares = Budget::work(3).split_across(5);
        assert_eq!(
            shares.iter().map(|b| b.max_work).collect::<Vec<_>>(),
            vec![1, 1, 1, 0, 0]
        );
        assert!(shares[4].is_zero());
        let mut m = shares[4].start();
        assert_eq!(m.check(), Some(Exhaustion::Work));

        let it = Budget::iterations(2).split_across(4);
        assert_eq!(
            it.iter().map(|b| b.max_iters).collect::<Vec<_>>(),
            vec![1, 1, 0, 0]
        );
        let mut m = it[3].start();
        assert_eq!(m.check(), Some(Exhaustion::Iterations));
    }

    #[test]
    fn splitting_a_zero_budget_yields_zero_shares() {
        let shares = Budget::zero().split_across(3);
        assert_eq!(shares.len(), 3);
        for b in shares {
            assert!(b.is_zero());
            assert_eq!(b.start().check(), Some(Exhaustion::Iterations));
        }
    }

    #[test]
    fn remaining_budget_subtracts_and_preserves_unlimited() {
        let mut m = Budget::work(10).with_max_iters(4).start();
        m.tick_iter();
        m.add_work(6);
        let rem = m.remaining_budget();
        assert_eq!(rem.max_iters, 3);
        assert_eq!(rem.max_work, 4);
        assert_eq!(rem.deadline, None);

        // Unlimited axes stay unlimited after consumption.
        let mut m = Budget::unlimited().start();
        m.tick_iter();
        m.add_work(1 << 20);
        let rem = m.remaining_budget();
        assert_eq!(rem.max_iters, usize::MAX);
        assert_eq!(rem.max_work, u64::MAX);
    }

    #[test]
    fn resplitting_an_exhausted_run_hands_out_empty_budgets() {
        let mut m = Budget::work(5).start();
        assert_eq!(m.add_work(9), Some(Exhaustion::Work));
        let rem = m.remaining_budget();
        assert!(rem.is_zero());
        for b in rem.split_across(4) {
            assert!(b.is_zero());
            assert!(b.start().check().is_some());
        }
    }

    #[test]
    fn remaining_duration_clamps_at_zero() {
        let m = Budget::deadline(Duration::from_secs(3600)).start();
        let left = m.remaining_duration().unwrap();
        assert!(left > Duration::from_secs(3500));
        let mut m = Budget::deadline(Duration::ZERO).start();
        assert_eq!(m.remaining_duration(), Some(Duration::ZERO));
        assert_eq!(m.check(), Some(Exhaustion::Deadline));
        // The remaining budget of an expired run is itself expired.
        let rem = m.remaining_budget();
        assert_eq!(rem.deadline, Some(Duration::ZERO));
        assert_eq!(rem.start().check(), Some(Exhaustion::Deadline));
    }

    #[test]
    fn builder_combines_axes() {
        let b = Budget::unlimited()
            .with_max_iters(5)
            .with_max_work(7)
            .with_deadline(Duration::from_secs(3600));
        assert_eq!(b.max_iters, 5);
        assert_eq!(b.max_work, 7);
        let mut m = b.start();
        assert_eq!(m.add_work(7), Some(Exhaustion::Work));
    }
}
