//! Reusable kernel workspaces: epoch-stamped dense scratch that resets
//! in `O(|touched|)`, buffer freelists, and a checkout pool.
//!
//! The strongly local diffusions (§3.3) do work proportional to the
//! *output* size — `O(1/(εα))` for ACL push — yet a naive
//! implementation allocates and zeroes three dense length-`n` arrays
//! per call, so an NCP run making thousands of push calls spends most
//! of its time in the allocator and in cache-hostile `memset`s of
//! memory it never reads. This module gives every iterative kernel a
//! place to keep its scratch alive across calls:
//!
//! * [`StampedVec`] / [`StampedSet`] — dense arrays whose "clear" is an
//!   epoch bump: entry `i` is live only if `stamp[i] == epoch`, so
//!   resetting between calls costs `O(1)` and a call touching `k`
//!   entries does `O(k)` work no matter how large `n` is;
//! * [`Workspace`] — freelists of plain `Vec<f64>` / `Vec<u32>`
//!   buffers for kernels (power, CG, Chebyshev) whose scratch really is
//!   dense, so steady-state calls stop hitting the allocator;
//! * [`WorkspacePool`] — a mutex-guarded stack of per-kernel
//!   workspaces for fan-out callers (batched pushes, NCP workers):
//!   each worker checks one out, uses it, and returns it, so a pool
//!   holds at most as many workspaces as were ever live concurrently.
//!
//! Reusing a workspace must never change results: a freshly-reset
//! stamped array reads exactly like `vec![0.0; n]`, and the freelist
//! re-zeroes dense buffers before handing them out. Tests across the
//! workspace assert bit-identity between fresh and reused runs.

use std::sync::Mutex;

/// A dense `f64` array with epoch-stamped entries: logically a
/// `vec![0.0; n]` whose full clear costs `O(1)`.
///
/// Entry `i` reads as `0.0` unless it was written since the last
/// [`reset`](Self::reset). The stamp array is only rebuilt when the
/// epoch counter wraps (once per `u32::MAX` resets).
#[derive(Debug, Clone, Default)]
pub struct StampedVec {
    values: Vec<f64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl StampedVec {
    /// Empty stamped vector (resize with [`reset`](Self::reset)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Clear all entries to `0.0` and set the length to `n`.
    ///
    /// Costs `O(1)` unless the array grows or the 32-bit epoch wraps.
    pub fn reset(&mut self, n: usize) {
        if n > self.values.len() {
            self.values.resize(n, 0.0);
            self.stamps.resize(n, 0);
        } else {
            self.values.truncate(n);
            self.stamps.truncate(n);
        }
        if self.epoch == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Read entry `i` (0.0 if untouched since the last reset).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        if self.stamps[i] == self.epoch {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Whether entry `i` was written since the last reset.
    #[inline]
    pub fn is_touched(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Overwrite entry `i`. Returns `true` if this is the first write
    /// since the last reset (callers maintain their touched lists off
    /// this signal).
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) -> bool {
        let first = self.stamps[i] != self.epoch;
        self.stamps[i] = self.epoch;
        self.values[i] = v;
        first
    }

    /// Add `v` to entry `i` (treating untouched entries as `0.0`).
    /// Returns `true` on first touch.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) -> bool {
        if self.stamps[i] == self.epoch {
            self.values[i] += v;
            false
        } else {
            self.stamps[i] = self.epoch;
            self.values[i] = v;
            true
        }
    }
}

/// A set of `usize` indices with `O(1)` clear, backed by epoch stamps.
#[derive(Debug, Clone, Default)]
pub struct StampedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl StampedSet {
    /// Empty set (size it with [`reset`](Self::reset)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity (largest index + 1 the set can hold).
    #[inline]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Empty the set and size it for indices `0..n`. `O(1)` amortized.
    pub fn reset(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        } else {
            self.stamps.truncate(n);
        }
        // Epoch 0 is reserved as "never a member", so `remove` can
        // stamp entries back to 0 unconditionally.
        if self.epoch >= u32::MAX - 1 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Insert `i`; returns `true` if it was not already a member.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let fresh = self.stamps[i] != self.epoch;
        self.stamps[i] = self.epoch;
        fresh
    }

    /// Remove `i` (no-op if absent).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.stamps[i] = 0;
    }
}

/// Freelists of dense scratch buffers for kernels whose working set
/// really is `O(n)` (power, CG, Chebyshev recurrences).
///
/// `take_f64` hands out a zeroed buffer of the requested length —
/// indistinguishable from a fresh `vec![0.0; n]`, but steady-state
/// calls reuse capacity instead of allocating. Buffers are returned
/// with `put_f64` in any order.
#[derive(Debug, Default)]
pub struct Workspace {
    f64_bufs: Vec<Vec<f64>>,
    u32_bufs: Vec<Vec<u32>>,
}

impl Workspace {
    /// Fresh workspace with empty freelists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a zeroed `Vec<f64>` of length `n`.
    pub fn take_f64(&mut self, n: usize) -> Vec<f64> {
        match self.f64_bufs.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(n, 0.0);
                v
            }
            None => vec![0.0; n],
        }
    }

    /// Return a buffer from [`take_f64`](Self::take_f64) for reuse.
    pub fn put_f64(&mut self, v: Vec<f64>) {
        self.f64_bufs.push(v);
    }

    /// Check out an empty `Vec<u32>` with whatever capacity survived.
    pub fn take_u32(&mut self) -> Vec<u32> {
        self.u32_bufs.pop().map_or_else(Vec::new, |mut v| {
            v.clear();
            v
        })
    }

    /// Return a buffer from [`take_u32`](Self::take_u32) for reuse.
    pub fn put_u32(&mut self, v: Vec<u32>) {
        self.u32_bufs.push(v);
    }

    /// Number of parked `f64` buffers (diagnostics/tests).
    pub fn parked_f64(&self) -> usize {
        self.f64_bufs.len()
    }
}

/// A mutex-guarded stack of reusable per-kernel workspaces.
///
/// `with` pops a workspace (or default-constructs the first one),
/// runs the closure *outside* the lock, and pushes the workspace back;
/// concurrent callers therefore never block each other during kernel
/// execution, and the pool retains at most the peak number of
/// concurrently-live workspaces. Kernels keep module-level
/// `static` pools so repeated calls through the plain public API stop
/// allocating after warm-up.
#[derive(Debug, Default)]
pub struct WorkspacePool<W> {
    slots: Mutex<Vec<W>>,
}

impl<W: Default> WorkspacePool<W> {
    /// Empty pool (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Run `f` with a pooled workspace, returning the workspace to the
    /// pool afterwards. The pool lock is held only to pop/push.
    ///
    /// If `f` panics the workspace is dropped rather than returned, so
    /// a poisoned workspace can never leak into a later call; the pool
    /// itself recovers from lock poisoning by starting fresh.
    pub fn with<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        let mut ws = match self.slots.lock() {
            Ok(mut slots) => slots.pop().unwrap_or_default(),
            Err(poisoned) => {
                let mut slots = poisoned.into_inner();
                slots.clear();
                W::default()
            }
        };
        let out = f(&mut ws);
        if let Ok(mut slots) = self.slots.lock() {
            slots.push(ws);
        }
        out
    }

    /// Number of parked workspaces (diagnostics/tests).
    pub fn parked(&self) -> usize {
        self.slots.lock().map(|s| s.len()).unwrap_or(0)
    }

    /// Drop every parked workspace (tests use this to re-measure cold
    /// starts).
    pub fn clear(&self) {
        if let Ok(mut slots) = self.slots.lock() {
            slots.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_vec_reads_like_zeroed() {
        let mut s = StampedVec::new();
        s.reset(8);
        for i in 0..8 {
            assert_eq!(s.get(i), 0.0);
            assert!(!s.is_touched(i));
        }
        assert!(s.add(3, 1.5));
        assert!(!s.add(3, 1.0));
        assert_eq!(s.get(3), 2.5);
        assert!(s.is_touched(3));
        assert!(!s.set(3, 7.0));
        assert_eq!(s.get(3), 7.0);
        s.reset(8);
        assert_eq!(s.get(3), 0.0);
        assert!(s.set(3, 1.0), "first write after reset");
    }

    #[test]
    fn stamped_vec_resizes() {
        let mut s = StampedVec::new();
        s.reset(4);
        s.set(2, 1.0);
        s.reset(10);
        assert_eq!(s.len(), 10);
        for i in 0..10 {
            assert_eq!(s.get(i), 0.0);
        }
        s.reset(3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stamped_vec_epoch_wrap_is_safe() {
        let mut s = StampedVec::new();
        s.reset(2);
        s.set(0, 5.0);
        s.epoch = u32::MAX; // simulate 4 billion resets
        s.stamps[1] = u32::MAX; // a stale stamp that would alias epoch 1
        s.reset(2);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(1), 0.0, "wrapped epoch must not resurrect entries");
    }

    #[test]
    fn stamped_set_insert_remove() {
        let mut s = StampedSet::new();
        s.reset(5);
        assert!(!s.contains(4));
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.contains(4));
        s.remove(4);
        assert!(!s.contains(4));
        assert!(s.insert(4), "re-insert after remove is a fresh insert");
        s.reset(5);
        assert!(!s.contains(4));
    }

    #[test]
    fn stamped_set_epoch_wrap_is_safe() {
        let mut s = StampedSet::new();
        s.reset(2);
        s.epoch = u32::MAX - 1;
        s.stamps[0] = u32::MAX - 1;
        s.reset(2);
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(0));
    }

    #[test]
    fn workspace_buffers_come_back_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take_f64(4);
        a[1] = 9.0;
        let cap = a.capacity();
        ws.put_f64(a);
        let b = ws.take_f64(3);
        assert_eq!(b, vec![0.0; 3]);
        assert_eq!(b.capacity(), cap, "capacity survived the round trip");
        ws.put_f64(b);
        assert_eq!(ws.parked_f64(), 1);

        let mut u = ws.take_u32();
        u.extend([1, 2, 3]);
        ws.put_u32(u);
        assert!(ws.take_u32().is_empty());
    }

    #[test]
    fn pool_reuses_workspaces() {
        let pool: WorkspacePool<Workspace> = WorkspacePool::new();
        assert_eq!(pool.parked(), 0);
        pool.with(|ws| {
            let v = ws.take_f64(16);
            ws.put_f64(v);
        });
        assert_eq!(pool.parked(), 1);
        pool.with(|ws| assert_eq!(ws.parked_f64(), 1, "same workspace came back"));
        pool.clear();
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        static POOL: WorkspacePool<Workspace> = WorkspacePool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        POOL.with(|ws| {
                            let v = ws.take_f64(64);
                            ws.put_f64(v);
                        });
                    }
                });
            }
        });
        assert!(POOL.parked() >= 1 && POOL.parked() <= 4);
    }
}
