//! The single seam through which every cross-cutting concern reaches a
//! kernel: [`KernelCtx`].
//!
//! PRs 1–4 threaded four concerns (budgets/resilience, deterministic
//! parallelism, structured observability, workspace reuse) through the
//! iterative kernels as *additive named variants* — `power_method` /
//! `power_method_ws` / `power_method_budgeted`, `ppr_push` / `_ws` /
//! `_batch` / `_budgeted`, and so on — leaving each algorithm with two
//! to four near-duplicate loops. `KernelCtx` collapses that
//! combinatorial API: each kernel keeps **exactly one core iteration
//! loop** (marked `// CORE LOOP` in its module) parameterized by
//! `&mut KernelCtx`, and every legacy entry point becomes a thin
//! wrapper that builds the appropriate context.
//!
//! The five concerns and how they ride in the context:
//!
//! * **budget** — an optional [`BudgetMeter`]; `tick_iter` / `add_work`
//!   / `check_budget` are integer no-ops returning `None` when absent;
//! * **guard** — an optional [`ConvergenceGuard`]; `observe` /
//!   `check_iterate` return [`GuardVerdict::Proceed`] when absent;
//! * **observability** — an optional [`Diagnostics`]; `push_residual` /
//!   `note_with` vanish when absent (`note_with` takes a closure so the
//!   message is never even formatted on the plain path);
//! * **workspace** — an optional override for the checkout pool a
//!   pool-backed wrapper should draw generic dense scratch from
//!   ([`KernelCtx::scratch_pool_or`]); kernel-*typed* workspaces
//!   (push / heat-kernel / sweep scratch) stay explicit `&mut W`
//!   parameters of the core functions, because their types differ per
//!   kernel — the context carries the *source*, not the buffers;
//! * **parallelism / faults** — an optional [`ExecPool`] override for
//!   fan-out kernels and an optional [`FaultStream`] hook for chaos
//!   tests.
//!
//! `KernelCtx::default()` is deliberately cheap: every field is `None`,
//! construction allocates nothing, and each hook compiles down to a
//! branch on a discriminant — so the steady-state allocation-free
//! guarantees of the `_ws` entry points (enforced by the `alloc_gate`
//! test) survive the unification, and the plain entry points pay no
//! observable overhead for concerns they never asked for.

use crate::budget::{Budget, BudgetMeter, Exhaustion};
use crate::diagnostics::Diagnostics;
use crate::fault::FaultStream;
use crate::guard::{ConvergenceGuard, GuardConfig, GuardVerdict};
use crate::workspace::{Workspace, WorkspacePool};
use acir_exec::{ExecPool, SpmvLayout, SpmvLayoutScope};

/// Per-invocation bundle of every cross-cutting concern a kernel core
/// loop may consult. See the [module docs](self) for the design.
///
/// Construction idioms:
///
/// ```
/// use acir_runtime::{Budget, GuardConfig, KernelCtx};
///
/// // Plain call: every concern a no-op, nothing allocated.
/// let plain = KernelCtx::default();
/// assert!(!plain.is_metered() && !plain.is_traced());
///
/// // Budgeted call: meter + open kernel span + divergence guard.
/// let budgeted = KernelCtx::budgeted("linalg.power", &Budget::iterations(50))
///     .with_guard(GuardConfig::contamination_only());
/// assert!(budgeted.is_metered() && budgeted.is_traced() && budgeted.is_guarded());
/// ```
#[derive(Default)]
pub struct KernelCtx {
    meter: Option<BudgetMeter>,
    guard: Option<ConvergenceGuard>,
    diags: Option<Diagnostics>,
    scratch: Option<&'static WorkspacePool<Workspace>>,
    pool: Option<ExecPool>,
    faults: Option<FaultStream>,
    spmv: Option<SpmvLayout>,
}

impl KernelCtx {
    /// Every concern disabled — the context for plain entry points.
    /// Allocation-free; all hooks are no-ops.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observability only: opens the kernel's root span (allocates) but
    /// enforces no budget and runs no guard. For traced-but-unlimited
    /// drivers (e.g. figure pipelines that want spans without ceilings).
    pub fn traced(kernel: &'static str) -> Self {
        Self {
            diags: Some(Diagnostics::for_kernel(kernel)),
            ..Self::default()
        }
    }

    /// The standard resilient configuration: a [`BudgetMeter`] started
    /// against `budget` plus [`Diagnostics`] with the kernel's root
    /// span open. Add a guard with [`Self::with_guard`] if the kernel
    /// monitors residuals.
    pub fn budgeted(kernel: &'static str, budget: &Budget) -> Self {
        Self {
            meter: Some(budget.start()),
            diags: Some(Diagnostics::for_kernel(kernel)),
            ..Self::default()
        }
    }

    /// Builder: attach a [`ConvergenceGuard`] with the given config.
    pub fn with_guard(mut self, cfg: GuardConfig) -> Self {
        self.guard = Some(ConvergenceGuard::new(cfg));
        self
    }

    /// Builder: override the checkout pool for generic dense scratch.
    /// Wrappers that currently use a module-static pool consult
    /// [`Self::scratch_pool_or`] so callers can redirect scratch to a
    /// pool they own (e.g. per-NUMA-node pools later).
    pub fn with_scratch_pool(mut self, pool: &'static WorkspacePool<Workspace>) -> Self {
        self.scratch = Some(pool);
        self
    }

    /// Builder: pin the execution pool a fan-out kernel should use
    /// instead of reading `ACIR_THREADS` from the environment.
    pub fn with_exec_pool(mut self, pool: ExecPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builder: attach a deterministic fault stream for chaos tests.
    /// Kernels that support injection drain it via [`Self::faults_mut`].
    pub fn with_faults(mut self, faults: FaultStream) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder: request a sparse-storage layout ([`SpmvLayout`]) for
    /// every CSR product the kernel performs. Kernel entry points
    /// install it with [`Self::spmv_scope`]; all layouts are
    /// bit-identical, so this is a pure speed knob — like
    /// [`Self::with_exec_pool`], it never changes results.
    pub fn with_spmv_layout(mut self, layout: SpmvLayout) -> Self {
        self.spmv = Some(layout);
        self
    }

    // ---- queries -------------------------------------------------------

    /// Is a budget being enforced?
    #[inline]
    pub fn is_metered(&self) -> bool {
        self.meter.is_some()
    }

    /// Is a divergence guard active?
    #[inline]
    pub fn is_guarded(&self) -> bool {
        self.guard.is_some()
    }

    /// Are diagnostics being recorded?
    #[inline]
    pub fn is_traced(&self) -> bool {
        self.diags.is_some()
    }

    // ---- budget hooks --------------------------------------------------

    /// Account one outer iteration (no-op without a meter).
    #[inline]
    pub fn tick_iter(&mut self) -> Option<Exhaustion> {
        self.meter.as_mut().and_then(BudgetMeter::tick_iter)
    }

    /// Account `units` work units (no-op without a meter).
    #[inline]
    pub fn add_work(&mut self, units: u64) -> Option<Exhaustion> {
        self.meter.as_mut().and_then(|m| m.add_work(units))
    }

    /// Re-check every budget axis without consuming anything.
    #[inline]
    pub fn check_budget(&mut self) -> Option<Exhaustion> {
        self.meter.as_mut().and_then(BudgetMeter::check)
    }

    /// Read-only view of the meter, for kernels that report progress
    /// ratios ("explored {done} of {planned}") in their notes.
    #[inline]
    pub fn meter(&self) -> Option<&BudgetMeter> {
        self.meter.as_ref()
    }

    /// Wall-clock left before the deadline: `None` when no meter or no
    /// deadline is attached (run forever), `Some(ZERO)` once expired.
    /// Degradation ladders key off this to pick a rung that can still
    /// finish in time.
    #[inline]
    pub fn remaining_time(&self) -> Option<std::time::Duration> {
        self.meter
            .as_ref()
            .and_then(BudgetMeter::remaining_duration)
    }

    /// What is left of the budget right now, as a [`Budget`] that can
    /// be handed to a cheaper fallback kernel. Unmetered contexts
    /// report an unlimited budget.
    #[inline]
    pub fn remaining_budget(&self) -> Budget {
        self.meter
            .as_ref()
            .map_or_else(Budget::unlimited, BudgetMeter::remaining_budget)
    }

    // ---- guard hooks ---------------------------------------------------

    /// Feed one residual to the guard; [`GuardVerdict::Proceed`] when
    /// no guard is attached.
    #[inline]
    pub fn observe(&mut self, residual: f64) -> GuardVerdict {
        match self.guard.as_mut() {
            Some(g) => g.observe(residual),
            None => GuardVerdict::Proceed,
        }
    }

    /// NaN/Inf scan of the current iterate — only when a guard is
    /// attached (plain calls skip the scan entirely, preserving their
    /// zero-overhead contract).
    #[inline]
    pub fn check_iterate(&self, values: &[f64], at_iter: usize) -> GuardVerdict {
        if self.guard.is_some() {
            ConvergenceGuard::check_finite(values, at_iter)
        } else {
            GuardVerdict::Proceed
        }
    }

    // ---- observability hooks -------------------------------------------

    /// Record one residual sample (no-op without diagnostics).
    #[inline]
    pub fn push_residual(&mut self, r: f64) {
        if let Some(d) = self.diags.as_mut() {
            d.push_residual(r);
        }
    }

    /// Record a notable event. Takes a closure so the message is never
    /// formatted — no allocation — on the plain path.
    #[inline]
    pub fn note_with(&mut self, msg: impl FnOnce() -> String) {
        if let Some(d) = self.diags.as_mut() {
            d.note(msg());
        }
    }

    /// Direct access to the diagnostics for hooks with no dedicated
    /// helper (sweep-cut events, span wrapping, shard merges).
    #[inline]
    pub fn diags_mut(&mut self) -> Option<&mut Diagnostics> {
        self.diags.as_mut()
    }

    // ---- workspace / parallelism / fault hooks -------------------------

    /// The pool a pool-backed wrapper should check generic dense
    /// scratch out of: the override if one was set, else the kernel's
    /// own static `fallback`.
    #[inline]
    pub fn scratch_pool_or(
        &self,
        fallback: &'static WorkspacePool<Workspace>,
    ) -> &'static WorkspacePool<Workspace> {
        self.scratch.unwrap_or(fallback)
    }

    /// The execution pool a fan-out kernel should use: the pinned pool
    /// if one was set, else `ACIR_THREADS` with `default` as fallback
    /// (mirroring [`ExecPool::from_env_or`]).
    #[inline]
    pub fn exec_pool_or(&self, default: usize) -> ExecPool {
        match &self.pool {
            Some(p) => *p,
            None => ExecPool::from_env_or(default),
        }
    }

    /// Mutable access to the fault stream, if one was attached.
    #[inline]
    pub fn faults_mut(&mut self) -> Option<&mut FaultStream> {
        self.faults.as_mut()
    }

    /// The layout preference attached with [`Self::with_spmv_layout`],
    /// if any.
    #[inline]
    pub fn spmv_layout(&self) -> Option<SpmvLayout> {
        self.spmv
    }

    /// Install the context's layout preference as the calling thread's
    /// SpMV layout for the duration of the returned scope; `None` (and
    /// no scope, no note, no allocation) when the context carries no
    /// preference. Kernel `*_ctx` entry points call this once before
    /// their core loop — the products themselves stay signature-free.
    /// A traced context records the routing as a `note` event so golden
    /// traces pin which layout served the run.
    #[inline]
    pub fn spmv_scope(&mut self) -> Option<SpmvLayoutScope> {
        let layout = self.spmv?;
        self.note_with(|| format!("spmv layout {layout}"));
        Some(acir_exec::spmv_layout_scope(layout))
    }

    // ---- teardown ------------------------------------------------------

    /// Tear the context down into the [`Diagnostics`] that a
    /// [`crate::SolverOutcome`] carries: meter counters are absorbed
    /// (iterations / work / elapsed and their metrics), and the
    /// diagnostics — or an empty record if the context was plain — are
    /// moved out by value. Takes `&mut self` so core loops can finish
    /// from behind the `&mut KernelCtx` they were handed; calling it
    /// twice yields an empty record the second time. The outcome
    /// constructors close any spans still open.
    pub fn finish(&mut self) -> Diagnostics {
        let mut diags = self.diags.take().unwrap_or_default();
        if let Some(meter) = &self.meter {
            diags.absorb_meter(meter);
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_is_fully_inert() {
        let mut ctx = KernelCtx::default();
        assert!(!ctx.is_metered() && !ctx.is_guarded() && !ctx.is_traced());
        assert_eq!(ctx.tick_iter(), None);
        assert_eq!(ctx.add_work(1 << 40), None);
        assert_eq!(ctx.check_budget(), None);
        assert!(matches!(ctx.observe(f64::NAN), GuardVerdict::Proceed));
        assert!(matches!(
            ctx.check_iterate(&[f64::INFINITY], 3),
            GuardVerdict::Proceed
        ));
        ctx.push_residual(0.5);
        let mut formatted = false;
        ctx.note_with(|| {
            formatted = true;
            String::new()
        });
        assert!(!formatted, "plain ctx must not format note messages");
        let d = ctx.finish();
        assert!(d.residuals.is_empty() && d.events.is_empty());
        assert_eq!(d.iterations, 0);
    }

    #[test]
    fn budgeted_ctx_meters_and_traces() {
        let mut ctx = KernelCtx::budgeted("test.kernel", &Budget::iterations(2));
        assert!(ctx.is_metered() && ctx.is_traced() && !ctx.is_guarded());
        assert_eq!(ctx.tick_iter(), None);
        ctx.push_residual(0.25);
        assert_eq!(ctx.tick_iter(), Some(Exhaustion::Iterations));
        let d = ctx.finish();
        assert_eq!(d.iterations, 2);
        assert_eq!(d.residuals, vec![0.25]);
        assert_eq!(d.trace.open_spans(), ["test.kernel"]);
    }

    #[test]
    fn guard_halts_on_contamination_when_attached() {
        let mut ctx = KernelCtx::budgeted("test.kernel", &Budget::unlimited())
            .with_guard(GuardConfig::contamination_only());
        assert!(matches!(ctx.observe(1.0), GuardVerdict::Proceed));
        assert!(matches!(ctx.observe(f64::NAN), GuardVerdict::Halt(_)));
        assert!(matches!(
            ctx.check_iterate(&[1.0, f64::NAN], 1),
            GuardVerdict::Halt(_)
        ));
    }

    #[test]
    fn finish_absorbs_meter_counters() {
        let mut ctx = KernelCtx::budgeted("test.kernel", &Budget::unlimited());
        ctx.tick_iter();
        ctx.tick_iter();
        ctx.add_work(7);
        let d = ctx.finish();
        assert_eq!(d.iterations, 2);
        assert_eq!(d.work, 7);
        assert_eq!(d.metrics.counter("iterations"), 2);
    }

    #[test]
    fn exec_pool_override_wins() {
        let ctx = KernelCtx::default().with_exec_pool(ExecPool::with_threads(3));
        assert_eq!(ctx.exec_pool_or(1).threads(), 3);
    }
}
