//! MQI — Max-flow Quotient-cut Improvement (Lang & Rao).
//!
//! Given a graph and a side `A` of a bisection with `vol(A) ≤
//! vol(V)/2`, MQI finds the subset `S ⊆ A` with the best conductance
//! `φ(S) = cut(S)/vol(S)`, provably at least as good as `φ(A)`, by a
//! sequence of max-flow computations. "Metis+MQI" (multilevel bisection
//! to propose `A`, then MQI to polish) is the flow-based method of the
//! paper's Figure 1.
//!
//! ## The flow reduction
//!
//! Let `a = vol(A)`, `c = cut(A, Ā)`, and for `u ∈ A` let `b_u` be the
//! weight of `u`'s edges into `Ā`. Build a network on `A ∪ {s, t}`:
//!
//! * `s → u` with capacity `c · d_u` for every `u ∈ A`;
//! * `u → t` with capacity `a · b_u` for boundary nodes;
//! * each internal edge `{u, v}` of `A` with capacity `a · w(u, v)`
//!   in both directions.
//!
//! For a cut with source side `{s} ∪ S`, the capacity is
//! `c·a + [a·cut_G(S) − c·vol(S)]`, so the min cut is below `c·a`
//! exactly when some `S ⊆ A` has `cut_G(S)/vol(S) < c/a`, and the
//! source side of the min cut is that better set. Iterating until no
//! improvement yields the optimal quotient subset of `A`.

use crate::maxflow::{FlowExit, FlowNetwork};
use crate::{FlowError, Result};
use acir_graph::{Graph, NodeId};
use acir_runtime::{Budget, Certificate, DivergenceCause, GuardConfig, KernelCtx, SolverOutcome};

/// Outcome of MQI.
#[derive(Debug, Clone)]
pub struct MqiResult {
    /// The improved set (subset of the input side), sorted.
    pub set: Vec<NodeId>,
    /// Conductance of the improved set.
    pub conductance: f64,
    /// Conductance of the input side (for reference).
    pub initial_conductance: f64,
    /// Number of max-flow iterations performed.
    pub iterations: usize,
}

/// Cut weight and volume of `side` in `g`; helper shared with tests.
fn cut_and_volume(g: &Graph, member: &[bool]) -> (f64, f64) {
    let mut cut = 0.0;
    let mut vol = 0.0;
    for u in 0..g.n() as NodeId {
        if !member[u as usize] {
            continue;
        }
        vol += g.degree(u);
        for (v, w) in g.neighbors(u) {
            if !member[v as usize] {
                cut += w;
            }
        }
    }
    (cut, vol)
}

/// Run MQI from the initial side `a_side`.
///
/// Requirements: `a_side` non-empty, within range, with
/// `vol(A) ≤ vol(V)/2` (the quotient-cut convention; pass the smaller
/// side). Errors otherwise. Returns the best-conductance subset found.
pub fn mqi(g: &Graph, a_side: &[NodeId]) -> Result<MqiResult> {
    let mut ctx = KernelCtx::new();
    match mqi_ctx(g, a_side, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

/// Validate `a_side` and return its membership mask.
fn validate_mqi_side(g: &Graph, a_side: &[NodeId]) -> Result<Vec<bool>> {
    let n = g.n();
    if a_side.is_empty() {
        return Err(FlowError::InvalidArgument(
            "MQI needs a non-empty side".into(),
        ));
    }
    let mut member = vec![false; n];
    for &u in a_side {
        if u as usize >= n {
            return Err(FlowError::InvalidArgument(format!("node {u} out of range")));
        }
        if member[u as usize] {
            return Err(FlowError::InvalidArgument(format!("duplicate node {u}")));
        }
        member[u as usize] = true;
    }
    let (_, vol0) = cut_and_volume(g, &member);
    if vol0 > g.total_volume() / 2.0 + 1e-9 {
        return Err(FlowError::InvalidArgument(
            "MQI side must have at most half the total volume".into(),
        ));
    }
    Ok(member)
}

/// Run the flow-round improvement loop under `ctx`; returns the final
/// side mask, the best conductance achieved, the round count, and the
/// exit condition.
fn mqi_core(
    g: &Graph,
    member: Vec<bool>,
    initial_conductance: f64,
    ctx: &mut KernelCtx,
) -> Result<(Vec<bool>, f64, usize, FlowExit)> {
    let n = g.n();
    let mut current = member;
    let mut best_phi = initial_conductance;
    let mut iterations = 0usize;
    let exit;
    // CORE LOOP
    loop {
        ctx.tick_iter();
        if let Some(exhausted) = ctx.check_budget() {
            ctx.note_with(|| {
                format!(
                    "{exhausted} after {iterations} flow rounds; current side is a valid improved cut"
                )
            });
            exit = FlowExit::Exhausted {
                exhausted,
                upper: initial_conductance,
            };
            break;
        }
        // Relabel current side nodes 0..k, with s = k and t = k + 1.
        let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&u| current[u as usize]).collect();
        let k = nodes.len();
        let mut local = vec![usize::MAX; n];
        for (i, &u) in nodes.iter().enumerate() {
            local[u as usize] = i;
        }
        let (c, a) = cut_and_volume(g, &current);
        if c == 0.0 {
            exit = FlowExit::Done;
            break;
        }
        let s = k;
        let t = k + 1;
        let mut net = FlowNetwork::new(k + 2);
        let mut arcs = 0u64;
        for (i, &u) in nodes.iter().enumerate() {
            net.add_arc(s, i, c * g.degree(u))?;
            arcs += 1;
            let mut boundary = 0.0;
            for (v, w) in g.neighbors(u) {
                if current[v as usize] {
                    if local[v as usize] > i {
                        net.add_edge(i, local[v as usize], a * w)?;
                        arcs += 1;
                    }
                } else {
                    boundary += w;
                }
            }
            if boundary > 0.0 {
                net.add_arc(i, t, a * boundary)?;
                arcs += 1;
            }
        }
        ctx.add_work(arcs);
        let flow = net.max_flow(s, t)?;
        iterations += 1;
        ctx.push_residual(best_phi);

        // Improvement exists iff min cut < c·a (with slack for floats).
        if flow.value >= c * a * (1.0 - 1e-12) - 1e-9 {
            exit = FlowExit::Done;
            break;
        }
        let improved: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| flow.source_side[i])
            .map(|(_, &u)| u)
            .collect();
        if improved.is_empty() || improved.len() == nodes.len() {
            exit = FlowExit::Done;
            break;
        }
        let mut next = vec![false; n];
        for &u in &improved {
            next[u as usize] = true;
        }
        let (nc, nv) = cut_and_volume(g, &next);
        let phi = if nv > 0.0 { nc / nv } else { f64::INFINITY };
        if ctx.is_guarded() && !phi.is_finite() {
            exit = FlowExit::Diverged(DivergenceCause::NonFiniteResidual {
                at_iter: iterations,
            });
            break;
        }
        if phi >= best_phi - 1e-15 {
            exit = FlowExit::Done;
            break; // numerical no-op; stop rather than loop
        }
        best_phi = phi;
        current = next;
    }
    if matches!(exit, FlowExit::Done) {
        ctx.note_with(|| {
            format!("quotient-cut optimum inside the side after {iterations} flow rounds")
        });
    }
    Ok((current, best_phi, iterations, exit))
}

/// [`mqi`] under an explicit [`KernelCtx`]: the same flow-round loop
/// with metering, guarding, and tracing routed through the context. An
/// inert context reproduces [`mqi`] exactly; see [`mqi_budgeted`] for
/// the anytime exhaustion semantics.
pub fn mqi_ctx(
    g: &Graph,
    a_side: &[NodeId],
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<MqiResult>> {
    let member = validate_mqi_side(g, a_side)?;
    let (cut0, vol0) = cut_and_volume(g, &member);
    if cut0 == 0.0 {
        // Already a disconnected component: conductance 0, nothing to do.
        ctx.note_with(|| {
            "input side is already disconnected: conductance 0, nothing to improve".to_string()
        });
        let diags = ctx.finish();
        return Ok(SolverOutcome::converged(finish(g, &member, 0.0, 0), diags));
    }
    let initial_conductance = cut0 / vol0;
    let (current, best_phi, iterations, exit) = mqi_core(g, member, initial_conductance, ctx)?;
    let diags = ctx.finish();
    Ok(match exit {
        FlowExit::Done => {
            SolverOutcome::converged(finish(g, &current, initial_conductance, iterations), diags)
        }
        FlowExit::Exhausted { exhausted, upper } => SolverOutcome::exhausted(
            finish(g, &current, initial_conductance, iterations),
            exhausted,
            Certificate::FlowGap {
                value: best_phi,
                upper_bound: upper,
            },
            diags,
        ),
        FlowExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

/// Build the result struct for whatever side `current` holds.
fn finish(g: &Graph, current: &[bool], initial_conductance: f64, iterations: usize) -> MqiResult {
    let n = g.n();
    let mut set: Vec<NodeId> = (0..n as NodeId).filter(|&u| current[u as usize]).collect();
    set.sort_unstable();
    let (fc, fv) = cut_and_volume(g, current);
    MqiResult {
        set,
        conductance: if fv > 0.0 { fc / fv } else { f64::INFINITY },
        initial_conductance,
        iterations,
    }
}

/// Budgeted variant of [`mqi`].
///
/// Each max-flow round costs one budget iteration plus the round's
/// flow-network arcs as work units. MQI is an *anytime* algorithm —
/// every accepted round strictly improves conductance, and the current
/// side is always a valid answer — so exhaustion returns the best set
/// found with a [`Certificate::FlowGap`] reading `value` = achieved
/// conductance ≤ `upper_bound` = the input side's conductance: the
/// slack is the improvement already banked, and the guarantee
/// `φ(S) ≤ φ(A)` of Lang–Rao holds at every truncation point.
pub fn mqi_budgeted(
    g: &Graph,
    a_side: &[NodeId],
    budget: &Budget,
) -> Result<SolverOutcome<MqiResult>> {
    // The guard is consulted only for the finiteness check on each
    // round's candidate conductance.
    let mut ctx =
        KernelCtx::budgeted("flow.mqi", budget).with_guard(GuardConfig::contamination_only());
    mqi_ctx(g, a_side, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, lollipop, path};

    #[test]
    fn mqi_trims_barbell_side_to_clique() {
        // Side = clique A (0..7) plus two bridge nodes: MQI should trim
        // back to the clique + maybe bridge prefix — whatever minimizes
        // the quotient. For barbell(8, 4) the best subset of
        // {0..7, 8, 9} is the one cutting a single bridge edge with
        // maximal volume, i.e. {0..7, 8, 9} → cut 1, or {0..7} → cut 1:
        // larger volume wins, so the bridge nodes stay.
        let g = barbell(8, 4).unwrap();
        let side: Vec<u32> = (0..10).collect();
        let r = mqi(&g, &side).unwrap();
        let (c, v) = {
            let mut m = vec![false; g.n()];
            for &u in &r.set {
                m[u as usize] = true;
            }
            cut_and_volume(&g, &m)
        };
        assert!((r.conductance - c / v).abs() < 1e-12);
        assert!(r.conductance <= r.initial_conductance + 1e-12);
        // Best quotient keeps all 10 nodes (cut 1, max volume).
        assert_eq!(r.set, side);
    }

    #[test]
    fn mqi_removes_bad_attachments() {
        // Side = one clique + one node of the *other* clique's bridge
        // side on a dumbbell: that stray node only adds cut.
        let g = barbell(6, 2).unwrap(); // nodes 0-5 clique, 6,7 bridge, 8-13 clique
        let side = vec![0, 1, 2, 3, 4, 5, 6];
        let r = mqi(&g, &side).unwrap();
        // {0..5, 6} has cut 1 (edge 6-7) and more volume than {0..5}
        // (cut 1 via edge 5-6): MQI keeps the bigger-volume variant.
        assert!(r.conductance <= r.initial_conductance);
        assert!(r.set.contains(&0));
    }

    #[test]
    fn mqi_extracts_clique_from_mixed_side() {
        // Lollipop: clique 0..5, tail 6..11. Take the side {3, 4, 5, 6,
        // 7, 8}: half clique, half tail. The best quotient subset inside
        // is a deep-cut piece; MQI must strictly improve the quotient.
        let g = lollipop(6, 6).unwrap();
        let side = vec![3, 4, 5, 6, 7, 8];
        let r = mqi(&g, &side).unwrap();
        assert!(
            r.conductance < r.initial_conductance,
            "{} !< {}",
            r.conductance,
            r.initial_conductance
        );
    }

    #[test]
    fn mqi_on_optimal_side_is_stable() {
        // The clique side of a dumbbell is already optimal within itself.
        let g = barbell(6, 0).unwrap();
        let side: Vec<u32> = (0..6).collect();
        let r = mqi(&g, &side).unwrap();
        assert_eq!(r.set, side);
        assert!((r.conductance - r.initial_conductance).abs() < 1e-12);
    }

    #[test]
    fn mqi_zero_cut_side_short_circuits() {
        // Two disjoint triangles: one triangle has cut 0.
        let g = acir_graph::Graph::from_pairs(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let r = mqi(&g, &[0, 1, 2]).unwrap();
        assert_eq!(r.conductance, 0.0);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.set, vec![0, 1, 2]);
    }

    #[test]
    fn mqi_validates_inputs() {
        let g = path(6).unwrap();
        assert!(mqi(&g, &[]).is_err());
        assert!(mqi(&g, &[99]).is_err());
        assert!(mqi(&g, &[0, 0]).is_err());
        // Whole graph: volume too large.
        let all: Vec<u32> = (0..6).collect();
        assert!(mqi(&g, &all).is_err());
    }

    #[test]
    fn mqi_never_worsens_on_random_sides() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let g = acir_graph::gen::random::erdos_renyi_gnp(&mut rng, 40, 0.15).unwrap();
        let total = g.total_volume();
        for trial in 0..10 {
            let side: Vec<u32> = (0..40u32).filter(|_| rng.gen_bool(0.3)).collect();
            if side.is_empty() || g.volume(&side) > total / 2.0 {
                continue;
            }
            let r = mqi(&g, &side).unwrap();
            assert!(
                r.conductance <= r.initial_conductance + 1e-9,
                "trial {trial}: {} > {}",
                r.conductance,
                r.initial_conductance
            );
        }
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = lollipop(6, 6).unwrap();
        let side = vec![3, 4, 5, 6, 7, 8];
        let out = mqi_budgeted(&g, &side, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let r = out.value().unwrap();
        let p = mqi(&g, &side).unwrap();
        assert_eq!(r.set, p.set);
        assert!((r.conductance - p.conductance).abs() < 1e-12);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn budgeted_exhaustion_returns_valid_anytime_cut() {
        // Zero flow rounds allowed: the partial answer must be the
        // input side itself, still certified φ(S) ≤ φ(A).
        let g = lollipop(6, 6).unwrap();
        let side = vec![3, 4, 5, 6, 7, 8];
        let out = mqi_budgeted(&g, &side, &Budget::iterations(1)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let r = out.value().unwrap();
        let (lo, hi) = match out.certificate() {
            Some(&Certificate::FlowGap { value, upper_bound }) => (value, upper_bound),
            c => panic!("wrong certificate {c:?}"),
        };
        assert!(lo <= hi + 1e-12, "achieved {lo} vs initial {hi}");
        assert!((r.conductance - lo).abs() < 1e-12);
        assert!((r.initial_conductance - hi).abs() < 1e-12);
        // Anytime guarantee: never worse than the input side.
        assert!(r.conductance <= r.initial_conductance + 1e-12);
    }

    #[test]
    fn budgeted_zero_cut_short_circuits_as_converged() {
        let g = acir_graph::Graph::from_pairs(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let out = mqi_budgeted(&g, &[0, 1, 2], &Budget::iterations(1)).unwrap();
        assert!(out.is_converged());
        assert_eq!(out.value().unwrap().conductance, 0.0);
    }

    #[test]
    fn mqi_respects_half_volume_rule() {
        let g = complete(8).unwrap();
        let big: Vec<u32> = (0..7).collect(); // volume 49/56 > half
        assert!(mqi(&g, &big).is_err());
        let ok: Vec<u32> = (0..4).collect();
        assert!(mqi(&g, &ok).is_ok());
    }
}
