//! FlowImprove — Andersen & Lang's locally-biased flow method
//! (paper ref \[3\], "An algorithm for improving graph partitions").
//!
//! Given a reference set `R` with `vol(R) ≤ vol(V)/2`, FlowImprove
//! searches over *all* sets `S` (not just subsets of `R`, unlike MQI)
//! for one minimizing the relative conductance
//!
//! ```text
//! φ_R(S) = cut(S) / (vol(S∩R) − f·vol(S∖R)),    f = vol(R)/vol(V∖R),
//! ```
//!
//! which penalizes drifting away from `R` — a *flow-based* notion of
//! locality, the counterpart of the spectral locality in the MOV
//! program of §3.3. The paper's footnote 26 predicts that on
//! expander-like data locally-biased flow methods beat locally-biased
//! spectral ones on niceness; the ablation experiments test exactly
//! this routine.
//!
//! Implementation: Dinkelbach-style iteration. For the current level
//! `α`, a min `s–t` cut of the network
//!
//! * `s → u` capacity `α·d_u` for `u ∈ R`,
//! * `u → t` capacity `α·f·d_u` for `u ∉ R`,
//! * every graph edge with its own weight,
//!
//! minimizes `cut(S) − α·(vol(S∩R) − f·vol(S∖R))` over `S`; if the
//! optimum is below `α·vol(R)` a strictly better set exists and `α`
//! decreases. Terminates in finitely many steps.

use crate::maxflow::FlowNetwork;
use crate::{FlowError, Result};
use acir_graph::{Graph, NodeId};

/// Outcome of FlowImprove.
#[derive(Debug, Clone)]
pub struct FlowImproveResult {
    /// The improved set, sorted.
    pub set: Vec<NodeId>,
    /// Ordinary conductance of the improved set.
    pub conductance: f64,
    /// Relative (R-biased) conductance `φ_R` of the improved set.
    pub relative_conductance: f64,
    /// Number of max-flow iterations.
    pub iterations: usize,
}

fn cut_of(g: &Graph, member: &[bool]) -> f64 {
    let mut cut = 0.0;
    for u in 0..g.n() as NodeId {
        if !member[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            if !member[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// Run FlowImprove from reference set `r_set`.
///
/// Requires `r_set` non-empty, in-range, duplicate-free, with
/// `vol(R) ≤ vol(V)/2`, on a graph with positive total volume.
pub fn flow_improve(g: &Graph, r_set: &[NodeId]) -> Result<FlowImproveResult> {
    let n = g.n();
    if r_set.is_empty() {
        return Err(FlowError::InvalidArgument(
            "FlowImprove needs a non-empty set".into(),
        ));
    }
    let mut in_r = vec![false; n];
    for &u in r_set {
        if u as usize >= n {
            return Err(FlowError::InvalidArgument(format!("node {u} out of range")));
        }
        if in_r[u as usize] {
            return Err(FlowError::InvalidArgument(format!("duplicate node {u}")));
        }
        in_r[u as usize] = true;
    }
    let vol_r = g.volume(r_set);
    let total = g.total_volume();
    let vol_rc = total - vol_r;
    if vol_r > total / 2.0 + 1e-9 {
        return Err(FlowError::InvalidArgument(
            "FlowImprove reference set must have at most half the total volume".into(),
        ));
    }
    if vol_r <= 0.0 || vol_rc <= 0.0 {
        return Err(FlowError::InvalidArgument(
            "FlowImprove needs positive volume on both sides".into(),
        ));
    }
    let f = vol_r / vol_rc;

    // d(S) helper.
    let d_of = |member: &[bool]| -> f64 {
        let mut d = 0.0;
        for u in 0..n as NodeId {
            if member[u as usize] {
                if in_r[u as usize] {
                    d += g.degree(u);
                } else {
                    d -= f * g.degree(u);
                }
            }
        }
        d
    };

    let mut current = in_r.clone();
    let mut alpha = cut_of(g, &current) / vol_r;
    let mut iterations = 0usize;

    if alpha == 0.0 {
        let mut set = r_set.to_vec();
        set.sort_unstable();
        return Ok(FlowImproveResult {
            set,
            conductance: 0.0,
            relative_conductance: 0.0,
            iterations: 0,
        });
    }

    const MAX_ITERS: usize = 64;
    while iterations < MAX_ITERS {
        let s = n;
        let t = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        for u in 0..n as NodeId {
            let ui = u as usize;
            if in_r[ui] {
                net.add_arc(s, ui, alpha * g.degree(u))?;
            } else {
                net.add_arc(ui, t, alpha * f * g.degree(u))?;
            }
            for (v, w) in g.neighbors(u) {
                if v > u {
                    net.add_edge(ui, v as usize, w)?;
                }
            }
        }
        let flow = net.max_flow(s, t)?;
        iterations += 1;
        if flow.value >= alpha * vol_r * (1.0 - 1e-12) - 1e-9 {
            break; // no strictly better set at this level
        }
        let mut next = vec![false; n];
        let mut any = false;
        for (slot, &on_source_side) in next.iter_mut().zip(&flow.source_side) {
            if on_source_side {
                *slot = true;
                any = true;
            }
        }
        if !any {
            break;
        }
        let d_next = d_of(&next);
        if d_next <= 1e-12 {
            break;
        }
        let phi_next = cut_of(g, &next) / d_next;
        if phi_next >= alpha - 1e-15 {
            break;
        }
        alpha = phi_next;
        current = next;
    }

    let set: Vec<NodeId> = (0..n as NodeId).filter(|&u| current[u as usize]).collect();
    let cut = cut_of(g, &current);
    let vol_s = g.volume(&set);
    let denom = vol_s.min(total - vol_s);
    let d_cur = d_of(&current);
    Ok(FlowImproveResult {
        set,
        conductance: if denom > 0.0 {
            cut / denom
        } else {
            f64::INFINITY
        },
        relative_conductance: if d_cur > 0.0 {
            cut / d_cur
        } else {
            f64::INFINITY
        },
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, path};
    use acir_graph::Graph;

    #[test]
    fn improves_noisy_clique_side() {
        // Reference = clique A missing one node, plus two nodes of the
        // far clique. FlowImprove may both add and remove nodes — the
        // advantage over MQI.
        let g = barbell(8, 0).unwrap(); // 0..7 clique A, 8..15 clique B
                                        // Volume budget: vol(R) must stay ≤ vol(V)/2 = 57, so pick six
                                        // clique-A nodes and one stray far-clique node (vol = 6·7+7=49).
        let r: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 9];
        let res = flow_improve(&g, &r).unwrap();
        // The ideal answer is exactly clique A.
        assert_eq!(res.set, (0..8).collect::<Vec<u32>>());
        assert!(res.conductance < 0.05);
    }

    #[test]
    fn adds_missing_nodes_unlike_mqi() {
        // Reference strictly inside clique A: FlowImprove should grow it
        // back to the full clique (MQI could only shrink).
        let g = barbell(8, 0).unwrap();
        let r: Vec<u32> = (0..6).collect();
        let res = flow_improve(&g, &r).unwrap();
        assert_eq!(res.set, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn optimal_reference_is_fixed_point() {
        let g = barbell(6, 0).unwrap();
        let r: Vec<u32> = (0..6).collect();
        let res = flow_improve(&g, &r).unwrap();
        assert_eq!(res.set, r);
        // φ_R(R) = cut/vol(R) = 1/31.
        assert!((res.relative_conductance - 1.0 / 31.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cut_reference_short_circuits() {
        let g = Graph::from_pairs(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let res = flow_improve(&g, &[0, 1, 2]).unwrap();
        assert_eq!(res.conductance, 0.0);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn validates_inputs() {
        let g = path(6).unwrap();
        assert!(flow_improve(&g, &[]).is_err());
        assert!(flow_improve(&g, &[77]).is_err());
        assert!(flow_improve(&g, &[1, 1]).is_err());
        let all: Vec<u32> = (0..6).collect();
        assert!(flow_improve(&g, &all).is_err());
    }

    #[test]
    fn never_worsens_relative_conductance() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let g = acir_graph::gen::random::erdos_renyi_gnp(&mut rng, 36, 0.2).unwrap();
        let total = g.total_volume();
        for _ in 0..8 {
            let r: Vec<u32> = (0..36u32).filter(|_| rng.gen_bool(0.25)).collect();
            if r.is_empty() || g.volume(&r) > total / 2.0 {
                continue;
            }
            let cut_r = {
                let mut m = vec![false; g.n()];
                for &u in &r {
                    m[u as usize] = true;
                }
                cut_of(&g, &m)
            };
            let phi_r = cut_r / g.volume(&r);
            let res = flow_improve(&g, &r).unwrap();
            assert!(res.relative_conductance <= phi_r + 1e-9);
        }
    }
}
