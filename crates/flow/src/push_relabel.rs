//! Push–relabel maximum flow (Goldberg–Tarjan), with the gap and
//! global-relabel heuristics.
//!
//! A second, independently implemented max-flow algorithm. Its purpose
//! here is twofold: it gives the flow substrate a high-performance
//! option for the dense MQI networks (push–relabel tends to beat
//! augmenting paths on graphs with large capacities), and — more
//! importantly for a reproduction — it lets property tests cross-check
//! two entirely different algorithms against each other on random
//! networks, which is how the flow layer earns its trust.

use crate::maxflow::{FlowExit, MaxFlowResult};
use crate::{FlowError, Result};
use acir_runtime::{Budget, Certificate, DivergenceCause, GuardConfig, KernelCtx, SolverOutcome};
use std::collections::VecDeque;

const EPS: f64 = 1e-9;

/// A flow network for the push–relabel solver (same arc-pair layout as
/// [`crate::FlowNetwork`]: arc `i ^ 1` is the reverse of arc `i`).
#[derive(Debug, Clone)]
pub struct PushRelabelNetwork {
    to: Vec<u32>,
    cap: Vec<f64>,
    head: Vec<Vec<u32>>,
}

impl PushRelabelNetwork {
    /// Network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.head.len()
    }

    /// Add a directed arc with capacity `cap` (reverse capacity 0).
    pub fn add_arc(&mut self, u: usize, v: usize, cap: f64) -> Result<()> {
        self.add_arc_pair(u, v, cap, 0.0)
    }

    /// Add an undirected edge (equal capacity both ways).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> Result<()> {
        self.add_arc_pair(u, v, cap, cap)
    }

    fn add_arc_pair(&mut self, u: usize, v: usize, fwd: f64, bwd: f64) -> Result<()> {
        let n = self.n();
        if u >= n || v >= n {
            return Err(FlowError::InvalidArgument(format!(
                "arc ({u},{v}) out of range for {n} nodes"
            )));
        }
        if !(fwd.is_finite() && fwd >= 0.0 && bwd.is_finite() && bwd >= 0.0) {
            return Err(FlowError::InvalidArgument(
                "capacities must be finite and nonnegative".into(),
            ));
        }
        let i = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(fwd);
        self.to.push(u as u32);
        self.cap.push(bwd);
        self.head[u].push(i);
        self.head[v].push(i + 1);
        Ok(())
    }

    /// Compute the max `s → t` flow (mutates residual capacities).
    pub fn max_flow(&mut self, s: usize, t: usize) -> Result<MaxFlowResult> {
        // The guard keeps the legacy sink-excess finiteness check alive
        // on the plain path; everything else in the context is inert.
        let mut ctx = KernelCtx::new().with_guard(GuardConfig::contamination_only());
        match self.max_flow_ctx(s, t, &mut ctx)? {
            SolverOutcome::Converged { value, .. } => Ok(value),
            // An inert context never exhausts.
            SolverOutcome::BudgetExhausted { best_so_far, .. } => Ok(best_so_far),
            SolverOutcome::Diverged { cause, .. } => Err(FlowError::InvalidArgument(format!(
                "push-relabel halted: {cause}"
            ))),
        }
    }

    /// Budgeted variant of [`max_flow`](Self::max_flow).
    ///
    /// Each node discharge costs one budget iteration plus its arc
    /// scans as work units. Push–relabel maintains a *preflow*, but the
    /// excess already collected at `t` decomposes into feasible `s → t`
    /// paths, so on exhaustion it is a valid lower bound on the maximum
    /// flow; the witnessed trivial cut `min(cap out of s, cap into t)`
    /// bounds it from above — a [`Certificate::FlowGap`]. The
    /// `source_side` of a partial result is residual reachability from
    /// `s` at the moment the budget ran out. A non-finite sink excess
    /// halts the run as [`SolverOutcome::Diverged`].
    pub fn max_flow_budgeted(
        &mut self,
        s: usize,
        t: usize,
        budget: &Budget,
    ) -> Result<SolverOutcome<MaxFlowResult>> {
        // The guard is consulted only for the sink-excess finiteness
        // check after each discharge.
        let mut ctx = KernelCtx::budgeted("flow.push_relabel", budget)
            .with_guard(GuardConfig::contamination_only());
        self.max_flow_ctx(s, t, &mut ctx)
    }

    /// [`max_flow`](Self::max_flow) under an explicit [`KernelCtx`]:
    /// the same discharge loop with metering, guarding, and tracing
    /// routed through the context.
    pub fn max_flow_ctx(
        &mut self,
        s: usize,
        t: usize,
        ctx: &mut KernelCtx,
    ) -> Result<SolverOutcome<MaxFlowResult>> {
        let (value, exit) = self.max_flow_core(s, t, ctx)?;
        let diags = ctx.finish();
        Ok(match exit {
            FlowExit::Done => SolverOutcome::converged(
                MaxFlowResult {
                    value,
                    source_side: self.residual_reachable(s),
                },
                diags,
            ),
            FlowExit::Exhausted { exhausted, upper } => SolverOutcome::exhausted(
                MaxFlowResult {
                    value,
                    source_side: self.residual_reachable(s),
                },
                exhausted,
                Certificate::FlowGap {
                    value,
                    upper_bound: upper,
                },
                diags,
            ),
            FlowExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
        })
    }

    /// Run the discharge loop under `ctx`; returns the sink excess (the
    /// flow value so far) and the exit condition.
    fn max_flow_core(
        &mut self,
        s: usize,
        t: usize,
        ctx: &mut KernelCtx,
    ) -> Result<(f64, FlowExit)> {
        let n = self.n();
        if s >= n || t >= n {
            return Err(FlowError::InvalidArgument("endpoint out of range".into()));
        }
        if s == t {
            return Err(FlowError::InvalidArgument("source equals sink".into()));
        }
        // Witnessed trivial cuts on the original capacities.
        let out_s: f64 = self.head[s].iter().map(|&ai| self.cap[ai as usize]).sum();
        let in_t: f64 = self.head[t]
            .iter()
            .map(|&ai| self.cap[(ai ^ 1) as usize])
            .sum();
        let upper = out_s.min(in_t);

        let mut height = vec![0usize; n];
        let mut excess = vec![0.0f64; n];
        let mut count = vec![0usize; 2 * n + 1]; // nodes per height (gap heuristic)
        let mut cursor = vec![0usize; n];
        let mut active: VecDeque<usize> = VecDeque::new();
        let mut in_queue = vec![false; n];

        // Global relabel: heights = BFS distance to t in the residual.
        let global_relabel = |cap: &[f64],
                              to: &[u32],
                              head: &[Vec<u32>],
                              height: &mut [usize],
                              count: &mut [usize]| {
            for h in count.iter_mut() {
                *h = 0;
            }
            for h in height.iter_mut() {
                *h = 2 * n; // unreachable marker
            }
            height[t] = 0;
            let mut q = VecDeque::new();
            q.push_back(t);
            while let Some(u) = q.pop_front() {
                for &ai in &head[u] {
                    // Arc u→v in residual of reverse direction: v can
                    // reach u if cap[ai ^ 1] > 0 (arc v→u has residual).
                    let v = to[ai as usize] as usize;
                    if height[v] == 2 * n && cap[(ai ^ 1) as usize] > EPS {
                        height[v] = height[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            height[s] = n;
            for &h in height.iter() {
                if h <= 2 * n {
                    count[h.min(2 * n)] += 1;
                }
            }
        };
        global_relabel(&self.cap, &self.to, &self.head, &mut height, &mut count);

        // Saturate source arcs.
        let src_arcs: Vec<u32> = self.head[s].clone();
        for ai in src_arcs {
            let ai = ai as usize;
            let v = self.to[ai] as usize;
            let c = self.cap[ai];
            if c > EPS {
                self.cap[ai] = 0.0;
                self.cap[ai ^ 1] += c;
                excess[v] += c;
                if v != t && v != s && !in_queue[v] {
                    active.push_back(v);
                    in_queue[v] = true;
                }
            }
        }

        let mut work = 0usize;
        let relabel_interval = 6 * n + self.to.len() / 2 + 1;
        let mut discharges = 0usize;
        // CORE LOOP
        while let Some(u) = active.pop_front() {
            discharges += 1;
            ctx.tick_iter();
            ctx.add_work(self.head[u].len() as u64);
            if let Some(exhausted) = ctx.check_budget() {
                ctx.note_with(|| {
                    format!(
                        "{exhausted} after {discharges} discharges; returning sink excess as partial flow"
                    )
                });
                return Ok((excess[t], FlowExit::Exhausted { exhausted, upper }));
            }
            if ctx.is_guarded() && !excess[t].is_finite() {
                return Ok((
                    excess[t],
                    FlowExit::Diverged(DivergenceCause::NonFiniteIterate {
                        at_iter: discharges,
                    }),
                ));
            }
            in_queue[u] = false;
            // Discharge u.
            while excess[u] > EPS {
                if cursor[u] == self.head[u].len() {
                    // Relabel.
                    let old = height[u];
                    let mut best = usize::MAX;
                    for &ai in &self.head[u] {
                        if self.cap[ai as usize] > EPS {
                            best = best.min(height[self.to[ai as usize] as usize] + 1);
                        }
                    }
                    if best == usize::MAX || best >= 2 * n {
                        height[u] = 2 * n;
                        break; // disconnected from t and s in residual
                    }
                    // Gap heuristic: if u's old level empties, everything
                    // above it (below n) is cut off from t.
                    if old < n {
                        count[old] -= 1;
                        if count[old] == 0 {
                            for (w, h) in height.iter_mut().enumerate() {
                                if w != s && *h > old && *h < n {
                                    count[*h] -= 1;
                                    *h = n + 1;
                                    count[(n + 1).min(2 * n)] += 1;
                                }
                            }
                        }
                        count[best.min(2 * n)] += 1;
                    }
                    height[u] = best;
                    cursor[u] = 0;
                    work += self.head[u].len();
                    if work > relabel_interval {
                        global_relabel(&self.cap, &self.to, &self.head, &mut height, &mut count);
                        work = 0;
                    }
                    continue;
                }
                let ai = self.head[u][cursor[u]] as usize;
                let v = self.to[ai] as usize;
                if self.cap[ai] > EPS && height[u] == height[v] + 1 {
                    // Push.
                    let delta = excess[u].min(self.cap[ai]);
                    self.cap[ai] -= delta;
                    self.cap[ai ^ 1] += delta;
                    excess[u] -= delta;
                    excess[v] += delta;
                    if v != s && v != t && !in_queue[v] {
                        active.push_back(v);
                        in_queue[v] = true;
                    }
                } else {
                    cursor[u] += 1;
                }
            }
        }

        // Flow value = excess collected at t; min-cut side = nodes that
        // reach t... conventionally: source side = nodes NOT reaching t
        // in the residual, computed as residual-reachability from s.
        ctx.note_with(|| format!("preflow drained after {discharges} discharges"));
        ctx.push_residual((upper - excess[t]).max(0.0));
        Ok((excess[t], FlowExit::Done))
    }

    /// Nodes reachable from `s` in the current residual network.
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.n()];
        side[s] = true;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u] {
                let v = self.to[ai as usize] as usize;
                if self.cap[ai as usize] > EPS && !side[v] {
                    side[v] = true;
                    q.push_back(v);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::FlowNetwork;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn classic_diamond() {
        let mut net = PushRelabelNetwork::new(4);
        net.add_arc(0, 1, 3.0).unwrap();
        net.add_arc(0, 2, 2.0).unwrap();
        net.add_arc(1, 2, 1.0).unwrap();
        net.add_arc(1, 3, 2.0).unwrap();
        net.add_arc(2, 3, 3.0).unwrap();
        let r = net.max_flow(0, 3).unwrap();
        assert!((r.value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn series_and_disconnect() {
        let mut net = PushRelabelNetwork::new(3);
        net.add_arc(0, 1, 5.0).unwrap();
        net.add_arc(1, 2, 2.0).unwrap();
        let r = net.max_flow(0, 2).unwrap();
        assert!((r.value - 2.0).abs() < 1e-9);
        assert_eq!(r.source_side, vec![true, true, false]);

        let mut net = PushRelabelNetwork::new(4);
        net.add_arc(0, 1, 1.0).unwrap();
        net.add_arc(2, 3, 1.0).unwrap();
        let r = net.max_flow(0, 3).unwrap();
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn validates() {
        let mut net = PushRelabelNetwork::new(2);
        assert!(net.add_arc(0, 9, 1.0).is_err());
        assert!(net.add_arc(0, 1, -1.0).is_err());
        net.add_arc(0, 1, 1.0).unwrap();
        assert!(net.max_flow(0, 0).is_err());
        assert!(net.max_flow(0, 7).is_err());
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..30 {
            let n = rng.gen_range(4..20);
            let m = rng.gen_range(n..4 * n);
            let mut dinic = FlowNetwork::new(n);
            let mut pr = PushRelabelNetwork::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                let c = rng.gen_range(0.0..10.0);
                dinic.add_arc(u, v, c).unwrap();
                pr.add_arc(u, v, c).unwrap();
            }
            let s = 0;
            let t = n - 1;
            let a = dinic.max_flow(s, t).unwrap();
            let b = pr.max_flow(s, t).unwrap();
            assert!(
                (a.value - b.value).abs() < 1e-6,
                "trial {trial}: dinic {} vs push-relabel {}",
                a.value,
                b.value
            );
        }
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let mut net = PushRelabelNetwork::new(4);
        net.add_arc(0, 1, 3.0).unwrap();
        net.add_arc(0, 2, 2.0).unwrap();
        net.add_arc(1, 2, 1.0).unwrap();
        net.add_arc(1, 3, 2.0).unwrap();
        net.add_arc(2, 3, 3.0).unwrap();
        let mut plain = net.clone();
        let out = net.max_flow_budgeted(0, 3, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let r = out.value().unwrap();
        let p = plain.max_flow(0, 3).unwrap();
        assert!((r.value - p.value).abs() < 1e-9);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn budgeted_exhaustion_certificate_brackets_max_flow() {
        // A long chain forces many discharges; starve the budget.
        let n = 40;
        let mut net = PushRelabelNetwork::new(n);
        for u in 0..n - 1 {
            net.add_arc(u, u + 1, 2.0).unwrap();
        }
        let out = net
            .max_flow_budgeted(0, n - 1, &Budget::iterations(3))
            .unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let (lo, hi) = match out.certificate() {
            Some(&Certificate::FlowGap { value, upper_bound }) => (value, upper_bound),
            c => panic!("wrong certificate {c:?}"),
        };
        // True max flow is 2.0: the partial must not exceed it, the
        // witnessed cut must not undershoot it.
        assert!(lo <= 2.0 + 1e-9 && 2.0 <= hi + 1e-9, "[{lo}, {hi}]");
        assert_eq!(out.value().unwrap().value, lo);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn budgeted_deadline_axis_fires() {
        use std::time::Duration;
        let n = 60;
        let mut net = PushRelabelNetwork::new(n);
        for u in 0..n - 1 {
            net.add_arc(u, u + 1, 1.0).unwrap();
        }
        // A zero deadline exhausts on the very first discharge.
        let out = net
            .max_flow_budgeted(0, n - 1, &Budget::deadline(Duration::ZERO))
            .unwrap();
        assert!(!out.is_converged() && out.is_usable());
        assert!(matches!(
            out,
            SolverOutcome::BudgetExhausted {
                exhausted: acir_runtime::Exhaustion::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn undirected_edges_and_cut_side() {
        // Two triangles + unit bridge (same as the Dinic test).
        let mut net = PushRelabelNetwork::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            net.add_edge(u, v, 1.0).unwrap();
        }
        net.add_edge(2, 3, 1.0).unwrap();
        let r = net.max_flow(0, 5).unwrap();
        assert!((r.value - 1.0).abs() < 1e-9);
        assert_eq!(r.source_side, vec![true, true, true, false, false, false]);
    }
}
