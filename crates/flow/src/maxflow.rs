//! Dinic's maximum-flow algorithm on weighted directed networks.
//!
//! The primitive underlying every flow-based partitioner in this
//! reproduction (MQI, FlowImprove). Capacities are `f64` because the
//! MQI/FlowImprove reductions scale edge weights by volumes; a small
//! epsilon guards augmenting-path searches against floating-point
//! residue.

use crate::{FlowError, Result};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, KernelCtx, SolverOutcome,
};

/// Residual capacities below this are treated as zero.
const EPS: f64 = 1e-9;

/// A directed flow network with adjacency-list residual arcs.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // Arc arrays: to[i], cap[i] (residual); arcs stored in pairs, arc
    // i ^ 1 is the reverse of arc i.
    to: Vec<u32>,
    cap: Vec<f64>,
    head: Vec<Vec<u32>>, // arc indices per node
}

/// Outcome of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// Value of the maximum flow (= capacity of the minimum cut).
    pub value: f64,
    /// Nodes on the source side of a minimum cut (reachable from the
    /// source in the final residual network), as a boolean mask.
    pub source_side: Vec<bool>,
}

/// How a flow core loop stopped (shared by Dinic and push–relabel).
pub(crate) enum FlowExit {
    Done,
    Exhausted { exhausted: Exhaustion, upper: f64 },
    Diverged(DivergenceCause),
}

impl FlowNetwork {
    /// Network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.head.len()
    }

    /// Add a directed arc `u → v` with capacity `cap` (and a 0-capacity
    /// reverse arc). Errors on bad endpoints or negative/non-finite
    /// capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: f64) -> Result<()> {
        self.add_arc_pair(u, v, cap, 0.0)
    }

    /// Add an undirected edge (equal capacity in both directions).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> Result<()> {
        self.add_arc_pair(u, v, cap, cap)
    }

    fn add_arc_pair(&mut self, u: usize, v: usize, cap_fwd: f64, cap_bwd: f64) -> Result<()> {
        let n = self.n();
        if u >= n || v >= n {
            return Err(FlowError::InvalidArgument(format!(
                "arc ({u},{v}) out of range for {n} nodes"
            )));
        }
        if !(cap_fwd.is_finite() && cap_fwd >= 0.0 && cap_bwd.is_finite() && cap_bwd >= 0.0) {
            return Err(FlowError::InvalidArgument(format!(
                "capacities must be finite and nonnegative, got {cap_fwd}/{cap_bwd}"
            )));
        }
        let i = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(cap_fwd);
        self.to.push(u as u32);
        self.cap.push(cap_bwd);
        self.head[u].push(i);
        self.head[v].push(i + 1);
        Ok(())
    }

    /// Compute the maximum `s → t` flow with Dinic's algorithm.
    ///
    /// Mutates residual capacities (call on a clone to preserve the
    /// network). Errors if `s == t` or endpoints are out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Result<MaxFlowResult> {
        let mut ctx = KernelCtx::new();
        match self.max_flow_ctx(s, t, &mut ctx)? {
            SolverOutcome::Converged { value, .. } => Ok(value),
            _ => unreachable!("an inert context can neither exhaust nor diverge"),
        }
    }

    /// Run the Dinic phase loop under `ctx`; returns the routed flow
    /// value, the exit condition, and the witnessed trivial upper bound.
    fn max_flow_core(
        &mut self,
        s: usize,
        t: usize,
        ctx: &mut KernelCtx,
    ) -> Result<(f64, FlowExit)> {
        let n = self.n();
        if s >= n || t >= n {
            return Err(FlowError::InvalidArgument("endpoint out of range".into()));
        }
        if s == t {
            return Err(FlowError::InvalidArgument("source equals sink".into()));
        }
        // Witnessed trivial cuts on the *original* capacities, taken
        // before any augmentation: ({s}, rest) and (rest, {t}).
        let out_s: f64 = self.head[s].iter().map(|&ai| self.cap[ai as usize]).sum();
        let in_t: f64 = self.head[t]
            .iter()
            .map(|&ai| self.cap[(ai ^ 1) as usize])
            .sum();
        let upper = out_s.min(in_t);

        let mut total = 0.0;
        let mut phases = 0usize;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        let exit;
        // CORE LOOP
        loop {
            ctx.tick_iter();
            ctx.add_work(self.to.len() as u64);
            if let Some(exhausted) = ctx.check_budget() {
                ctx.note_with(|| {
                    format!(
                        "{exhausted} after {phases} blocking-flow phases; returning feasible partial flow"
                    )
                });
                exit = FlowExit::Exhausted { exhausted, upper };
                break;
            }
            // BFS to build the level graph.
            level.fill(-1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &ai in &self.head[u] {
                    let v = self.to[ai as usize] as usize;
                    if self.cap[ai as usize] > EPS && level[v] < 0 {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] < 0 {
                ctx.note_with(|| format!("maximum flow reached after {phases} phases"));
                exit = FlowExit::Done;
                break;
            }
            // Blocking flow via iterative DFS with arc cursors.
            iter.fill(0);
            loop {
                let pushed = self.dfs_push(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                total += pushed;
            }
            phases += 1;
            if ctx.is_guarded() && !total.is_finite() {
                exit = FlowExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: phases });
                break;
            }
            ctx.push_residual((upper - total).max(0.0));
        }
        Ok((total, exit))
    }

    /// [`max_flow`](Self::max_flow) under an explicit [`KernelCtx`]: the
    /// same phase loop with metering, guarding, and tracing routed
    /// through the context. An inert context reproduces
    /// [`max_flow`](Self::max_flow) exactly; see
    /// [`max_flow_budgeted`](Self::max_flow_budgeted) for the certified
    /// exhaustion semantics.
    pub fn max_flow_ctx(
        &mut self,
        s: usize,
        t: usize,
        ctx: &mut KernelCtx,
    ) -> Result<SolverOutcome<MaxFlowResult>> {
        let (total, exit) = self.max_flow_core(s, t, ctx)?;
        let diags = ctx.finish();
        Ok(match exit {
            FlowExit::Done => SolverOutcome::converged(
                MaxFlowResult {
                    value: total,
                    source_side: self.residual_reachable(s),
                },
                diags,
            ),
            FlowExit::Exhausted { exhausted, upper } => SolverOutcome::exhausted(
                MaxFlowResult {
                    value: total,
                    source_side: self.residual_reachable(s),
                },
                exhausted,
                Certificate::FlowGap {
                    value: total,
                    upper_bound: upper,
                },
                diags,
            ),
            FlowExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
        })
    }

    /// Nodes reachable from `s` in the current residual network (the
    /// source side of a min cut once the flow is maximum).
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.n()];
        side[s] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.head[u] {
                let v = self.to[ai as usize] as usize;
                if self.cap[ai as usize] > EPS && !side[v] {
                    side[v] = true;
                    queue.push_back(v);
                }
            }
        }
        side
    }

    /// Budgeted variant of [`max_flow`](Self::max_flow).
    ///
    /// Each Dinic blocking-flow phase costs one budget iteration and
    /// one arc sweep of work units. On exhaustion the flow routed so
    /// far is returned as a certified partial answer: it is feasible —
    /// hence a lower bound on the maximum — and the witnessed trivial
    /// cut `min(cap out of s, cap into t)` bounds the maximum from
    /// above, giving a [`Certificate::FlowGap`]. A non-finite running
    /// total (corrupted capacities slipped past construction) halts the
    /// run as [`SolverOutcome::Diverged`] rather than returning a
    /// poisoned flow.
    pub fn max_flow_budgeted(
        &mut self,
        s: usize,
        t: usize,
        budget: &Budget,
    ) -> Result<SolverOutcome<MaxFlowResult>> {
        // The guard is consulted only for the running-total finiteness
        // check after each blocking-flow phase.
        let mut ctx =
            KernelCtx::budgeted("flow.dinic", budget).with_guard(GuardConfig::contamination_only());
        self.max_flow_ctx(s, t, &mut ctx)
    }

    /// DFS from `u` pushing at most `limit` flow toward `t` along the
    /// level graph; returns the amount pushed.
    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        limit: f64,
        level: &[i32],
        iter: &mut [usize],
    ) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.head[u].len() {
            let ai = self.head[u][iter[u]] as usize;
            let v = self.to[ai] as usize;
            if self.cap[ai] > EPS && level[v] == level[u] + 1 {
                let pushed = self.dfs_push(v, t, limit.min(self.cap[ai]), level, iter);
                if pushed > EPS {
                    self.cap[ai] -= pushed;
                    self.cap[ai ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 3.5).unwrap();
        let r = net.max_flow(0, 1).unwrap();
        assert!((r.value - 3.5).abs() < 1e-9);
        assert!(r.source_side[0]);
        assert!(!r.source_side[1]);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5.0).unwrap();
        net.add_arc(1, 2, 2.0).unwrap();
        let r = net.max_flow(0, 2).unwrap();
        assert!((r.value - 2.0).abs() < 1e-9);
        // Min cut is the 1→2 arc: source side = {0, 1}.
        assert_eq!(r.source_side, vec![true, true, false]);
    }

    #[test]
    fn parallel_adds() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1.0).unwrap();
        net.add_arc(0, 1, 2.5).unwrap();
        let r = net.max_flow(0, 1).unwrap();
        assert!((r.value - 3.5).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; 0→1 (3), 0→2 (2), 1→2 (1), 1→3 (2), 2→3 (3): max flow 5.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3.0).unwrap();
        net.add_arc(0, 2, 2.0).unwrap();
        net.add_arc(1, 2, 1.0).unwrap();
        net.add_arc(1, 3, 2.0).unwrap();
        net.add_arc(2, 3, 3.0).unwrap();
        let r = net.max_flow(0, 3).unwrap();
        assert!((r.value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn undirected_edges_carry_flow_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0).unwrap();
        net.add_edge(1, 2, 1.0).unwrap();
        let r = net.max_flow(2, 0).unwrap();
        assert!((r.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1.0).unwrap();
        net.add_arc(2, 3, 1.0).unwrap();
        let r = net.max_flow(0, 3).unwrap();
        assert_eq!(r.value, 0.0);
        assert!(r.source_side[0] && r.source_side[1]);
        assert!(!r.source_side[2] && !r.source_side[3]);
    }

    #[test]
    fn min_cut_capacity_equals_flow_value() {
        // Max-flow min-cut duality on a random-ish fixed network.
        let mut net = FlowNetwork::new(6);
        let arcs = [
            (0, 1, 7.0),
            (0, 2, 4.0),
            (1, 3, 5.0),
            (2, 3, 3.0),
            (1, 4, 3.0),
            (2, 4, 2.0),
            (3, 5, 8.0),
            (4, 5, 5.0),
            (3, 4, 2.0),
        ];
        for &(u, v, c) in &arcs {
            net.add_arc(u, v, c).unwrap();
        }
        let orig = net.clone();
        let r = net.max_flow(0, 5).unwrap();
        // Recompute the cut capacity across the reported partition on
        // the *original* capacities.
        let mut cut = 0.0;
        for u in 0..6 {
            if !r.source_side[u] {
                continue;
            }
            for &ai in &orig.head[u] {
                let ai = ai as usize;
                // Only forward arcs (even indices) hold original capacity.
                if ai % 2 == 0 {
                    let v = orig.to[ai] as usize;
                    if !r.source_side[v] {
                        cut += orig.cap[ai];
                    }
                }
            }
        }
        assert!(
            (cut - r.value).abs() < 1e-9,
            "cut {cut} vs flow {}",
            r.value
        );
    }

    #[test]
    fn bottleneck_in_grid() {
        // Two triangles joined by one unit edge: flow across = 1.
        let mut net = FlowNetwork::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            net.add_edge(u, v, 1.0).unwrap();
        }
        net.add_edge(2, 3, 1.0).unwrap();
        let r = net.max_flow(0, 5).unwrap();
        assert!((r.value - 1.0).abs() < 1e-9);
        assert_eq!(r.source_side, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn validation() {
        let mut net = FlowNetwork::new(2);
        assert!(net.add_arc(0, 5, 1.0).is_err());
        assert!(net.add_arc(0, 1, -1.0).is_err());
        assert!(net.add_arc(0, 1, f64::NAN).is_err());
        net.add_arc(0, 1, 1.0).unwrap();
        assert!(net.max_flow(0, 0).is_err());
        assert!(net.max_flow(0, 9).is_err());
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3.0).unwrap();
        net.add_arc(0, 2, 2.0).unwrap();
        net.add_arc(1, 2, 1.0).unwrap();
        net.add_arc(1, 3, 2.0).unwrap();
        net.add_arc(2, 3, 3.0).unwrap();
        let mut plain = net.clone();
        let out = net.max_flow_budgeted(0, 3, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let r = out.value().unwrap();
        let p = plain.max_flow(0, 3).unwrap();
        assert!((r.value - p.value).abs() < 1e-9);
        assert_eq!(r.source_side, p.source_side);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn budgeted_exhaustion_brackets_true_max_flow() {
        // The diamond needs two Dinic phases (flow 4, then the length-3
        // augmenting path worth 1 more). Allow only one.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3.0).unwrap();
        net.add_arc(0, 2, 2.0).unwrap();
        net.add_arc(1, 2, 1.0).unwrap();
        net.add_arc(1, 3, 2.0).unwrap();
        net.add_arc(2, 3, 3.0).unwrap();
        let out = net.max_flow_budgeted(0, 3, &Budget::iterations(2)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let (lo, hi) = match out.certificate() {
            Some(&Certificate::FlowGap { value, upper_bound }) => (value, upper_bound),
            c => panic!("wrong certificate {c:?}"),
        };
        // True max flow is 5; the certificate must bracket it from
        // below by the feasible partial and from above by the cut.
        assert!((lo - 4.0).abs() < 1e-9, "partial flow {lo}");
        assert!(lo <= 5.0 + 1e-9 && 5.0 <= hi + 1e-9, "[{lo}, {hi}]");
        assert!((out.value().unwrap().value - lo).abs() < 1e-12);
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn zero_capacity_arcs_are_inert() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 0.0).unwrap();
        let r = net.max_flow(0, 1).unwrap();
        assert_eq!(r.value, 0.0);
    }
}
