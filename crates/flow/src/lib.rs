//! # acir-flow
//!
//! Flow-based partitioning substrate for the ACIR reproduction of
//! Mahoney, *"Approximate Computation and Implicit Regularization for
//! Very Large-scale Data Analysis"* (PODS 2012), case study §3.2.
//!
//! The paper's Figure 1 compares a spectral method against
//! **Metis+MQI**, a flow-based method. This crate supplies the flow
//! half:
//!
//! * [`maxflow`] — Dinic's max-flow/min-cut on weighted directed
//!   networks, the primitive everything else reduces to;
//! * [`push_relabel`] — Goldberg–Tarjan push–relabel with gap and
//!   global-relabel heuristics: an independent second implementation,
//!   cross-checked against Dinic on random networks;
//! * [`mod@mqi`] — MQI (Lang–Rao), which improves a given cut to the
//!   best-quotient subset on its small side by repeated max-flows;
//! * [`improve`] — Andersen–Lang FlowImprove (paper ref \[3\]), the
//!   locally-biased flow method that §3.3's footnote predicts should
//!   out-"nice" local spectral methods on expander-like data.
//!
//! Flow-based methods "effectively embed the data into an ℓ₁ metric
//! space" (§3.2) — the implicit geometry responsible for their sharp,
//! quota-hitting cuts in Figure 1(a) and their poorer "niceness" in
//! Figures 1(b–c).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod improve;
pub mod maxflow;
pub mod mqi;
pub mod push_relabel;

pub use improve::{flow_improve, FlowImproveResult};
pub use maxflow::{FlowNetwork, MaxFlowResult};
pub use mqi::{mqi, mqi_budgeted, mqi_ctx, MqiResult};
pub use push_relabel::PushRelabelNetwork;

/// Errors from the flow layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Invalid argument (bad node ids, empty sets, etc.).
    InvalidArgument(String),
    /// Underlying graph error.
    Graph(acir_graph::GraphError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FlowError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<acir_graph::GraphError> for FlowError {
    fn from(e: acir_graph::GraphError) -> Self {
        FlowError::Graph(e)
    }
}

/// Result alias for flow operations.
pub type Result<T> = std::result::Result<T, FlowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(FlowError::InvalidArgument("x".into())
            .to_string()
            .contains("x"));
        let ge: FlowError = acir_graph::GraphError::BadWeight(1.0).into();
        assert!(ge.to_string().contains("graph"));
    }
}
