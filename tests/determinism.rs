//! Reproducibility: every stochastic component of the reproduction is
//! a pure function of its seed. (The paper's experiments must be
//! exactly re-runnable; see DESIGN.md §2.)

use acir::prelude::*;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::gen::random::{
    barabasi_albert, erdos_renyi_gnp, forest_fire, random_regular, watts_strogatz,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn all_random_generators_are_seed_deterministic() {
    assert_eq!(
        erdos_renyi_gnp(&mut rng(1), 80, 0.1).unwrap(),
        erdos_renyi_gnp(&mut rng(1), 80, 0.1).unwrap()
    );
    assert_eq!(
        barabasi_albert(&mut rng(2), 150, 3).unwrap(),
        barabasi_albert(&mut rng(2), 150, 3).unwrap()
    );
    assert_eq!(
        watts_strogatz(&mut rng(3), 90, 4, 0.2).unwrap(),
        watts_strogatz(&mut rng(3), 90, 4, 0.2).unwrap()
    );
    assert_eq!(
        random_regular(&mut rng(4), 60, 5).unwrap(),
        random_regular(&mut rng(4), 60, 5).unwrap()
    );
    assert_eq!(
        forest_fire(&mut rng(5), 120, 0.3).unwrap(),
        forest_fire(&mut rng(5), 120, 0.3).unwrap()
    );
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        erdos_renyi_gnp(&mut rng(1), 80, 0.1).unwrap(),
        erdos_renyi_gnp(&mut rng(2), 80, 0.1).unwrap()
    );
}

#[test]
fn multilevel_partitioner_is_deterministic() {
    let pc = social_network(
        &mut rng(9),
        &SocialNetworkParams {
            core_nodes: 200,
            core_attach: 3,
            communities: 4,
            community_size_range: (5, 30),
            whiskers: 10,
            whisker_max_len: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let g = &pc.graph;
    let opts = MultilevelOptions::default();
    let a = multilevel_bisect(g, &opts).unwrap();
    let b = multilevel_bisect(g, &opts).unwrap();
    assert_eq!(a.side, b.side);
    assert_eq!(a.cut, b.cut);
}

#[test]
fn ncp_pipelines_are_deterministic_across_thread_counts() {
    // The per-chunk merge makes the result independent of scheduling —
    // and it must also be identical for different thread counts, since
    // chunking only changes work distribution, not the set of runs.
    let g = gen::deterministic::ring_of_cliques(6, 8).unwrap();
    let base = NcpOptions {
        min_size: 2,
        max_size: 60,
        seeds: 12,
        alphas: vec![0.2, 0.05],
        epsilons: vec![1e-3],
        threads: 1,
        ..Default::default()
    };
    let mut two = base.clone();
    two.threads = 2;
    let mut four = base.clone();
    four.threads = 4;
    let a = ncp_local_spectral(&g, &base).unwrap();
    let b = ncp_local_spectral(&g, &two).unwrap();
    let c = ncp_local_spectral(&g, &four).unwrap();
    let key = |pts: &[acir_partition::NcpPoint]| -> Vec<(usize, Vec<u32>)> {
        pts.iter().map(|p| (p.size, p.set.clone())).collect()
    };
    assert_eq!(key(&a), key(&b));
    assert_eq!(key(&a), key(&c));
}

/// Run `f` with the `ACIR_THREADS` override set to `n`, then clear it.
///
/// Every env-flipping assertion lives in the single test below — tests
/// in one binary run concurrently, and a second test racing on the same
/// process-global variable would make thread counts nondeterministic in
/// exactly the suite that checks determinism.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

#[test]
fn parallel_kernels_bit_identical_across_env_thread_counts() {
    let pc = social_network(
        &mut rng(17),
        &SocialNetworkParams {
            core_nodes: 300,
            core_attach: 3,
            communities: 6,
            community_size_range: (5, 40),
            whiskers: 12,
            whisker_max_len: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let (g, _) = acir_graph::traversal::largest_component(&pc.graph);

    // Lanczos Fiedler solve: same eigenpair to the last bit.
    let f1 = with_threads(1, || fiedler_vector(&g).unwrap());
    let f4 = with_threads(4, || fiedler_vector(&g).unwrap());
    assert_eq!(f1.lambda2.to_bits(), f4.lambda2.to_bits());
    assert_eq!(f1.vector, f4.vector);

    // PPR push plus the sweep over its embedding: same vector, same cut.
    let p1 = with_threads(1, || ppr_push(&g, &[0, 5], 0.08, 1e-4).unwrap());
    let p4 = with_threads(4, || ppr_push(&g, &[0, 5], 0.08, 1e-4).unwrap());
    assert_eq!(p1.vector, p4.vector);
    assert_eq!(p1.pushes, p4.pushes);
    let dense = |sparse: &[(NodeId, f64)]| {
        let mut x = vec![0.0; g.n()];
        for &(u, v) in sparse {
            x[u as usize] = v;
        }
        x
    };
    let s1 = sweep_cut_support(&g, &dense(&p1.vector));
    let s4 = sweep_cut_support(&g, &dense(&p4.vector));
    assert_eq!(s1.set, s4.set);
    assert_eq!(s1.conductance.to_bits(), s4.conductance.to_bits());

    // Batched pushes distribute seeds across workers; still identical.
    let sets: Vec<Vec<NodeId>> = (0..6).map(|i| vec![i * 40]).collect();
    let b1 = with_threads(1, || ppr_push_batch(&g, &sets, 0.08, 1e-4).unwrap());
    let b4 = with_threads(4, || ppr_push_batch(&g, &sets, 0.08, 1e-4).unwrap());
    for (ra, rb) in b1.iter().zip(&b4) {
        assert_eq!(ra.vector, rb.vector);
    }

    // The quick NCP sweep (the perfsuite's workload): same envelope.
    let opts = NcpOptions {
        min_size: 2,
        max_size: 120,
        seeds: 10,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-3],
        ..Default::default()
    };
    let n1 = with_threads(1, || ncp_local_spectral(&g, &opts).unwrap());
    let n4 = with_threads(4, || ncp_local_spectral(&g, &opts).unwrap());
    assert_eq!(n1.len(), n4.len());
    for (pa, pb) in n1.iter().zip(&n4) {
        assert_eq!(pa.size, pb.size);
        assert_eq!(pa.conductance.to_bits(), pb.conductance.to_bits());
        assert_eq!(pa.set, pb.set);
    }
}

#[test]
fn deterministic_solvers_are_bitwise_stable() {
    let g = gen::deterministic::barbell(7, 1).unwrap();
    let f1 = fiedler_vector(&g).unwrap();
    let f2 = fiedler_vector(&g).unwrap();
    assert_eq!(f1.lambda2, f2.lambda2);
    assert_eq!(f1.vector, f2.vector);

    let p1 = ppr_push(&g, &[0], 0.1, 1e-5).unwrap();
    let p2 = ppr_push(&g, &[0], 0.1, 1e-5).unwrap();
    assert_eq!(p1.vector, p2.vector);
    assert_eq!(p1.pushes, p2.pushes);

    let m1 = mqi(&g, &[0, 1, 2, 3, 4, 5, 6]).unwrap();
    let m2 = mqi(&g, &[0, 1, 2, 3, 4, 5, 6]).unwrap();
    assert_eq!(m1.set, m2.set);
}
