//! Property-based cross-crate invariants on randomly generated graphs.

use acir::prelude::*;
use acir_graph::traversal::largest_component;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected graph via ER + largest component.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (6usize..28, 0u64..1000)
        .prop_map(|(n, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Density above the connectivity threshold most of the time.
            let p = (2.2 * (n as f64).ln() / n as f64).min(0.9);
            let g = acir_graph::gen::random::erdos_renyi_gnp(&mut rng, n, p).unwrap();
            largest_component(&g).0
        })
        .prop_filter("need >= 4 nodes", |g| g.n() >= 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The normalized Laplacian of any graph is PSD with spectrum in
    /// \[0, 2\], and its Fiedler pair satisfies the eigen equation.
    #[test]
    fn laplacian_spectrum_in_bounds(g in arb_connected_graph()) {
        let nl = normalized_laplacian(&g);
        let eig = acir_linalg::SymEig::new(&nl.to_dense()).unwrap();
        prop_assert!(eig.eigenvalues[0] > -1e-9);
        prop_assert!(*eig.eigenvalues.last().unwrap() < 2.0 + 1e-9);
        let f = fiedler_vector(&g).unwrap();
        prop_assert!((f.rayleigh - f.lambda2).abs() < 1e-7);
    }

    /// Sweep-cut conductance always matches a direct recomputation,
    /// and satisfies the Cheeger upper bound.
    #[test]
    fn sweep_cut_is_consistent_and_cheeger_bounded(g in arb_connected_graph()) {
        let cut = spectral_bisect(&g).unwrap();
        let direct = set_conductance(&g, &cut.sweep.set);
        prop_assert!((cut.sweep.conductance - direct).abs() < 1e-9);
        prop_assert!(cut.sweep.conductance <= (2.0 * cut.lambda2).sqrt() + 1e-9);
        prop_assert!(cut.sweep.conductance >= cut.lambda2 / 2.0 - 1e-9);
    }

    /// PPR push: mass conservation, residual bound, and agreement with
    /// the exact lazy PPR within ε per unit degree.
    #[test]
    fn push_invariants(g in arb_connected_graph(), raw_seed in 0u32..1000, eps_pow in 3u32..6) {
        let seed = raw_seed % g.n() as u32;
        let eps = 10f64.powi(-(eps_pow as i32));
        let r = ppr_push(&g, &[seed], 0.15, eps).unwrap();
        let p_mass: f64 = r.vector.iter().map(|&(_, x)| x).sum();
        prop_assert!((p_mass + r.residual_mass - 1.0).abs() < 1e-9);
        let exact = acir_local::push::ppr_exact_reference(&g, &[seed], 0.15, 4000).unwrap();
        let dense = r.to_dense(g.n());
        for u in 0..g.n() {
            let err = (exact[u] - dense[u]) / g.degree(u as u32).max(1e-300);
            prop_assert!(err >= -1e-7 && err <= eps + 1e-7, "node {u}: {err}");
        }
    }

    /// MQI output is a subset of its input side and never has worse
    /// conductance.
    #[test]
    fn mqi_improves_subsets(g in arb_connected_graph(), bits in 0u64..u64::MAX) {
        let total = g.total_volume();
        let side: Vec<NodeId> = (0..g.n() as u32)
            .filter(|&u| (bits >> (u % 60)) & 1 == 1)
            .collect();
        prop_assume!(!side.is_empty());
        prop_assume!(g.volume(&side) <= total / 2.0);
        let before = conductance(&g, &side).unwrap();
        let r = mqi(&g, &side).unwrap();
        prop_assert!(r.conductance <= before + 1e-9);
        let side_set: std::collections::HashSet<_> = side.iter().collect();
        prop_assert!(r.set.iter().all(|u| side_set.contains(u)));
    }

    /// Max-flow equals min-cut capacity on random unit-capacity
    /// networks (duality, checked independently).
    #[test]
    fn maxflow_mincut_duality(g in arb_connected_graph(), s_raw in 0u32..100, t_raw in 0u32..100) {
        let n = g.n() as u32;
        let s = s_raw % n;
        let t = t_raw % n;
        prop_assume!(s != t);
        let mut net = acir_flow::FlowNetwork::new(g.n());
        for (u, v, w) in g.edges() {
            net.add_edge(u as usize, v as usize, w).unwrap();
        }
        let orig = net.clone();
        let r = net.max_flow(s as usize, t as usize).unwrap();
        // Recompute the cut across the partition on original capacities.
        let mut cut = 0.0;
        for (u, v, w) in g.edges() {
            if r.source_side[u as usize] != r.source_side[v as usize] {
                cut += w;
            }
        }
        let _ = orig;
        prop_assert!((cut - r.value).abs() < 1e-6, "cut {cut} vs flow {}", r.value);
        prop_assert!(r.source_side[s as usize]);
        prop_assert!(!r.source_side[t as usize]);
    }

    /// The heat kernel preserves probability mass and converges to the
    /// stationary distribution as t grows.
    #[test]
    fn heat_kernel_stochasticity(g in arb_connected_graph(), raw_seed in 0u32..1000) {
        let seed = raw_seed % g.n() as u32;
        // Work in the random-walk frame: D^{1/2} exp(-t·𝓛) D^{-1/2}
        // preserves 1-mass; equivalently check that the symmetric heat
        // kernel preserves the D^{1/2}-weighted inner product with the
        // trivial eigenvector.
        let out = heat_kernel(&g, 2.0, &Seed::Node(seed), 40).unwrap();
        let v1 = acir_spectral::trivial_eigenvector(&g);
        let before: f64 = v1[seed as usize] * 1.0;
        let after: f64 = out.iter().zip(&v1).map(|(a, b)| a * b).sum();
        prop_assert!((before - after).abs() < 1e-8);
    }

    /// Graph IO round trips: edge-list and METIS formats both
    /// reconstruct the graph exactly for arbitrary random inputs.
    #[test]
    fn io_roundtrips(g in arb_connected_graph()) {
        let mut buf = Vec::new();
        acir_graph::io::write_edge_list(&g, &mut buf).unwrap();
        prop_assert_eq!(&acir_graph::io::read_edge_list(buf.as_slice(), g.n()).unwrap(), &g);
        let mut buf = Vec::new();
        acir_graph::io::write_metis(&g, &mut buf).unwrap();
        prop_assert_eq!(&acir_graph::io::read_metis(buf.as_slice()).unwrap(), &g);
        let data = acir_graph::io::GraphData::from(&g);
        prop_assert_eq!(&data.to_graph().unwrap(), &g);
    }

    /// Three independent heat-kernel routes agree on arbitrary graphs:
    /// dense spectral (via SymEig), Krylov (expm_multiply), and
    /// Chebyshev recurrence.
    #[test]
    fn heat_kernel_routes_agree_on_random_graphs(
        g in arb_connected_graph(),
        t_raw in 1u32..40,
        seed_raw in 0u32..1000,
    ) {
        let t = t_raw as f64 * 0.1;
        let seed = seed_raw % g.n() as u32;
        let n = g.n();
        let nl = normalized_laplacian(&g);
        let mut s = vec![0.0; n];
        s[seed as usize] = 1.0;
        // Dense spectral route.
        let eig = acir_linalg::SymEig::new(&nl.to_dense()).unwrap();
        let h = eig.matrix_function(|lam| (-t * lam).exp());
        let mut dense = vec![0.0; n];
        h.gemv(1.0, &s, 0.0, &mut dense);
        // Krylov route.
        let krylov = heat_kernel(&g, t, &Seed::Node(seed), n).unwrap();
        // Chebyshev route.
        let cheb = acir_linalg::chebyshev::cheb_heat_kernel(&nl, t, &s, 2.0, 50).unwrap();
        prop_assert!(acir_linalg::vector::dist2(&dense, &krylov) < 1e-8);
        prop_assert!(acir_linalg::vector::dist2(&dense, &cheb) < 1e-8);
    }

    /// Whisker extraction invariants on arbitrary graphs: each whisker's
    /// conductance matches the direct computation, whisker node counts
    /// match the independent shaving census, and whiskers are disjoint.
    #[test]
    fn whisker_invariants(g in arb_connected_graph()) {
        let ws = acir_partition::whisker::whiskers(&g).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for w in &ws {
            for &u in &w.nodes {
                prop_assert!(seen.insert(u), "whiskers overlap at node {u}");
            }
            total += w.nodes.len();
            let direct = conductance(&g, &w.nodes).unwrap();
            prop_assert!((w.conductance() - direct).abs() < 1e-9);
        }
        let (census, _) = acir_graph::stats::whisker_census(&g);
        if g.m() + 1 == g.n() {
            // A tree has no 2-core: the census shaves everything but
            // there are no whiskers *of* anything (documented behavior).
            prop_assert_eq!(total, 0);
        } else {
            prop_assert_eq!(total, census);
        }
    }

    /// The regularized SDP optimum always lies between the trivial
    /// bounds: λ₂ ≤ Tr(𝓛X*) ≤ mean(λ).
    #[test]
    fn sdp_objective_bounds(g in arb_connected_graph(), eta_pow in -2i32..2) {
        let sp = SpectralProblem::new(&g).unwrap();
        let eta = 10f64.powi(eta_pow);
        for reg in [Regularizer::Entropy, Regularizer::LogDet, Regularizer::PNorm(1.5)] {
            let sol = solve_regularized_sdp(&sp, reg, eta).unwrap();
            let mean = sp.lambda.iter().sum::<f64>() / sp.lambda.len() as f64;
            prop_assert!(sol.linear_objective >= sp.lambda2() - 1e-9);
            prop_assert!(sol.linear_objective <= mean + 1e-9,
                "{reg:?}: {} > {mean}", sol.linear_objective);
        }
    }
}

/// `I + 𝓛`: a strictly positive-definite system for exercising CG.
struct ShiftPlusIdentity<'a>(&'a dyn acir_linalg::LinOp);

impl acir_linalg::LinOp for ShiftPlusIdentity<'_> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.0.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += xi;
        }
    }
}

// Fault-injection and resilience invariants: the runtime's structural
// guarantees, checked property-style across random graphs, fault
// onsets, and budgets.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Total NaN injection after a few clean operator applies: every
    /// budgeted linear-algebra kernel returns a structured outcome
    /// whose usable value (if any) is fully finite — a poisoned
    /// `Converged` is never produced — and a divergence always carries
    /// a non-empty event trail.
    #[test]
    fn nan_injection_never_poisons_outcomes(
        g in arb_connected_graph(),
        onset in 0u64..4,
        fault_seed in 0u64..1000,
    ) {
        let n = g.n();
        let nl = normalized_laplacian(&g);
        let cfg = acir_runtime::FaultConfig::nans(1.0)
            .after_clean_applies(onset)
            .with_seed(fault_seed);
        let mut v0 = vec![0.0; n];
        v0[0] = 1.0;
        v0[n - 1] += 0.5;

        // Power method.
        let faulty = acir_linalg::FaultyOp::new(&nl, cfg);
        let opts = acir_linalg::PowerOptions { max_iters: 50, tol: 1e-12, deflate: vec![] };
        let out = acir_linalg::power_method_budgeted(&faulty, &v0, &opts, &Budget::unlimited()).unwrap();
        match out.value() {
            Some(r) => {
                prop_assert!(r.eigenvalue.is_finite());
                prop_assert!(r.eigenvector.iter().all(|x| x.is_finite()));
            }
            None => prop_assert!(!out.diagnostics().events.is_empty()),
        }

        // CG on the strictly SPD system I + 𝓛.
        let spd = ShiftPlusIdentity(&nl);
        let faulty = acir_linalg::FaultyOp::new(&spd, cfg);
        let out = acir_linalg::cg_budgeted(
            &faulty, &v0, &vec![0.0; n], &acir_linalg::CgOptions::default(), &Budget::iterations(60),
        ).unwrap();
        match out.value() {
            Some(r) => prop_assert!(r.x.iter().all(|x| x.is_finite())),
            None => prop_assert!(!out.diagnostics().events.is_empty()),
        }

        // Lanczos.
        let faulty = acir_linalg::FaultyOp::new(&nl, cfg);
        let out = acir_linalg::lanczos_budgeted(&faulty, &v0, n.min(12), &[], &Budget::unlimited()).unwrap();
        match out.value() {
            Some(r) => {
                prop_assert!(r.alpha.iter().chain(&r.beta).all(|x| x.is_finite()));
                prop_assert!(r.basis.iter().flatten().all(|x| x.is_finite()));
            }
            None => prop_assert!(!out.diagnostics().events.is_empty()),
        }

        // Chebyshev heat kernel.
        let faulty = acir_linalg::FaultyOp::new(&nl, cfg);
        let out = acir_linalg::chebyshev::cheb_heat_kernel_budgeted(
            &faulty, 1.5, &v0, 2.0, 30, &Budget::unlimited(),
        ).unwrap();
        match out.value() {
            Some(r) => prop_assert!(r.iter().all(|x| x.is_finite())),
            None => prop_assert!(!out.diagnostics().events.is_empty()),
        }
    }

    /// Wall-clock deadlines bind: an otherwise-endless power iteration
    /// under `Budget::deadline(d)` returns promptly after `d`, reports
    /// exhaustion on the deadline axis, and still hands back a finite
    /// best-so-far iterate.
    #[test]
    fn deadlines_bind_within_tolerance(g in arb_connected_graph(), ms in 0u64..20) {
        let nl = normalized_laplacian(&g);
        let v0 = vec![1.0; g.n()];
        // tol = 0 means the tolerance can never be met: only the
        // deadline can stop this run.
        let opts = acir_linalg::PowerOptions { max_iters: usize::MAX, tol: 0.0, deflate: vec![] };
        let budget = Budget::deadline(std::time::Duration::from_millis(ms));
        let t0 = std::time::Instant::now();
        let out = acir_linalg::power_method_budgeted(&nl, &v0, &opts, &budget).unwrap();
        let elapsed = t0.elapsed();
        prop_assert!(
            matches!(
                out,
                SolverOutcome::BudgetExhausted { exhausted: acir_runtime::Exhaustion::Deadline, .. }
            ),
            "expected deadline exhaustion, got converged={} usable={}",
            out.is_converged(),
            out.is_usable()
        );
        let r = out.value().expect("deadline exhaustion keeps best-so-far");
        prop_assert!(r.eigenvalue.is_finite());
        prop_assert!(
            elapsed < std::time::Duration::from_millis(ms + 400),
            "took {elapsed:?} against a {ms}ms deadline"
        );
    }

    /// Truncated PPR push at any work budget: the partial vector plus
    /// the certificate's residual mass account for all probability
    /// mass, so the certified error bound is trustworthy.
    #[test]
    fn ppr_budget_certificate_accounts_for_all_mass(
        g in arb_connected_graph(),
        raw_seed in 0u32..1000,
        work in 1u64..40,
    ) {
        let seed = raw_seed % g.n() as u32;
        let out = ppr_push_budgeted(&g, &[seed], 0.15, 1e-7, &Budget::work(work)).unwrap();
        prop_assert!(out.is_usable());
        let r = out.value().expect("usable");
        let p_mass: f64 = r.vector.iter().map(|&(_, x)| x).sum();
        prop_assert!((p_mass + r.residual_mass - 1.0).abs() < 1e-9);
        if let Some(Certificate::ResidualMass { remaining, per_degree_bound }) = out.certificate() {
            prop_assert!((remaining - r.residual_mass).abs() < 1e-9);
            prop_assert!(*remaining >= -1e-12);
            prop_assert!(*per_degree_bound >= 0.0);
        }
    }
}

// Satellite invariants for the flow layer: two independent max-flow
// implementations must agree with each other and with the cut each one
// witnesses — strong duality checked from both sides.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dinic and push–relabel compute the same maximum flow on random
    /// weighted networks, and each solver's witnessed source side is a
    /// cut whose capacity equals its flow value (max-flow = min-cut).
    #[test]
    fn dinic_and_push_relabel_agree(
        g in arb_connected_graph(),
        s_raw in 0u32..100,
        t_raw in 0u32..100,
        cap_seed in 0u64..1000,
    ) {
        let n = g.n() as u32;
        let s = s_raw % n;
        let t = t_raw % n;
        prop_assume!(s != t);
        // Deterministic pseudo-random capacities in [0.5, 4.5].
        let cap_of = |u: u32, v: u32| -> f64 {
            let h = (u as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((v as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                .wrapping_add(cap_seed);
            0.5 + (h % 1000) as f64 / 250.0
        };
        let arcs: Vec<(u32, u32, f64)> = g
            .edges()
            .map(|(u, v, _)| (u, v, cap_of(u.min(v), u.max(v))))
            .collect();
        let mut dinic = acir_flow::FlowNetwork::new(g.n());
        let mut pr = acir_flow::PushRelabelNetwork::new(g.n());
        for &(u, v, c) in &arcs {
            dinic.add_edge(u as usize, v as usize, c).unwrap();
            pr.add_edge(u as usize, v as usize, c).unwrap();
        }
        let rd = dinic.max_flow(s as usize, t as usize).unwrap();
        let rp = pr.max_flow(s as usize, t as usize).unwrap();
        // The two algorithms agree on the optimum.
        prop_assert!(
            (rd.value - rp.value).abs() < 1e-6 * (1.0 + rd.value.abs()),
            "dinic {} vs push-relabel {}",
            rd.value,
            rp.value
        );
        // Each witnessed cut has capacity equal to its flow value,
        // recomputed on the original (undirected) capacities.
        for r in [&rd, &rp] {
            prop_assert!(r.source_side[s as usize]);
            prop_assert!(!r.source_side[t as usize]);
            let cut: f64 = arcs
                .iter()
                .filter(|&&(u, v, _)| r.source_side[u as usize] != r.source_side[v as usize])
                .map(|&(_, _, c)| c)
                .sum();
            prop_assert!(
                (cut - r.value).abs() < 1e-6 * (1.0 + r.value.abs()),
                "cut {cut} vs flow {}",
                r.value
            );
        }
    }
}
