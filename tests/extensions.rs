//! Integration tests for the extension modules (spectral clustering,
//! streaming PageRank, Chebyshev matrix functions, Bayesian risk) —
//! exercising them together and against the core stack.

use acir::prelude::*;
use acir_graph::gen::community::planted_partition;
use acir_graph::traversal::largest_component;
use acir_linalg::chebyshev::cheb_heat_kernel;
use acir_linalg::vector;
use acir_regularize::robustness::{risk_profile, PopulationModel};
use acir_spectral::embedding::{adjusted_rand_index, spectral_clustering};
use acir_spectral::ranking::{kendall_tau, pagerank_scores};
use acir_spectral::streaming::streaming_pagerank_of_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Three heat-kernel routes (dense-eigen via the diffusion API's Krylov
/// backend, and the Chebyshev recurrence) agree on a real graph.
#[test]
fn heat_kernel_routes_agree() {
    let g = gen::deterministic::lollipop(10, 6).unwrap();
    let t = 2.5;
    let krylov = heat_kernel(&g, t, &Seed::Node(3), g.n()).unwrap();
    let nl = normalized_laplacian(&g);
    let mut seed = vec![0.0; g.n()];
    seed[3] = 1.0;
    // Chebyshev needs exp(−t·𝓛): pass 𝓛 and the function handles −t.
    let cheb = cheb_heat_kernel(&nl, t, &seed, 2.0, 60).unwrap();
    assert!(
        vector::dist2(&krylov, &cheb) < 1e-9,
        "gap {}",
        vector::dist2(&krylov, &cheb)
    );
}

/// Chebyshev degree controls locality: low-degree approximations of a
/// delta seed cannot reach beyond their degree in hops — truncation is
/// structurally local, the §3.3 theme in polynomial form.
#[test]
fn chebyshev_degree_bounds_reach() {
    let g = gen::deterministic::path(50).unwrap();
    let nl = normalized_laplacian(&g);
    let mut seed = vec![0.0; 50];
    seed[0] = 1.0;
    let out = cheb_heat_kernel(&nl, 3.0, &seed, 2.0, 8).unwrap();
    for (u, &x) in out.iter().enumerate() {
        if u > 8 {
            assert!(x.abs() < 1e-12, "node {u} reached with degree 8");
        }
    }
}

/// k-way spectral clustering on an SBM agrees with the planted labels
/// and with what the (independent) conductance machinery says about
/// the recovered groups.
#[test]
fn spectral_clustering_clusters_have_low_conductance() {
    let mut rng = StdRng::seed_from_u64(11);
    let pc = planted_partition(&mut rng, 4, 25, 0.5, 0.02).unwrap();
    let (g, map) = largest_component(&pc.graph);
    let assign = spectral_clustering(&g, 4, 8, &mut rng).unwrap();
    let truth: Vec<u32> = map.iter().map(|&o| pc.community[o as usize]).collect();
    assert!(adjusted_rand_index(&assign, &truth) > 0.9);
    // Each recovered cluster is a good community by the partition
    // crate's standards.
    for c in 0..4u32 {
        let members: Vec<NodeId> = (0..g.n() as u32)
            .filter(|&u| assign[u as usize] == c)
            .collect();
        if members.len() < 2 || g.volume(&members) > g.total_volume() / 2.0 {
            continue;
        }
        let phi = conductance(&g, &members).unwrap();
        assert!(phi < 0.3, "cluster {c}: φ = {phi}");
    }
}

/// Streaming PageRank converges toward the exact CG-based solve as the
/// walker budget grows — two completely different computational models
/// for the same object.
#[test]
fn streaming_estimate_approaches_exact() {
    let mut rng = StdRng::seed_from_u64(12);
    let g = gen::random::barabasi_albert(&mut rng, 200, 3).unwrap();
    let exact = pagerank_scores(&g, 0.2).unwrap();
    let est = streaming_pagerank_of_graph(&g, 0.2, 30_000, 100, &mut rng).unwrap();
    assert!(kendall_tau(&exact, &est.scores) > 0.6);
    // Memory stays at the walker table regardless of graph size.
    assert_eq!(est.peak_memory_slots, 30_000);
}

/// The Bayesian-risk machinery composes with the generators: stronger
/// noise ⇒ more to gain from regularization.
#[test]
fn regularization_gain_grows_with_noise() {
    let mut rng = StdRng::seed_from_u64(13);
    let etas = [1.0, 4.0, 16.0, 64.0];
    let noisy = PopulationModel {
        block_size: 12,
        p_in: 0.55,
        p_out: 0.35,
    };
    let clean = PopulationModel {
        block_size: 12,
        p_in: 0.9,
        p_out: 0.05,
    };
    let noisy_profile = risk_profile(&noisy, &etas, 10, &mut rng).unwrap();
    let clean_profile = risk_profile(&clean, &etas, 10, &mut rng).unwrap();
    assert!(noisy_profile.improvement() > clean_profile.improvement());
    assert!(noisy_profile.improvement() > 0.05);
}
