//! The unified-context contract: every legacy entry-point variant
//! (`*_ws`, `*_budgeted`, `*_batch`, `*_multi`) is a thin wrapper over
//! the one `*_ctx` core loop, so each must return *bitwise identical*
//! output to the explicit [`KernelCtx`] call — an unlimited budget, a
//! caller-held workspace, or a batched schedule may change cost, never
//! arithmetic. This suite is the executable matrix of that claim,
//! checked at `ACIR_THREADS` 1 and 4 (DESIGN.md §10).

use acir::prelude::*;
use acir_flow::FlowNetwork;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::traversal::largest_component;
use acir_linalg::chebyshev::{cheb_heat_kernel, cheb_heat_kernel_multi, ChebyshevExpansion};
use acir_linalg::power::{power_method, power_method_budgeted, power_method_ctx, power_method_ws};
use acir_linalg::solve::{cg, cg_budgeted, cg_ctx, cg_ws, CgOptions};
use acir_linalg::{lanczos, lanczos_budgeted, lanczos_ctx, PowerOptions};
use acir_local::sweep::sweep_cut_ctx;
use acir_spectral::Seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> Graph {
    let pc = social_network(
        &mut StdRng::seed_from_u64(61),
        &SocialNetworkParams {
            core_nodes: 220,
            core_attach: 3,
            communities: 4,
            community_size_range: (6, 24),
            whiskers: 6,
            whisker_max_len: 3,
            ..Default::default()
        },
    )
    .unwrap();
    largest_component(&pc.graph).0
}

/// A deterministic, dense, nowhere-zero start vector.
fn start_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (0.37 * i as f64).sin()).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn sparse_bits(v: &[(NodeId, f64)]) -> Vec<(NodeId, u64)> {
    v.iter().map(|&(u, x)| (u, x.to_bits())).collect()
}

/// Unwrap a generously-budgeted outcome, which must have converged.
fn converged<T>(out: SolverOutcome<T>, what: &str) -> T {
    match out {
        SolverOutcome::Converged { value, .. } => value,
        _ => panic!("{what}: unlimited budget failed to converge"),
    }
}

/// Set `ACIR_THREADS`, run, unset. Every env-flipping assertion lives
/// in the single test below — tests in one binary run concurrently,
/// and a second test racing on the process-global variable would
/// corrupt exactly what this suite checks.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

fn check_linalg(g: &Graph) {
    let nl = normalized_laplacian(g);
    let n = g.n();
    let v0 = start_vector(n);

    // power_method: plain / _ws / _budgeted(unlimited) vs _ctx(inert).
    // A positive tolerance so every route exits Converged — a pure
    // early-stopping run (`tol: 0.0`) exits through the budget axis on
    // the budgeted path, which is a different (still value-identical)
    // outcome shape.
    let opts = PowerOptions {
        max_iters: 2_000,
        tol: 1e-8,
        deflate: vec![],
    };
    let mut ctx = KernelCtx::new();
    let reference = converged(
        power_method_ctx(&nl, &v0, &opts, &mut ctx).unwrap(),
        "power",
    );
    let plain = power_method(&nl, &v0, &opts).unwrap();
    let mut ws = Workspace::default();
    let via_ws = power_method_ws(&nl, &v0, &opts, &mut ws).unwrap();
    let budgeted = converged(
        power_method_budgeted(&nl, &v0, &opts, &Budget::unlimited()).unwrap(),
        "power_budgeted",
    );
    for (label, r) in [("plain", &plain), ("ws", &via_ws), ("budgeted", &budgeted)] {
        assert_eq!(
            bits(&reference.eigenvector),
            bits(&r.eigenvector),
            "power_method ({label}) drifted from the ctx call"
        );
        assert_eq!(reference.eigenvalue.to_bits(), r.eigenvalue.to_bits());
        assert_eq!(reference.iterations, r.iterations);
    }

    // cg: plain / _ws / _budgeted(unlimited) vs _ctx(inert).
    let b = start_vector(n);
    let x0 = vec![0.0; n];
    let cg_opts = CgOptions {
        max_iters: 80,
        tol: 1e-10,
    };
    // 𝓛 is singular; shift to I + 𝓛 for an SPD solve.
    let spd = acir_linalg::ShiftedOp::new(&nl, 1.0, 1.0);
    let mut ctx = KernelCtx::new();
    let reference = converged(cg_ctx(&spd, &b, &x0, &cg_opts, &mut ctx).unwrap(), "cg");
    let plain = cg(&spd, &b, &x0, &cg_opts).unwrap();
    let mut ws = Workspace::default();
    let via_ws = cg_ws(&spd, &b, &x0, &cg_opts, &mut ws).unwrap();
    let budgeted = converged(
        cg_budgeted(&spd, &b, &x0, &cg_opts, &Budget::unlimited()).unwrap(),
        "cg_budgeted",
    );
    for (label, r) in [("plain", &plain), ("ws", &via_ws), ("budgeted", &budgeted)] {
        assert_eq!(
            bits(&reference.x),
            bits(&r.x),
            "cg ({label}) drifted from the ctx call"
        );
        assert_eq!(reference.iterations, r.iterations);
    }

    // lanczos: plain / _budgeted(unlimited) vs _ctx(inert).
    let mut ctx = KernelCtx::new();
    let reference = converged(lanczos_ctx(&nl, &v0, 12, &[], &mut ctx).unwrap(), "lanczos");
    let plain = lanczos(&nl, &v0, 12, &[]).unwrap();
    let budgeted = converged(
        lanczos_budgeted(&nl, &v0, 12, &[], &Budget::unlimited()).unwrap(),
        "lanczos_budgeted",
    );
    for (label, r) in [("plain", &plain), ("budgeted", &budgeted)] {
        assert_eq!(bits(&reference.alpha), bits(&r.alpha), "lanczos ({label})");
        assert_eq!(bits(&reference.beta), bits(&r.beta), "lanczos ({label})");
        assert_eq!(reference.basis.len(), r.basis.len());
        for (a, c) in reference.basis.iter().zip(&r.basis) {
            assert_eq!(bits(a), bits(c), "lanczos ({label}) basis drifted");
        }
    }

    // Chebyshev application: plain / _ws / _budgeted(unlimited) vs
    // _ctx(inert), plus the blocked _multi per-column.
    let exp = ChebyshevExpansion::fit(|x| (-0.8 * x).exp(), 0.0, 2.0, 24).unwrap();
    let mut ctx = KernelCtx::new();
    let reference = converged(exp.apply_ctx(&nl, &v0, &mut ctx).unwrap(), "chebyshev");
    let plain = exp.apply(&nl, &v0).unwrap();
    let mut ws = Workspace::default();
    let via_ws = exp.apply_ws(&nl, &v0, &mut ws).unwrap();
    let budgeted = converged(
        exp.apply_budgeted(&nl, &v0, &Budget::unlimited()).unwrap(),
        "chebyshev_budgeted",
    );
    assert_eq!(bits(&reference), bits(&plain), "chebyshev plain");
    assert_eq!(bits(&reference), bits(&via_ws), "chebyshev ws");
    assert_eq!(bits(&reference), bits(&budgeted), "chebyshev budgeted");

    let cols: Vec<Vec<f64>> = (0..3)
        .map(|j| {
            (0..n)
                .map(|i| 1.0 + (0.11 * (i + 17 * j) as f64).cos())
                .collect()
        })
        .collect();
    let blocked = exp.apply_multi(&nl, &cols).unwrap();
    for (j, col) in cols.iter().enumerate() {
        let single = exp.apply(&nl, col).unwrap();
        assert_eq!(
            bits(&blocked[j]),
            bits(&single),
            "chebyshev apply_multi column {j} drifted from the single-vector call"
        );
    }

    let hk = cheb_heat_kernel(&nl, 1.5, &v0, 2.0, 20).unwrap();
    let hk_multi = cheb_heat_kernel_multi(&nl, 1.5, std::slice::from_ref(&v0), 2.0, 20).unwrap();
    assert_eq!(bits(&hk), bits(&hk_multi[0]), "cheb_heat_kernel_multi");
}

fn check_local(g: &Graph) {
    let seeds: Vec<NodeId> = vec![1, 5];

    // ppr_push: plain / _ws / _budgeted(unlimited) / _batch vs _ctx.
    let mut ctx = KernelCtx::new();
    let reference = converged(
        ppr_push_ctx(g, &seeds, 0.05, 1e-5, &mut ctx).unwrap(),
        "ppr_push",
    );
    let plain = ppr_push(g, &seeds, 0.05, 1e-5).unwrap();
    let mut ws = PushWorkspace::default();
    let mut out = PushResult::empty();
    ppr_push_ws(g, &seeds, 0.05, 1e-5, &mut ws, &mut out).unwrap();
    let budgeted = converged(
        ppr_push_budgeted(g, &seeds, 0.05, 1e-5, &Budget::unlimited()).unwrap(),
        "ppr_push_budgeted",
    );
    let batch = ppr_push_batch(g, &[seeds.clone(), vec![9]], 0.05, 1e-5).unwrap();
    for (label, r) in [
        ("plain", &plain),
        ("ws", &out),
        ("budgeted", &budgeted),
        ("batch", &batch[0]),
    ] {
        assert_eq!(
            sparse_bits(&reference.vector),
            sparse_bits(&r.vector),
            "ppr_push ({label}) drifted from the ctx call"
        );
        assert_eq!(reference.pushes, r.pushes, "ppr_push ({label})");
        assert_eq!(
            reference.residual_mass.to_bits(),
            r.residual_mass.to_bits(),
            "ppr_push ({label})"
        );
    }
    let lone = converged(
        ppr_push_ctx(g, &[9], 0.05, 1e-5, &mut KernelCtx::new()).unwrap(),
        "ppr_push[9]",
    );
    assert_eq!(sparse_bits(&lone.vector), sparse_bits(&batch[1].vector));

    // hk_relax: plain / _budgeted(unlimited) vs _ctx.
    let mut ctx = KernelCtx::new();
    let reference = converged(
        hk_relax_ctx(g, 1, 6.0, 1e-4, 1e-3, &mut ctx).unwrap(),
        "hk_relax",
    );
    let plain = hk_relax(g, 1, 6.0, 1e-4, 1e-3).unwrap();
    let budgeted = converged(
        hk_relax_budgeted(g, 1, 6.0, 1e-4, 1e-3, &Budget::unlimited()).unwrap(),
        "hk_relax_budgeted",
    );
    for (label, r) in [("plain", &plain), ("budgeted", &budgeted)] {
        assert_eq!(
            sparse_bits(&reference.vector),
            sparse_bits(&r.vector),
            "hk_relax ({label}) drifted from the ctx call"
        );
        assert_eq!(reference.terms, r.terms);
        assert_eq!(reference.mass_lost.to_bits(), r.mass_lost.to_bits());
    }

    // nibble: plain / _budgeted(unlimited) vs _ctx.
    let mut ctx = KernelCtx::new();
    let reference = converged(nibble_ctx(g, 1, 30, 1e-4, &mut ctx).unwrap(), "nibble");
    let plain = nibble(g, 1, 30, 1e-4).unwrap();
    let budgeted = converged(
        nibble_budgeted(g, 1, 30, 1e-4, &Budget::unlimited()).unwrap(),
        "nibble_budgeted",
    );
    for (label, r) in [("plain", &plain), ("budgeted", &budgeted)] {
        assert_eq!(reference.set, r.set, "nibble ({label})");
        assert_eq!(
            reference.conductance.to_bits(),
            r.conductance.to_bits(),
            "nibble ({label})"
        );
        assert_eq!(
            sparse_bits(&reference.vector),
            sparse_bits(&r.vector),
            "nibble ({label})"
        );
    }

    // sweep_cut vs sweep_cut_ctx.
    let score = converged(
        ppr_push_ctx(g, &[1], 0.05, 1e-5, &mut KernelCtx::new()).unwrap(),
        "ppr_push",
    )
    .to_dense(g.n());
    let reference = sweep_cut_ctx(g, &score, &mut KernelCtx::new());
    let plain = sweep_cut(g, &score);
    assert_eq!(reference.set, plain.set, "sweep_cut");
    assert_eq!(
        reference.conductance.to_bits(),
        plain.conductance.to_bits(),
        "sweep_cut"
    );
}

fn check_spectral(g: &Graph) {
    let seed = Seed::Node(1);

    // pagerank_power: plain / _budgeted(unlimited) / _multi vs _ctx.
    let mut ctx = KernelCtx::new();
    let (ref_x, ref_delta) = converged(
        pagerank_power_ctx(g, 0.15, &seed, 25, &mut ctx).unwrap(),
        "pagerank_power",
    );
    let (plain_x, plain_delta) = pagerank_power(g, 0.15, &seed, 25).unwrap();
    let (bud_x, bud_delta) = converged(
        pagerank_power_budgeted(g, 0.15, &seed, 25, &Budget::unlimited()).unwrap(),
        "pagerank_power_budgeted",
    );
    let multi = pagerank_power_multi(g, 0.15, &[seed.clone(), Seed::Node(7)], 25).unwrap();
    for (label, (x, delta)) in [
        ("plain", (&plain_x, plain_delta)),
        ("budgeted", (&bud_x, bud_delta)),
        ("multi", (&multi[0].0, multi[0].1)),
    ] {
        assert_eq!(
            bits(&ref_x),
            bits(x),
            "pagerank_power ({label}) drifted from the ctx call"
        );
        assert_eq!(
            ref_delta.to_bits(),
            delta.to_bits(),
            "pagerank_power ({label})"
        );
    }

    // pagerank (CG route): plain vs _budgeted(unlimited).
    let plain = pagerank(g, 0.2, &seed).unwrap();
    let budgeted = converged(
        pagerank_budgeted(g, 0.2, &seed, &Budget::unlimited()).unwrap(),
        "pagerank_budgeted",
    );
    assert_eq!(bits(&plain), bits(&budgeted), "pagerank budgeted drifted");

    // heat_kernel_chebyshev: plain / _budgeted(unlimited) / _multi.
    let plain = heat_kernel_chebyshev(g, 2.0, &seed, 24).unwrap();
    let budgeted = converged(
        heat_kernel_chebyshev_budgeted(g, 2.0, &seed, 24, &Budget::unlimited()).unwrap(),
        "heat_kernel_chebyshev_budgeted",
    );
    let multi = heat_kernel_chebyshev_multi(g, 2.0, std::slice::from_ref(&seed), 24).unwrap();
    assert_eq!(bits(&plain), bits(&budgeted), "heat_kernel budgeted");
    assert_eq!(bits(&plain), bits(&multi[0]), "heat_kernel multi");
}

fn check_flow(g: &Graph) {
    // A small directed network derived from the graph; rebuilt fresh
    // for every call because max-flow mutates residual capacities.
    let build = || {
        let mut net = FlowNetwork::new(g.n());
        for u in 0..g.n() as NodeId {
            for (v, w) in g.neighbors(u) {
                net.add_arc(u as usize, v as usize, w).unwrap();
            }
        }
        net
    };
    let (s, t) = (0usize, g.n() - 1);

    let reference = converged(
        build().max_flow_ctx(s, t, &mut KernelCtx::new()).unwrap(),
        "max_flow",
    );
    let plain = build().max_flow(s, t).unwrap();
    let budgeted = converged(
        build()
            .max_flow_budgeted(s, t, &Budget::unlimited())
            .unwrap(),
        "max_flow_budgeted",
    );
    for (label, r) in [("plain", &plain), ("budgeted", &budgeted)] {
        assert_eq!(
            reference.value.to_bits(),
            r.value.to_bits(),
            "dinic max_flow ({label}) drifted from the ctx call"
        );
        assert_eq!(reference.source_side, r.source_side, "dinic ({label})");
    }

    // mqi: plain / _budgeted(unlimited) vs _ctx.
    let side: Vec<NodeId> = {
        let cut = spectral_bisect(g).unwrap();
        let total = g.total_volume();
        if g.volume(&cut.sweep.set) <= total / 2.0 {
            cut.sweep.set
        } else {
            g.complement(&cut.sweep.set)
        }
    };
    let reference = converged(mqi_ctx(g, &side, &mut KernelCtx::new()).unwrap(), "mqi");
    let plain = mqi(g, &side).unwrap();
    let budgeted = converged(
        mqi_budgeted(g, &side, &Budget::unlimited()).unwrap(),
        "mqi_budgeted",
    );
    for (label, r) in [("plain", &plain), ("budgeted", &budgeted)] {
        assert_eq!(reference.set, r.set, "mqi ({label})");
        assert_eq!(
            reference.conductance.to_bits(),
            r.conductance.to_bits(),
            "mqi ({label})"
        );
        assert_eq!(reference.iterations, r.iterations, "mqi ({label})");
    }
}

/// The full matrix at both thread counts: parallel scheduling is
/// allowed to change *when* work happens, never *what* is computed.
#[test]
fn every_legacy_variant_matches_the_ctx_call() {
    let g = fixture();
    for threads in [1usize, 4] {
        with_threads(threads, || {
            check_linalg(&g);
            check_local(&g);
            check_spectral(&g);
            check_flow(&g);
        });
    }
}
