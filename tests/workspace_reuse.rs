//! Workspace pooling must be invisible: a kernel's Nth call through a
//! warm pool (or a caller-held workspace) returns bit-identical output
//! to its first call on a cold one. The pools hand out epoch-stamped
//! or re-zeroed scratch, so no state can leak between calls; this
//! suite is the executable statement of that contract (DESIGN.md §9).

use acir::prelude::*;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> Graph {
    let pc = social_network(
        &mut StdRng::seed_from_u64(23),
        &SocialNetworkParams {
            core_nodes: 250,
            core_attach: 3,
            communities: 5,
            community_size_range: (5, 30),
            whiskers: 8,
            whisker_max_len: 4,
            ..Default::default()
        },
    )
    .unwrap();
    acir_graph::traversal::largest_component(&pc.graph).0
}

/// Set `ACIR_THREADS`, run, unset. All env-flipping assertions live in
/// the single test below — tests in one binary run concurrently, and a
/// second test racing on the same process-global variable would
/// corrupt exactly what this suite checks.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

#[test]
fn repeated_calls_through_warm_pools_are_bit_identical() {
    let g = fixture();
    let seed: NodeId = 1;

    for threads in [1usize, 4] {
        with_threads(threads, || {
            // ppr_push: pooled scratch, fresh output each call.
            let first = ppr_push(&g, &[seed, 5], 0.05, 1e-5).unwrap();
            for _ in 0..4 {
                let again = ppr_push(&g, &[seed, 5], 0.05, 1e-5).unwrap();
                assert_eq!(first.vector, again.vector, "ppr_push drifted on reuse");
                assert_eq!(first.pushes, again.pushes);
                assert_eq!(first.residual_mass.to_bits(), again.residual_mass.to_bits());
            }

            // ppr_push_ws: caller-held workspace AND reused output buffer.
            let mut ws = PushWorkspace::default();
            let mut out = PushResult::empty();
            for _ in 0..4 {
                ppr_push_ws(&g, &[seed, 5], 0.05, 1e-5, &mut ws, &mut out).unwrap();
                assert_eq!(first.vector, out.vector, "ppr_push_ws drifted on reuse");
                assert_eq!(first.pushes, out.pushes);
            }

            // Batch path (runs on the exec pool at threads > 1).
            let sets: Vec<Vec<NodeId>> = (0..4).map(|i| vec![i * 30]).collect();
            let b_first = ppr_push_batch(&g, &sets, 0.05, 1e-5).unwrap();
            let b_again = ppr_push_batch(&g, &sets, 0.05, 1e-5).unwrap();
            for (a, b) in b_first.iter().zip(&b_again) {
                assert_eq!(a.vector, b.vector, "ppr_push_batch drifted on reuse");
            }

            // hk_relax: pooled Taylor-weight and residual scratch.
            let h_first = hk_relax(&g, seed, 3.0, 1e-4, 1e-8).unwrap();
            for _ in 0..3 {
                let h = hk_relax(&g, seed, 3.0, 1e-4, 1e-8).unwrap();
                assert_eq!(h_first.vector, h.vector, "hk_relax drifted on reuse");
                assert_eq!(h_first.terms, h.terms);
            }

            // nibble: pooled truncated-walk scratch.
            let n_first = nibble(&g, seed, 20, 1e-4).unwrap();
            for _ in 0..3 {
                let n = nibble(&g, seed, 20, 1e-4).unwrap();
                assert_eq!(n_first.set, n.set, "nibble drifted on reuse");
                assert_eq!(n_first.conductance.to_bits(), n.conductance.to_bits());
                assert_eq!(n_first.vector, n.vector);
            }

            // Sparse sweep: pooled membership set, incremental cut/vol.
            let s_first = sweep_cut_sparse(&g, &first.vector);
            for _ in 0..3 {
                let s = sweep_cut_sparse(&g, &first.vector);
                assert_eq!(s_first.set, s.set, "sweep_cut_sparse drifted on reuse");
                assert_eq!(s_first.conductance.to_bits(), s.conductance.to_bits());
                assert_eq!(s_first.profile, s.profile);
            }
        });
    }
}
