//! The dynamic-graph contract (DESIGN.md §14): after an arbitrary
//! stream of edge inserts/deletes/reweights, *repaired* state is
//! equivalent to *from-scratch* state — not bit-equal, but
//! interchangeable under the ACL certificate. For every random
//! (graph, op stream, seeds, α, ε, K) drawn below:
//!
//! * `DeltaGraph::compact()` is **bit-identical** to building a fresh
//!   CSR from the merged edge list, and the overlay's merged view
//!   (neighbors, degrees, volume) is bit-identical to the compacted
//!   graph — the overlay is an honest CSR proxy;
//! * the repaired PPR state satisfies the ε·deg invariant *measured*
//!   (`per_degree_bound < ε`), conserves mass exactly, and sits within
//!   certificate distance of a near-exact from-scratch reference on
//!   the new graph, node by node;
//! * repaired hub sketches agree with freshly rebuilt sketches within
//!   the sum of their certificates, hub by hub, node by node;
//! * the whole repair pipeline (parallel over sketches) is
//!   bit-identical at `ACIR_THREADS` 1 and 4;
//! * an op stream that nets out to nothing returns the prior state bit
//!   for bit, with zero pushes.
//!
//! A deterministic engine-level companion drives a delta stream
//! through `Engine::update_graph_delta` and checks that every cached
//! answer served after repair carries a measured
//! `Certificate::ResidualMass` bound ≤ ε and tracks a from-scratch
//! push on the mutated graph.

use acir_graph::gen::random::{barabasi_albert, forest_fire};
use acir_graph::traversal::largest_component;
use acir_graph::{DeltaGraph, EdgeOp, Graph, NodeId};
use acir_local::{
    build_hub_sketches, ppr_push, repair::ppr_repair, repair::RepairRequest,
    repair::DEFAULT_REPAIR_MASS_THRESHOLD, repair_hub_sketches,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS_ENV: &str = acir_exec::THREADS_ENV;

#[derive(Debug, Clone)]
struct Case {
    ba: bool,
    n: usize,
    gen_seed: u64,
    /// Raw op stream: `(kind, endpoint selector a, endpoint selector
    /// b, weight selector)`; mapped onto valid edges below.
    ops: Vec<(u8, u32, u32, u8)>,
    seed_sels: Vec<u32>,
    alpha: f64,
    epsilon: f64,
    hubs: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        30usize..90,
        0u64..1_000_000,
        collection::vec((0u8..6, 0u32..1024, 0u32..1024, 0u8..4), 1..10),
        collection::vec(0u32..1024, 1..4),
        (0u8..3, 0u8..2, 0usize..9),
    )
        .prop_map(|(n, gen_seed, ops, seed_sels, (a, e, hubs))| Case {
            ba: gen_seed % 2 == 0,
            n,
            gen_seed,
            ops,
            seed_sels,
            alpha: [0.05, 0.1, 0.2][a as usize],
            epsilon: [1e-2, 3e-3][e as usize],
            hubs,
        })
}

fn build_graph(c: &Case) -> Graph {
    let mut rng = StdRng::seed_from_u64(c.gen_seed);
    let g = if c.ba {
        barabasi_albert(&mut rng, c.n, 3).unwrap()
    } else {
        forest_fire(&mut rng, c.n, 0.3).unwrap()
    };
    largest_component(&g).0
}

/// Map the raw op stream onto the graph, keeping every node's degree
/// strictly positive (a delete that would strand an endpoint is
/// skipped — stranded nodes are a separate, deterministic corner).
fn apply_ops(dg: &mut DeltaGraph<'_>, c: &Case) {
    let n = dg.n() as u32;
    for &(kind, a, b, wsel) in &c.ops {
        let (u, v) = (a % n, b % n);
        if u == v {
            continue;
        }
        if kind % 3 == 2 {
            let w = dg.edge_weight(u, v);
            if w > 0.0 && dg.degree(u) - w > 0.5 && dg.degree(v) - w > 0.5 {
                dg.delete_edge(u, v).unwrap();
            }
        } else {
            let w = [0.5, 1.0, 2.0, 3.0][wsel as usize];
            dg.insert_edge(u, v, w).unwrap();
        }
    }
}

fn bits(v: &[(NodeId, f64)]) -> Vec<(NodeId, u64)> {
    v.iter().map(|&(u, x)| (u, x.to_bits())).collect()
}

fn dense(n: usize, v: &[(NodeId, f64)]) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for &(u, x) in v {
        out[u as usize] += x;
    }
    out
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The repair-equivalence matrix over random power-law graphs ×
    /// random insert/delete/reweight streams × seeds × α × ε × hub
    /// counts, checked at 1 and 4 threads. (All env flipping lives in
    /// this one test — see sketch_equivalence.rs for why.)
    #[test]
    fn repaired_state_is_equivalent_to_from_scratch(c in arb_case()) {
        let g_old = build_graph(&c);
        let n = g_old.n();
        let seeds: Vec<NodeId> = c.seed_sels.iter().map(|&s| s % n as u32).collect();
        let prior = ppr_push(&g_old, &seeds, c.alpha, c.epsilon).unwrap();

        let mut dg = DeltaGraph::new(&g_old);
        apply_ops(&mut dg, &c);
        let delta = dg.net_delta();
        let (g_new, _relabel) = dg.compact().unwrap();

        // --- compact() is bit-identical to a fresh CSR build, and the
        // overlay's merged view is bit-identical to the compacted CSR.
        let merged_edges: Vec<(NodeId, NodeId, f64)> = (0..n as NodeId)
            .flat_map(|u| {
                dg.neighbors(u)
                    .filter(move |&(v, _)| v >= u)
                    .map(move |(v, w)| (u, v, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        let rebuilt = Graph::from_edges(n, merged_edges).unwrap();
        for u in 0..n as NodeId {
            let a: Vec<(NodeId, u64)> =
                g_new.neighbors(u).map(|(v, w)| (v, w.to_bits())).collect();
            let b: Vec<(NodeId, u64)> =
                rebuilt.neighbors(u).map(|(v, w)| (v, w.to_bits())).collect();
            let o: Vec<(NodeId, u64)> =
                dg.neighbors(u).map(|(v, w)| (v, w.to_bits())).collect();
            prop_assert_eq!(&a, &b, "compact vs from_edges row {}", u);
            prop_assert_eq!(&a, &o, "compact vs overlay row {}", u);
            prop_assert_eq!(g_new.degree(u).to_bits(), dg.degree(u).to_bits());
        }
        prop_assert_eq!(g_new.total_volume().to_bits(), dg.total_volume().to_bits());

        // --- residual repair vs from-scratch on the new graph.
        let req = RepairRequest {
            seeds: &seeds,
            estimate: &prior.vector,
            residual: &prior.residuals,
            delta: &delta,
            alpha: c.alpha,
            epsilon: c.epsilon,
            mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
        };
        let rr = ppr_repair(&g_new, &req).unwrap();

        if delta.is_empty() {
            // Ops that net out return the prior bit for bit.
            prop_assert_eq!(rr.pushes, 0);
            prop_assert_eq!(bits(&rr.vector), bits(&prior.vector));
            prop_assert_eq!(bits(&rr.residuals), bits(&prior.residuals));
            return Ok(());
        }

        // Invariant measured, not trusted.
        prop_assert!(
            rr.per_degree_bound < c.epsilon,
            "repaired bound {} ≥ ε {}", rr.per_degree_bound, c.epsilon
        );
        // Mass conservation survives correction + push exactly.
        let p_mass: f64 = rr.vector.iter().map(|&(_, x)| x).sum();
        prop_assert!(
            (p_mass + rr.residual_mass - 1.0).abs() < 1e-9,
            "mass leak: {} + {} ≠ 1", p_mass, rr.residual_mass
        );
        // Node-by-node against a near-exact from-scratch reference.
        let eps_ref = c.epsilon / 50.0;
        let reference = ppr_push(&g_new, &seeds, c.alpha, eps_ref).unwrap();
        let drep = dense(n, &rr.vector);
        let dref = dense(n, &reference.vector);
        for u in 0..n {
            let slack = (c.epsilon + eps_ref) * g_new.degree(u as NodeId) + 1e-12;
            prop_assert!(
                (drep[u] - dref[u]).abs() <= slack,
                "node {}: repaired {} vs reference {} exceeds {}",
                u, drep[u], dref[u], slack
            );
        }

        // --- sketch repair vs rebuild, and thread-count invariance of
        // the whole (parallel) repair pipeline.
        let eps_sketch = c.epsilon / 10.0;
        let run = || {
            let set = build_hub_sketches(&g_old, c.hubs, c.alpha, eps_sketch).unwrap();
            repair_hub_sketches(&g_new, &set, &delta).unwrap()
        };
        let rep = with_threads(1, run);
        let rep4 = with_threads(4, run);
        for (a, b) in rep.set.sketches().iter().zip(rep4.set.sketches()) {
            prop_assert_eq!(a.hub, b.hub);
            prop_assert_eq!(bits(&a.estimate), bits(&b.estimate));
            prop_assert_eq!(bits(&a.residual), bits(&b.residual));
        }
        prop_assert_eq!(rep.pushes, rep4.pushes);

        // Hub-by-hub against a from-scratch push on the new graph.
        // (The repaired set keeps its *old* hub selection — a fresh
        // `build_hub_sketches` would re-rank hubs by post-delta
        // degrees — so the contract is per-hub: each repaired sketch
        // is a valid (α, ε_sketch) sketch of its own hub.)
        for rs in rep.set.sketches() {
            if g_new.degree(rs.hub) <= 0.0 {
                prop_assert!(rs.estimate.is_empty() && rs.residual.is_empty());
                continue;
            }
            let fresh = ppr_push(&g_new, &[rs.hub], c.alpha, eps_sketch).unwrap();
            let dr = dense(n, &rs.estimate);
            let df = dense(n, &fresh.vector);
            for u in 0..n {
                let slack = 2.0 * eps_sketch * g_new.degree(u as NodeId) + 1e-12;
                prop_assert!(
                    (dr[u] - df[u]).abs() <= slack,
                    "hub {} node {}: repaired {} vs rebuilt {}",
                    rs.hub, u, dr[u], df[u]
                );
            }
        }
    }
}

/// Engine-level: a stream of single-edge deltas repairs cached answers
/// in place; every post-repair `Cached` response carries a *measured*
/// `ResidualMass` certificate bound ≤ ε and tracks a from-scratch push
/// on the mutated graph.
#[test]
fn engine_delta_stream_keeps_cached_answers_certified() {
    use acir::serve::{Engine, EngineConfig, Query, ResponseKind};
    use acir_runtime::Certificate;

    let g = acir_graph::gen::deterministic::barbell(10, 3).unwrap();
    let eps = 1e-2;
    let mut e = Engine::new(g, EngineConfig::default());
    let q = |s: u32| Query {
        seeds: vec![s],
        alpha: 0.1,
        epsilon: eps,
        deadline: None,
        options: Default::default(),
    };
    assert!(e.submit(q(0)).is_accepted());
    assert!(e.submit(q(15)).is_accepted());
    let rs = e.run_pending();
    assert!(rs.iter().all(|r| r.kind == ResponseKind::Full));
    assert_eq!(e.answer_cache_len(), 2);

    // Five single-edge deltas: reweights and a fresh edge, spread over
    // both cliques.
    let stream = [
        EdgeOp::Insert {
            u: 14,
            v: 20,
            weight: 3.0,
        },
        EdgeOp::Insert {
            u: 2,
            v: 5,
            weight: 0.5,
        },
        EdgeOp::Insert {
            u: 0,
            v: 22,
            weight: 1.0,
        },
        EdgeOp::Delete { u: 14, v: 20 },
        EdgeOp::Insert {
            u: 16,
            v: 18,
            weight: 2.0,
        },
    ];
    for (i, op) in stream.iter().enumerate() {
        let s = e.update_graph_delta(std::slice::from_ref(op)).unwrap();
        assert_eq!(s.epoch, i as u64 + 1);
        assert_eq!(
            s.answers_revalidated + s.answers_repaired + s.answers_dropped,
            2,
            "every cached answer is accounted for at delta {i}"
        );
        assert_eq!(s.answers_dropped, 0, "raw-push answers stay repairable");

        // Both answers serve as Cached on the new epoch, certified
        // with a measured bound, and track a from-scratch push.
        for seed in [0u32, 15] {
            assert!(e.submit(q(seed)).is_accepted());
            let r = e.run_pending().remove(0);
            assert_eq!(r.kind, ResponseKind::Cached, "seed {seed} delta {i}");
            let Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            } = r.certificate
            else {
                panic!(
                    "repaired answer must carry ResidualMass, got {:?}",
                    r.certificate
                );
            };
            assert!(
                per_degree_bound <= eps,
                "measured bound {per_degree_bound} > ε"
            );
            assert!(remaining.abs() <= 1.0 + 1e-12);
            let fresh = acir_local::ppr_push(e.graph(), &[seed], 0.1, eps).unwrap();
            let got = dense(e.graph().n(), &r.cluster);
            let want = dense(e.graph().n(), &fresh.vector);
            for u in 0..e.graph().n() {
                let slack = (per_degree_bound + eps) * e.graph().degree(u as NodeId) + 1e-12;
                assert!(
                    (got[u] - want[u]).abs() <= slack,
                    "delta {i} seed {seed} node {u}: cached {} vs fresh {}",
                    got[u],
                    want[u]
                );
            }
        }
    }
}
