//! The paper's load-bearing claims, verified at test scale. Each test
//! names the section of Mahoney (PODS 2012) it checks.

use acir::experiment::ExperimentContext;
use acir::figures::casestudy1::{run_equivalence, CaseStudy1Config};
use acir::figures::casestudy3::{run_locality, CaseStudy3Config};
use acir::figures::fig1::{run_fig1, Fig1Config};
use acir::prelude::*;
use acir_graph::gen::community::SocialNetworkParams;

fn tmp_ctx(tag: &str) -> (ExperimentContext, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("acir-claims-{tag}-{}", std::process::id()));
    (ExperimentContext::new(&dir, 2012), dir)
}

/// §3.1: "these three diffusion-based dynamics arise as solutions to
/// the regularized SDP" — to numerical precision, across graph
/// families.
#[test]
fn claim_implicit_regularization_theorem() {
    let (ctx, dir) = tmp_ctx("thm");
    let cfg = CaseStudy1Config {
        etas: vec![0.3, 3.0],
        lazy_ks: vec![1, 3],
        random_n: 28,
        random_p: 0.25,
    };
    let t = run_equivalence(&ctx, &cfg).unwrap();
    for row in t.rows() {
        let err: f64 = row[4].parse().unwrap();
        assert!(err < 1e-8, "equivalence broken: {row:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Figure 1: flow wins the objective, spectral wins the niceness.
///
/// Run at the scale where the paper's regime exists — large enough
/// that the Metis+MQI quota at the top size scales is met by gluing
/// whiskers/periphery (low conductance but internally incoherent)
/// while the diffusion-grown spectral clusters stay connected. The
/// quantitative signals checked:
/// (a) flow at-least-ties conductance on ≥ 70% of comparable bins;
/// (b) spectral wins average path length on ≥ 40% of bins;
/// (c) among clusters of size ≥ 20, flow produces at least as many
///     internally-disconnected clusters (infinite ext/int ratio) as
///     spectral — the \[28\] observation behind panel (c).
#[test]
fn claim_figure1_shape() {
    let (ctx, dir) = tmp_ctx("fig1");
    let ctx = ExperimentContext {
        seed: 0xAC1D,
        ..ctx
    };
    let cfg = Fig1Config {
        network: SocialNetworkParams {
            core_nodes: 800,
            core_attach: 3,
            communities: 16,
            community_size_range: (6, 150),
            whiskers: 50,
            whisker_max_len: 8,
            ..Default::default()
        },
        ncp: NcpOptions {
            min_size: 2,
            max_size: 400,
            seeds: 24,
            alphas: vec![0.2, 0.05, 0.01],
            epsilons: vec![1e-3, 1e-4],
            threads: 4,
            ..Default::default()
        },
        asp_samples: 24,
    };
    let r = run_fig1(&ctx, &cfg).unwrap();
    let (flow_phi, spec_asp, _spec_ratio, cmp) = r.headline();
    assert!(cmp >= 8, "need comparable bins, got {cmp}");
    assert!(
        flow_phi * 10 >= cmp * 7,
        "flow conductance wins only {flow_phi}/{cmp}"
    );
    assert!(
        spec_asp * 10 >= cmp * 4,
        "spectral avg-path wins only {spec_asp}/{cmp}"
    );
    let disconnected = |pts: &[acir::figures::fig1::Fig1Point]| {
        pts.iter()
            .filter(|p| p.size >= 20 && p.ratio.is_infinite())
            .count()
    };
    let flow_disc = disconnected(&r.flow);
    let spec_disc = disconnected(&r.spectral);
    assert!(
        flow_disc >= spec_disc,
        "flow disconnected clusters {flow_disc} < spectral {spec_disc}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// §3.3: "the running time depends on the size of the output and is
/// independent even of the number of nodes in the graph."
#[test]
fn claim_strong_locality() {
    let (ctx, dir) = tmp_ctx("local");
    let cfg = CaseStudy3Config {
        ambient_sizes: vec![800, 8000],
        cluster_size: 50,
        cluster_p: 0.25,
        bridges: 3,
        epsilon: 1e-4,
        alpha: 0.05,
        nibble_steps: 40,
        hk_t: 6.0,
        include_mov: false,
    };
    let t = run_locality(&ctx, &cfg).unwrap();
    // For each local method: touched counts within 3x across a 10x n change.
    for method in ["push", "nibble", "hk_relax"] {
        let touched: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| r[1] == method)
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert_eq!(touched.len(), 2);
        assert!(
            touched[1] <= touched[0] * 3.0 + 50.0,
            "{method}: touched {touched:?} scales with n"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// §2 (quoted in §3.1): running dynamics to the limit forgets the
/// seed; truncation retains it. The defining behavioral signature of
/// implicit regularization.
#[test]
fn claim_truncation_retains_seed_dependence() {
    let g = gen::deterministic::barbell(9, 0).unwrap();
    let far = (g.n() - 1) as u32;
    let short_a = lazy_walk(&g, 0.5, 2, &Seed::Node(0)).unwrap();
    let short_b = lazy_walk(&g, 0.5, 2, &Seed::Node(far)).unwrap();
    let tv_short: f64 = short_a
        .iter()
        .zip(&short_b)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    let long_a = lazy_walk(&g, 0.5, 6000, &Seed::Node(0)).unwrap();
    let long_b = lazy_walk(&g, 0.5, 6000, &Seed::Node(far)).unwrap();
    let tv_long: f64 = long_a
        .iter()
        .zip(&long_b)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    assert!(tv_short > 0.5);
    assert!(tv_long < 1e-6);
}

/// §3.2 / Cheeger: the spectral cut is "quadratically good" — both
/// inequality directions at once, on families that stress each side.
#[test]
fn claim_cheeger_quadratic_window() {
    // Path: λ₂ ~ 1/n², φ ~ 1/n — the upper (quadratic) bound is the
    // tight one, demonstrating that the worst-case quadratic factor is
    // real and not an artifact of analysis.
    let g = gen::deterministic::path(64).unwrap();
    let r = cheeger_check(&g).unwrap();
    assert!(r.holds);
    assert!(
        r.phi_sweep > 5.0 * r.lower,
        "on paths the lower bound is loose: φ {} vs λ₂/2 {}",
        r.phi_sweep,
        r.lower
    );
    // Expander: λ₂ = Θ(1), so both bounds are within a constant.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let e = gen::random::random_regular(&mut rng, 100, 4).unwrap();
    let re = cheeger_check(&e).unwrap();
    assert!(re.holds);
    assert!(re.lambda2 > 0.05);
}

/// §3.1 (PageRank at web scale): the truncated Power-Method PageRank
/// ranks nearly as well as the exact solve — the original practical
/// motivation.
#[test]
fn claim_truncated_pagerank_ranks_well() {
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(31)
    };
    let g = gen::random::barabasi_albert(&mut rng, 400, 3).unwrap();
    let exact = acir_spectral::ranking::pagerank_scores(&g, 0.15).unwrap();
    let rough = acir_spectral::ranking::pagerank_scores_truncated(&g, 0.15, 25).unwrap();
    let tau = acir_spectral::ranking::kendall_tau(&exact, &rough);
    assert!(tau > 0.95, "kendall tau {tau}");
    let overlap = acir_spectral::ranking::top_k_overlap(&exact, &rough, 20);
    assert!(overlap >= 0.9, "top-20 overlap {overlap}");
}

/// §3.1, Mahoney–Orecchia correspondence, dynamics by dynamics: each of
/// the three diffusions — heat kernel, PageRank, lazy random walk — is
/// *exactly* the optimum of the SDP regularized by (respectively) the
/// entropy, log-determinant, and p-norm regularizer. Checked on two
/// structurally different graphs with explicit tolerances per dynamics.
#[test]
fn claim_mahoney_orecchia_correspondence_all_dynamics() {
    use acir_regularize::equivalence::lazy_walk_eta_limit;
    use acir_regularize::{check_heat_kernel, check_lazy_walk, check_pagerank};

    let graphs = [
        ("barbell(6,2)", gen::deterministic::barbell(6, 2).unwrap()),
        ("grid2d(4,5)", gen::deterministic::grid2d(4, 5).unwrap()),
    ];
    for (name, g) in &graphs {
        let sp = SpectralProblem::new(g).unwrap();
        for &eta in &[0.3, 3.0] {
            // Heat kernel ↔ entropy: F_D(X) = Tr(X log X) − Tr(X).
            let hk = check_heat_kernel(&sp, eta).unwrap();
            assert!(
                hk.agrees(1e-10),
                "{name}, eta {eta}: heat kernel vs entropy SDP, rel err {}",
                hk.relative_error
            );
            // PageRank ↔ log-det: F_D(X) = −log det(X).
            let pr = check_pagerank(&sp, eta).unwrap();
            assert!(
                pr.agrees(1e-8),
                "{name}, eta {eta}: pagerank vs log-det SDP, rel err {}",
                pr.relative_error
            );
        }
        // Lazy walk ↔ p-norm with p = 1 + 1/k: exact only while the
        // multiplier τ dominates the spectrum (τ ≥ λmax), so pick η
        // safely inside that regime for each step count k.
        for k in [1u32, 2, 3] {
            let eta = lazy_walk_eta_limit(&sp, k).unwrap() * 0.5;
            let lw = check_lazy_walk(&sp, eta, k).unwrap();
            assert!(
                lw.agrees(1e-7),
                "{name}, k {k}: lazy walk vs p-norm SDP, rel err {}",
                lw.relative_error
            );
        }
    }
}
