//! Bitwise equivalence of the pluggable SpMV layouts.
//!
//! The `SparseLayout` contract (`acir_linalg::layout`) says every
//! layout — scalar CSR, unrolled CSR, SELL-C-σ, merge-based — produces
//! **bit-identical** products at every thread count, because each
//! output element is accumulated strictly left-to-right over its row.
//! This binary pins that contract:
//!
//! * a proptest matrix over random sparse matrices (including empty
//!   rows, isolated columns, rectangular shapes, and row counts that
//!   leave a ragged final SELL slice) comparing `matvec`,
//!   `matvec_transpose`, and `matvec_multi` across all layouts;
//! * hostile values: an `∞` in `x` at a column only padding could
//!   touch must not surface as NaN (SELL never multiplies padding);
//! * cache invalidation: mutating a matrix after a SELL/merge product
//!   rebuilds the derived layouts;
//! * selection plumbing: the `ACIR_SPMV_LAYOUT` env var, the
//!   thread-local scope, and `KernelCtx::with_spmv_layout` all route —
//!   and all agree bitwise. (Every env-flipping assertion lives in the
//!   single `#[test]` below it; tests in one binary run concurrently
//!   and would otherwise race on the process-global variable.)

use acir_graph::traversal::largest_component;
use acir_linalg::{spmv_layout_scope, CsrMatrix, SpmvLayout};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `A x` under an explicit layout scope.
fn mv(a: &CsrMatrix, x: &[f64], layout: SpmvLayout) -> Vec<f64> {
    let _scope = spmv_layout_scope(layout);
    let mut y = vec![0.0; a.nrows()];
    a.matvec(x, &mut y);
    y
}

/// `Aᵀ x` under an explicit layout scope.
fn mtv(a: &CsrMatrix, x: &[f64], layout: SpmvLayout) -> Vec<f64> {
    let _scope = spmv_layout_scope(layout);
    let mut y = vec![0.0; a.ncols()];
    a.matvec_transpose(x, &mut y);
    y
}

/// Blocked multi-RHS product under an explicit layout scope.
fn mmv(a: &CsrMatrix, xs: &[Vec<f64>], layout: SpmvLayout) -> Vec<Vec<f64>> {
    let _scope = spmv_layout_scope(layout);
    a.matvec_multi(xs)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic dense test vector with positive and negative entries
/// of varying magnitude (so reordered additions would actually differ).
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen() - 0.5) * 10f64.powi(rng.gen_range(-3..4)))
        .collect()
}

/// Random sparse matrix with deliberately nasty structure: duplicate
/// triplets (summed by construction), empty rows/columns, and shapes
/// that are not multiples of the SELL slice height.
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..40, 1usize..40, 0u64..1_000_000).prop_map(|(nrows, ncols, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let nnz = rng.gen_range(0..nrows * ncols / 2 + 1);
        let triplets: Vec<(usize, usize, f64)> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..nrows),
                    rng.gen_range(0..ncols),
                    (rng.gen() - 0.5) * 10f64.powi(rng.gen_range(-2..3)),
                )
            })
            .collect();
        CsrMatrix::from_triplets(nrows, ncols, triplets)
    })
}

const ALT: [SpmvLayout; 4] = [
    SpmvLayout::Unrolled,
    SpmvLayout::Sell,
    SpmvLayout::Merge,
    SpmvLayout::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// matvec / matvec_transpose / matvec_multi agree bitwise with the
    /// scalar CSR path on every alternate layout.
    #[test]
    fn products_bitwise_identical_across_layouts(a in arb_matrix(), vseed in 0u64..1000) {
        let x = probe_vector(a.ncols(), vseed);
        let xt = probe_vector(a.nrows(), vseed ^ 0x9e37);
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|j| probe_vector(a.ncols(), vseed.wrapping_add(j)))
            .collect();

        let y_csr = mv(&a, &x, SpmvLayout::Csr);
        let yt_csr = mtv(&a, &xt, SpmvLayout::Csr);
        let ym_csr = mmv(&a, &xs, SpmvLayout::Csr);
        // The blocked product must match the one-at-a-time product
        // bitwise, per vector, on the scalar layout itself.
        for (yj, xj) in ym_csr.iter().zip(&xs) {
            prop_assert_eq!(bits(yj), bits(&mv(&a, xj, SpmvLayout::Csr)));
        }
        for layout in ALT {
            prop_assert_eq!(bits(&y_csr), bits(&mv(&a, &x, layout)), "matvec {}", layout);
            prop_assert_eq!(bits(&yt_csr), bits(&mtv(&a, &xt, layout)), "transpose {}", layout);
            let ym = mmv(&a, &xs, layout);
            prop_assert_eq!(ym_csr.len(), ym.len());
            for (yj_csr, yj) in ym_csr.iter().zip(&ym) {
                prop_assert_eq!(bits(yj_csr), bits(yj), "multi {}", layout);
            }
        }
    }

    /// Mutators invalidate the cached derived layouts: a product after
    /// `scale` matches a freshly built matrix bitwise on every layout.
    #[test]
    fn mutation_invalidates_cached_layouts(a in arb_matrix(), vseed in 0u64..1000) {
        let x = probe_vector(a.ncols(), vseed);
        let mut m = a.clone();
        // Populate the caches on the original copy.
        for layout in ALT {
            std::hint::black_box(mv(&m, &x, layout));
        }
        m.scale(-3.0);
        let mut fresh = a.clone();
        fresh.scale(-3.0);
        for layout in ALT {
            prop_assert_eq!(
                bits(&mv(&fresh, &x, SpmvLayout::Csr)),
                bits(&mv(&m, &x, layout)),
                "stale cache on {}",
                layout
            );
        }
    }
}

/// SELL padding must never be multiplied: an `∞` (or NaN) sitting at a
/// column index that only padding slots reference cannot contaminate
/// any output. Column 0 is the padding sentinel index, so a matrix
/// whose real entries all avoid column 0 is the sharpest probe.
#[test]
fn sell_padding_never_touches_poisoned_columns() {
    // 17 rows (ragged final slice), very different row lengths so
    // every slice has padding or inactive-lane tails.
    let mut triplets = Vec::new();
    for r in 0..17usize {
        for j in 0..(r % 5) * 3 {
            triplets.push((r, 1 + (r * 7 + j * 3) % 30, 1.0 + (r + j) as f64));
        }
    }
    let a = CsrMatrix::from_triplets(17, 31, triplets);
    let mut x = probe_vector(31, 7);
    x[0] = f64::INFINITY;
    for layout in [SpmvLayout::Sell, SpmvLayout::Unrolled, SpmvLayout::Merge] {
        let y = mv(&a, &x, layout);
        assert!(
            y.iter().all(|v| v.is_finite()),
            "{layout}: poisoned column leaked into output: {y:?}"
        );
        assert_eq!(bits(&y), bits(&mv(&a, &x, SpmvLayout::Csr)));
    }
    // NaN in a *referenced* column must propagate identically instead.
    x[1] = f64::NAN;
    for layout in ALT {
        let y = mv(&a, &x, layout);
        let y_csr = mv(&a, &x, SpmvLayout::Csr);
        assert_eq!(bits(&y), bits(&y_csr), "{layout}: NaN propagation differs");
    }
}

/// Degenerate shapes the slicing/merging math must survive.
#[test]
fn degenerate_shapes_are_bitwise_identical() {
    let cases: Vec<CsrMatrix> = vec![
        // Entirely empty matrix.
        CsrMatrix::from_triplets(5, 5, []),
        // One row, many entries (single ragged SELL slice; one merge part).
        CsrMatrix::from_triplets(1, 64, (0..64).map(|j| (0usize, j, j as f64 - 31.5))),
        // One dense column, rows otherwise empty.
        CsrMatrix::from_triplets(
            23,
            4,
            (0..23).step_by(2).map(|r| (r, 2usize, 0.5 * r as f64)),
        ),
        // Identity (every row exactly one entry).
        CsrMatrix::identity(9),
    ];
    for (i, a) in cases.iter().enumerate() {
        let x = probe_vector(a.ncols(), i as u64);
        let y_csr = mv(a, &x, SpmvLayout::Csr);
        for layout in ALT {
            assert_eq!(bits(&y_csr), bits(&mv(a, &x, layout)), "case {i} {layout}");
        }
    }
}

/// Run `f` with `ACIR_THREADS` set to `n`, then clear it.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(acir_exec::THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(acir_exec::THREADS_ENV);
    out
}

/// The one env-flipping test in this binary: a graph operator big
/// enough to cross the parallel threshold (`PAR_MIN_NNZ`), checked
/// across layouts × thread counts × selection mechanisms.
#[test]
fn parallel_paths_and_selection_mechanisms_agree() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = acir_graph::gen::random::barabasi_albert(&mut rng, 4000, 5).unwrap();
    let (g, _) = largest_component(&g);
    let nl = acir_spectral::normalized_laplacian(&g);
    assert!(nl.nnz() > 16_384, "operator too small to exercise fan-out");
    let x = probe_vector(nl.ncols(), 3);
    let xs: Vec<Vec<f64>> = (0..2).map(|j| probe_vector(nl.ncols(), 20 + j)).collect();

    let reference = with_threads(1, || mv(&nl, &x, SpmvLayout::Csr));
    let ref_t = with_threads(1, || mtv(&nl, &x, SpmvLayout::Csr));
    let ref_m = with_threads(1, || mmv(&nl, &xs, SpmvLayout::Csr));
    for threads in [1usize, 4] {
        for layout in [
            SpmvLayout::Csr,
            SpmvLayout::Unrolled,
            SpmvLayout::Sell,
            SpmvLayout::Merge,
            SpmvLayout::Auto,
        ] {
            let (y, yt, ym) = with_threads(threads, || {
                (
                    mv(&nl, &x, layout),
                    mtv(&nl, &x, layout),
                    mmv(&nl, &xs, layout),
                )
            });
            assert_eq!(bits(&reference), bits(&y), "matvec {layout} @{threads}t");
            assert_eq!(bits(&ref_t), bits(&yt), "transpose {layout} @{threads}t");
            for (a, b) in ref_m.iter().zip(&ym) {
                assert_eq!(bits(a), bits(b), "multi {layout} @{threads}t");
            }
        }
    }

    // Env-var selection routes like the scope.
    std::env::set_var(acir_exec::SPMV_LAYOUT_ENV, "sell");
    assert_eq!(acir_exec::current_spmv_layout(), SpmvLayout::Sell);
    let y_env = {
        let mut y = vec![0.0; nl.nrows()];
        nl.matvec(&x, &mut y);
        y
    };
    std::env::remove_var(acir_exec::SPMV_LAYOUT_ENV);
    assert_eq!(bits(&reference), bits(&y_env));

    // KernelCtx routing: a layout installed on the context is ambient
    // for the whole solve and bit-identical to the default layout.
    let seed = acir_spectral::Seed::Node(0);
    let budget = acir_runtime::Budget::unlimited();
    let mut ctx_default = acir_runtime::KernelCtx::budgeted("test.pr", &budget);
    let base = acir_spectral::pagerank_power_ctx(&g, 0.15, &seed, 40, &mut ctx_default)
        .unwrap()
        .into_value()
        .unwrap();
    for layout in ALT {
        let mut ctx =
            acir_runtime::KernelCtx::budgeted("test.pr", &budget).with_spmv_layout(layout);
        let routed = acir_spectral::pagerank_power_ctx(&g, 0.15, &seed, 40, &mut ctx)
            .unwrap()
            .into_value()
            .unwrap();
        assert_eq!(bits(&base.0), bits(&routed.0), "ctx routing {layout}");
    }
}
