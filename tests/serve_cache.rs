//! Answer-cache and sketch-store invalidation tier for `acir-serve`
//! (DESIGN.md §13): the epoch stamp is the whole protocol.
//!
//! * An exact repeat `(seeds, α, ε, epoch)` is served from the answer
//!   cache bit-identically, as the non-degraded `Cached` rung.
//! * A graph mutation bumps the epoch, drops every cached answer, and
//!   rebuilds the hub sketches — a pre-mutation answer is *never*
//!   served as `Full` or `Cached` on the new graph.
//! * Only the `Stale` rung may serve across epochs, and when it does
//!   the certificate is `StaleResidualMass` carrying the epoch the
//!   answer was actually certified against.

use acir::serve::{Engine, EngineConfig, Query, ResponseKind};
use acir_graph::{Graph, NodeId};
use acir_runtime::Certificate;
use std::time::Duration;

/// Two small graphs that differ enough for PPR answers to differ:
/// a 6-cycle, and the same cycle with a chord through the seed.
fn cycle6() -> Graph {
    Graph::from_pairs(6, (0u32..6).map(|u| (u, (u + 1) % 6))).unwrap()
}

fn cycle6_chord() -> Graph {
    let mut pairs: Vec<(u32, u32)> = (0u32..6).map(|u| (u, (u + 1) % 6)).collect();
    pairs.push((0, 3));
    Graph::from_pairs(6, pairs).unwrap()
}

fn query(seeds: &[NodeId]) -> Query {
    Query {
        seeds: seeds.to_vec(),
        alpha: 0.1,
        epsilon: 1e-2,
        deadline: None,
        options: Default::default(),
    }
}

fn bits(v: &[(NodeId, f64)]) -> Vec<(NodeId, u64)> {
    v.iter().map(|&(u, x)| (u, x.to_bits())).collect()
}

#[test]
fn exact_repeats_hit_the_cache_until_the_graph_changes() {
    let mut e = Engine::new(cycle6(), EngineConfig::default());
    assert!(e.submit(query(&[0])).is_accepted());
    let first = e.run_pending().remove(0);
    assert_eq!(first.kind, ResponseKind::Full);

    // Bit-identical repeat from the cache, not recomputed.
    assert!(e.submit(query(&[0])).is_accepted());
    let hit = e.run_pending().remove(0);
    assert_eq!(hit.kind, ResponseKind::Cached);
    assert!(!hit.kind.is_degraded());
    assert_eq!(bits(&hit.cluster), bits(&first.cluster));
    assert_eq!(hit.certificate, first.certificate);
    assert_eq!(e.stats().cached, 1);

    // Mutate the graph: the old answer is wrong now, and the engine
    // must recompute rather than serve it as fresh.
    e.update_graph(cycle6_chord());
    assert_eq!(e.answer_cache_len(), 0);
    assert!(e.submit(query(&[0])).is_accepted());
    let fresh = e.run_pending().remove(0);
    assert_eq!(
        fresh.kind,
        ResponseKind::Full,
        "post-mutation repeat must recompute"
    );
    assert_eq!(e.stats().cached, 1, "no cache hit across the epoch bump");
    assert_ne!(
        bits(&fresh.cluster),
        bits(&first.cluster),
        "the chord changes the diffusion; serving the old vector would be a stale answer as Full"
    );
    // And the recomputed answer re-primes the cache under the new key.
    assert!(e.submit(query(&[0])).is_accepted());
    let rehit = e.run_pending().remove(0);
    assert_eq!(rehit.kind, ResponseKind::Cached);
    assert_eq!(bits(&rehit.cluster), bits(&fresh.cluster));
}

#[test]
fn epoch_bump_restamps_sketches() {
    let mut e = Engine::new(
        cycle6(),
        EngineConfig {
            sketch_hubs: 3,
            ..EngineConfig::default()
        },
    );
    assert_eq!(e.sketch_store().unwrap().epoch(), 0);
    e.update_graph(cycle6_chord());
    let store = e.sketch_store().unwrap();
    assert_eq!(store.epoch(), e.epoch());
    assert_eq!(store.epoch(), 1);
    // The rebuilt sketches serve the new graph: a spliced query still
    // lands Full with a current-epoch certificate.
    assert!(e.submit(query(&[0])).is_accepted());
    let r = e.run_pending().remove(0);
    assert_eq!(r.kind, ResponseKind::Full);
    assert!(matches!(r.certificate, Certificate::ResidualMass { .. }));
    assert_eq!(e.stats().spliced, 1);
}

#[test]
fn only_the_stale_rung_crosses_epochs_and_it_says_so() {
    let mut e = Engine::new(cycle6(), EngineConfig::default());
    // Warm the (seeds, α) stale cache at epoch 0.
    assert!(e.submit(query(&[2])).is_accepted());
    assert_eq!(e.run_pending()[0].kind, ResponseKind::Full);
    // Two mutations later, an expired deadline has nothing fresh to
    // serve; the stale rung answers, labeled with the birth epoch.
    e.update_graph(cycle6_chord());
    e.update_graph(cycle6());
    assert_eq!(e.epoch(), 2);
    let dead = Query {
        deadline: Some(Duration::ZERO),
        ..query(&[2])
    };
    assert!(e.submit(dead).is_accepted());
    let r = e.run_pending().remove(0);
    assert_eq!(r.kind, ResponseKind::Stale);
    assert!(r.kind.is_degraded());
    match r.certificate {
        Certificate::StaleResidualMass {
            remaining,
            per_degree_bound,
            epoch,
        } => {
            assert_eq!(epoch, 0, "label the epoch the answer was certified at");
            assert!((0.0..=1.0).contains(&remaining));
            assert!(per_degree_bound > 0.0);
        }
        c => panic!("stale rung must carry an epoch-labeled certificate, got {c:?}"),
    }
    // Every non-stale response in this run certified against the
    // current graph (no epoch label).
    assert_eq!(e.stats().stale, 1);
}
