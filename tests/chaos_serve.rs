//! Chaos suite for the `acir-serve` query engine.
//!
//! Property-tests the serving invariant over random fault × arrival
//! interleavings — worker panics, NaN corruption, budget starvation,
//! and deadline storms, at 1 and 4 worker threads:
//!
//! > Every admitted request receives exactly one certified response,
//! > the shutdown drain answers everything still queued, and the
//! > process never panics.
//!
//! Because every fault decision is a pure function of `(seed, id,
//! attempt)` and work decomposition is a pure function of the input,
//! the *entire service history* — ids, ladder rungs, clusters, retry
//! counts — must also be bit-identical across thread counts; the suite
//! asserts that too.

use acir::serve::{Admission, ChaosConfig, Engine, EngineConfig, Query, Response};
use acir_graph::EdgeOp;
use acir_runtime::Certificate;
use proptest::prelude::*;
use std::sync::Once;
use std::time::Duration;

/// Suppress the default panic hook's backtrace for injected chaos
/// panics (they are caught by the engine's fence); real panics — test
/// assertion failures included — still print.
fn quiet_chaos_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("chaos:") {
                prev(info);
            }
        }));
    });
}

/// One randomized service run: fault schedule, offered load, and the
/// admission-control pressure it plays out under.
#[derive(Debug, Clone)]
struct Plan {
    chaos_seed: u64,
    panic_rate: f64,
    nan_rate: f64,
    /// Per request: `(seed-node selector, expired-deadline?, fine-ε?)`.
    requests: Vec<(u32, bool, bool)>,
    waves: usize,
    capacity: u64,
    queue_cap: usize,
    max_attempts: usize,
    /// Hub-sketch count; 0 disables the splice path entirely.
    sketch_hubs: usize,
    /// Apply a mid-stream edge delta between submitting and running
    /// every other wave — in-flight requests must never observe a
    /// half-applied delta (epoch-stamped consistency).
    delta_waves: bool,
    /// Probability that a delta's incremental repair faults at a given
    /// epoch, forcing the full-rebuild fallback.
    repair_fault_rate: f64,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        (0u64..1_000_000, 0u8..4, 0u8..4),
        collection::vec((0u32..64, 0u8..4), 1..28),
        (1usize..4, 64u64..200_000, 1usize..9, 1usize..5),
        0usize..3,
        (0u8..2, 0u8..2),
    )
        .prop_map(
            |(
                (chaos_seed, p, n),
                reqs,
                (waves, capacity, queue_cap, max_attempts),
                hubs,
                (delta_waves, rf),
            )| Plan {
                chaos_seed,
                panic_rate: f64::from(p) * 0.15,
                nan_rate: f64::from(n) * 0.15,
                requests: reqs
                    .into_iter()
                    .map(|(sel, flavor)| (sel, flavor & 1 != 0, flavor & 2 != 0))
                    .collect(),
                waves,
                capacity,
                queue_cap,
                max_attempts,
                sketch_hubs: hubs * 8,
                delta_waves: delta_waves == 1,
                repair_fault_rate: f64::from(rf) * 0.5,
            },
        )
}

/// What must be identical across thread counts: the full service
/// history minus wall-clock times.
type Summary = (u64, &'static str, u64, Vec<(u32, u64)>, usize);

fn summarize(r: &Response) -> Summary {
    (
        r.id,
        r.kind.name(),
        r.epsilon_used.to_bits(),
        r.cluster.iter().map(|&(u, x)| (u, x.to_bits())).collect(),
        r.retries,
    )
}

/// Drive one full engine lifetime under `plan` and check the serving
/// invariant; returns the deterministic service history.
fn run_plan(plan: &Plan) -> Vec<Summary> {
    let g = acir_graph::gen::deterministic::barbell(10, 3).unwrap();
    let n = g.n() as u32;
    let cfg = EngineConfig {
        queue_cap: plan.queue_cap,
        capacity: plan.capacity,
        refill_per_cycle: plan.capacity / 2,
        min_grant: 16,
        max_attempts: plan.max_attempts,
        chaos: Some(ChaosConfig {
            repair_fault_rate: plan.repair_fault_rate,
            ..ChaosConfig::with_rates(plan.chaos_seed, plan.panic_rate, plan.nan_rate)
        }),
        sketch_hubs: plan.sketch_hubs,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(g, cfg);
    let mut admitted: Vec<u64> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();
    let wave_len = plan.requests.len().div_ceil(plan.waves);
    for (w, wave) in plan.requests.chunks(wave_len.max(1)).enumerate() {
        for &(sel, expired, fine) in wave {
            let q = Query {
                seeds: vec![sel % n],
                alpha: 0.1,
                epsilon: if fine { 1e-4 } else { 1e-2 },
                deadline: expired.then_some(Duration::ZERO),
                options: Default::default(),
            };
            match engine.submit(q) {
                Admission::Accepted { id, .. } => admitted.push(id),
                Admission::Rejected(o) => {
                    // Rejections are structural, never mid-compute.
                    assert!(!o.detail.is_empty());
                }
            }
        }
        // Mid-stream graph mutation with requests already queued: the
        // delta is atomic, bumps the epoch exactly once, and the
        // queued (old-epoch) requests still get exactly one certified
        // response each — they are never batched or spliced across the
        // mutation. A repair fault (rate-driven) must fall back to a
        // full sketch rebuild, never an error.
        if plan.delta_waves && w % 2 == 1 {
            let u = 13 + (w as u32 * 3) % 10;
            let v = 13 + (w as u32 * 3 + 1) % 10;
            let before = engine.epoch();
            let s = engine
                .update_graph_delta(&[EdgeOp::Insert {
                    u,
                    v,
                    weight: 1.0 + w as f64,
                }])
                .expect("valid delta must apply");
            assert!(
                (s.edges > 0 && s.epoch == before + 1) || (s.edges == 0 && s.epoch == before),
                "epoch must move exactly with the delta: {s:?}"
            );
        }
        responses.extend(engine.run_pending());
    }
    // Submit one last burst, then shut down without running a cycle:
    // the shutdown drain must still answer it.
    for &(sel, ..) in plan.requests.iter().take(3) {
        if let Admission::Accepted { id, .. } = engine.submit(Query {
            seeds: vec![sel % n],
            alpha: 0.1,
            epsilon: 1e-2,
            deadline: None,
            options: Default::default(),
        }) {
            admitted.push(id);
        }
    }
    responses.extend(engine.shutdown());

    // Exactly one response per admitted request, nothing else.
    let mut answered: Vec<u64> = responses.iter().map(|r| r.id).collect();
    answered.sort_unstable();
    admitted.sort_unstable();
    assert_eq!(answered, admitted, "admitted ≠ answered under {plan:?}");

    // Every response is certified and clean — no uncertified converged
    // result and no NaN ever reaches a client.
    for r in &responses {
        match r.certificate {
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            } => {
                // Residual repair across a delta works with *signed*
                // residuals: a repaired answer's remaining mass can dip
                // slightly below zero (bounded by ε·vol over the
                // repaired support), so the lower bound here is loose
                // where a fresh push's would be exactly 0.
                assert!(
                    (-0.5..=1.0 + 1e-12).contains(&remaining),
                    "uncertifiable residual mass {remaining} on request {}",
                    r.id
                );
                assert!(per_degree_bound > 0.0);
            }
            Certificate::ResidualNorm { value } => assert!(value.is_finite()),
            Certificate::StaleResidualMass {
                remaining,
                per_degree_bound,
                ..
            } => {
                // Only the Stale rung may serve an epoch-labeled
                // answer; everything fresher certifies against the
                // current graph.
                assert_eq!(
                    r.kind.name(),
                    "stale",
                    "epoch-labeled certificate on non-stale rung for request {}",
                    r.id
                );
                assert!((0.0..=1.0 + 1e-12).contains(&remaining));
                assert!(per_degree_bound > 0.0);
            }
            other => panic!("certificate kind {other:?} cannot come from the serve ladder"),
        }
        assert!(
            r.cluster.iter().all(|&(_, x)| x.is_finite()),
            "non-finite value served on request {}",
            r.id
        );
        if !r.kind.is_degraded() {
            assert_eq!(r.epsilon_used.to_bits(), r.epsilon_requested.to_bits());
        }
    }
    responses.iter().map(summarize).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving invariant holds under arbitrary fault × arrival
    /// interleavings, and the full service history is bit-identical
    /// at 1 and 4 worker threads.
    #[test]
    fn admitted_requests_get_exactly_one_certified_response(plan in arb_plan()) {
        quiet_chaos_panics();
        std::env::set_var(acir::exec::THREADS_ENV, "1");
        let solo = run_plan(&plan);
        std::env::set_var(acir::exec::THREADS_ENV, "4");
        let wide = run_plan(&plan);
        std::env::remove_var(acir::exec::THREADS_ENV);
        prop_assert_eq!(solo, wide);
    }
}

/// The committed fault schedules the acceptance gate names: a panic
/// storm, a NaN storm, a starvation squeeze, and a deadline storm, each
/// driven deterministically and each ending with every admitted request
/// answered exactly once.
#[test]
fn committed_fault_schedules_hold_the_invariant() {
    quiet_chaos_panics();
    let schedules = [
        Plan {
            chaos_seed: 0xACE,
            panic_rate: 0.5,
            nan_rate: 0.0,
            requests: (0..24).map(|i| (i, false, i % 2 == 0)).collect(),
            waves: 3,
            capacity: 150_000,
            queue_cap: 8,
            max_attempts: 3,
            sketch_hubs: 0,
            delta_waves: false,
            repair_fault_rate: 0.0,
        },
        Plan {
            chaos_seed: 0xBEE,
            panic_rate: 0.0,
            nan_rate: 0.5,
            requests: (0..24).map(|i| (i * 7, false, false)).collect(),
            waves: 2,
            capacity: 150_000,
            queue_cap: 8,
            max_attempts: 2,
            sketch_hubs: 0,
            delta_waves: true,
            repair_fault_rate: 0.0,
        },
        Plan {
            chaos_seed: 0xCAB,
            panic_rate: 0.25,
            nan_rate: 0.25,
            requests: (0..32).map(|i| (i * 3, false, true)).collect(),
            waves: 4,
            capacity: 256, // squeezed bucket: most requests starve
            queue_cap: 4,
            max_attempts: 3,
            sketch_hubs: 8,
            delta_waves: true,
            repair_fault_rate: 0.0,
        },
        Plan {
            chaos_seed: 0xDAD,
            panic_rate: 0.25,
            nan_rate: 0.0,
            requests: (0..24).map(|i| (i, i % 3 == 0, false)).collect(),
            waves: 3,
            capacity: 150_000,
            queue_cap: 8,
            max_attempts: 3,
            sketch_hubs: 0,
            delta_waves: false,
            repair_fault_rate: 0.0,
        },
        // Panic + NaN storm with the splice path live: faults during
        // spliced first attempts must degrade through raw-push retries
        // and down the ladder, with the history still deterministic.
        Plan {
            chaos_seed: 0xFAB,
            panic_rate: 0.5,
            nan_rate: 0.25,
            requests: (0..24).map(|i| (i * 5, i % 5 == 0, i % 2 == 0)).collect(),
            waves: 3,
            capacity: 150_000,
            queue_cap: 8,
            max_attempts: 3,
            sketch_hubs: 8,
            delta_waves: true,
            repair_fault_rate: 0.0,
        },
        // Delta churn with every repair faulted: each mutation falls
        // back to a full sketch rebuild mid-stream, and the ladder
        // still answers everything exactly once.
        Plan {
            chaos_seed: 0xFEED,
            panic_rate: 0.25,
            nan_rate: 0.25,
            requests: (0..24).map(|i| (i * 3, i % 7 == 0, i % 2 == 0)).collect(),
            waves: 4,
            capacity: 150_000,
            queue_cap: 8,
            max_attempts: 3,
            sketch_hubs: 8,
            delta_waves: true,
            repair_fault_rate: 1.0,
        },
    ];
    for plan in &schedules {
        let history = run_plan(plan);
        assert!(!history.is_empty() || plan.capacity < 1024);
    }
}

/// A panic injected into the spliced first attempt degrades to a raw
/// push retry and still lands a Full answer — the splice path adds a
/// rung above the ladder, never a new failure mode.
#[test]
fn injected_splice_fault_degrades_to_raw_push() {
    quiet_chaos_panics();
    let g = acir_graph::gen::deterministic::barbell(10, 3).unwrap();
    let mut chaos = ChaosConfig::default();
    chaos.forced_panics.insert((0, 0)); // kill the splice attempt
    let mut e = Engine::new(
        g,
        EngineConfig {
            chaos: Some(chaos),
            sketch_hubs: 8,
            max_attempts: 3,
            ..EngineConfig::default()
        },
    );
    let Admission::Accepted { .. } = e.submit(Query {
        seeds: vec![0],
        alpha: 0.1,
        epsilon: 1e-2,
        deadline: None,
        options: Default::default(),
    }) else {
        panic!("query rejected");
    };
    let rs = e.run_pending();
    assert_eq!(rs[0].kind.name(), "full");
    assert_eq!(rs[0].retries, 1);
    assert!(rs[0].cluster.iter().all(|&(_, x)| x.is_finite()));
    assert_eq!(e.stats().spliced, 1);
}

/// With retries exhausted by splice faults, the request walks the rest
/// of the ladder instead of erroring: the answer is degraded, certified,
/// and NaN-free.
#[test]
fn splice_faults_with_no_retries_walk_the_ladder() {
    quiet_chaos_panics();
    let g = acir_graph::gen::deterministic::barbell(10, 3).unwrap();
    let mut chaos = ChaosConfig::default();
    chaos.forced_panics.insert((0, 0));
    let mut e = Engine::new(
        g,
        EngineConfig {
            chaos: Some(chaos),
            sketch_hubs: 8,
            max_attempts: 1, // no retry budget: the fault must degrade
            ..EngineConfig::default()
        },
    );
    assert!(e
        .submit(Query {
            seeds: vec![0],
            alpha: 0.1,
            epsilon: 1e-2,
            deadline: None,
            options: Default::default(),
        })
        .is_accepted());
    let rs = e.run_pending();
    assert_eq!(rs.len(), 1);
    assert!(rs[0].kind.is_degraded(), "kind {:?}", rs[0].kind);
    assert!(rs[0].cluster.iter().all(|&(_, x)| x.is_finite()));
}
