//! Golden-trace conformance suite.
//!
//! Every instrumented kernel is run on a small deterministic input and
//! its structured trace (see `acir-obs`) is compared against a
//! canonical snapshot under `tests/golden/`. The diff is structural:
//! event kinds, span nesting and iteration counts must match exactly,
//! while float-valued fields (residuals, certificate slacks,
//! conductances) are compared to a relative tolerance.
//!
//! Regenerate snapshots after an intentional behavior change with
//!
//! ```text
//! ACIR_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! and commit the updated `tests/golden/*.jsonl`. Blessing is
//! idempotent: a second run with `ACIR_BLESS=1` rewrites byte-identical
//! files. On drift the failing test writes the observed trace next to
//! the snapshot as `<name>.jsonl.actual` (ignored by git) so the two
//! can be diffed directly.
//!
//! Traces contain no wall-clock data (wall stamps are excluded from
//! canonical serialization) and all parallel fan-out merges in
//! deterministic chunk order, so the snapshots are bit-stable across
//! `ACIR_THREADS` settings — CI runs this suite at 1 and 4 threads.

use acir_graph::gen::deterministic::{barbell, grid2d, path, ring_of_cliques};
use acir_graph::Graph;
use acir_linalg::chebyshev::cheb_heat_kernel_budgeted;
use acir_linalg::{
    cg_budgeted, lanczos_budgeted, power_method_budgeted, CgOptions, DenseMatrix, FaultyOp,
    PowerOptions, ShiftedOp,
};
use acir_obs::{golden, Trace};
use acir_runtime::{Budget, Diagnostics, FaultConfig, SolverOutcome};
use std::path::{Path, PathBuf};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{name}.jsonl"))
}

/// Structural well-formedness: at least one span, balanced enter/exit,
/// and at least one typed (non-span) event.
fn assert_well_formed(name: &str, trace: &Trace) {
    let counts = trace.counts();
    let enters = counts.get("span_enter").copied().unwrap_or(0);
    let exits = counts.get("span_exit").copied().unwrap_or(0);
    assert!(enters >= 1, "{name}: no spans recorded");
    assert_eq!(enters, exits, "{name}: unbalanced spans");
    assert!(
        counts
            .keys()
            .any(|k| *k != "span_enter" && *k != "span_exit"),
        "{name}: no typed events besides spans"
    );
}

fn check(name: &str, diags: &Diagnostics) {
    assert_well_formed(name, &diags.trace);
    if let Err(e) = golden::check_trace(&golden_path(name), &diags.trace, 1e-7) {
        panic!("golden trace drift for `{name}`:\n{e}");
    }
}

/// Deterministic non-degenerate start vector.
fn seed_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect()
}

fn laplacian_of_path(n: usize) -> (Graph, acir_linalg::CsrMatrix) {
    let g = path(n).expect("path graph");
    let nl = acir_spectral::normalized_laplacian(&g);
    (g, nl)
}

// ---------------------------------------------------------------- linalg

/// A diagonal operator with a well-separated dominant eigenvalue, so
/// power iteration converges in a handful of steps.
fn gapped_diag() -> DenseMatrix {
    DenseMatrix::from_diag(&[3.0, 1.0, 0.5, 0.25, 0.1, 0.05])
}

#[test]
fn golden_linalg_power_converged() {
    let a = gapped_diag();
    let opts = PowerOptions {
        max_iters: 500,
        tol: 1e-8,
        deflate: vec![],
    };
    let out = power_method_budgeted(&a, &seed_vector(6), &opts, &Budget::unlimited())
        .expect("power method");
    assert!(out.is_converged());
    check("linalg_power_converged", out.diagnostics());
}

#[test]
fn golden_linalg_power_exhausted() {
    let a = gapped_diag();
    let opts = PowerOptions {
        max_iters: usize::MAX,
        tol: 1e-14,
        deflate: vec![],
    };
    let out = power_method_budgeted(&a, &seed_vector(6), &opts, &Budget::iterations(4))
        .expect("power method");
    assert!(!out.is_converged());
    check("linalg_power_exhausted", out.diagnostics());
}

#[test]
fn golden_linalg_lanczos_converged() {
    let (_g, nl) = laplacian_of_path(24);
    let out =
        lanczos_budgeted(&nl, &seed_vector(24), 8, &[], &Budget::unlimited()).expect("lanczos");
    check("linalg_lanczos_converged", out.diagnostics());
}

#[test]
fn golden_linalg_cg_converged() {
    let (_g, nl) = laplacian_of_path(20);
    // 2I − 𝓛 is SPD (spectrum within (0, 2]); solve against a fixed rhs.
    let spd = ShiftedOp::new(&nl, -1.0, 2.0);
    let b = seed_vector(20);
    let opts = CgOptions {
        max_iters: 200,
        tol: 1e-10,
    };
    let out = cg_budgeted(&spd, &b, &[0.0; 20], &opts, &Budget::unlimited()).expect("cg solve");
    assert!(out.is_converged());
    check("linalg_cg_converged", out.diagnostics());
}

#[test]
fn golden_linalg_cg_exhausted() {
    let (_g, nl) = laplacian_of_path(20);
    let spd = ShiftedOp::new(&nl, -1.0, 2.0);
    let b = seed_vector(20);
    let opts = CgOptions {
        max_iters: 200,
        tol: 1e-14,
    };
    let out = cg_budgeted(&spd, &b, &[0.0; 20], &opts, &Budget::iterations(3)).expect("cg solve");
    assert!(!out.is_converged());
    check("linalg_cg_exhausted", out.diagnostics());
}

#[test]
fn golden_linalg_chebyshev_converged() {
    let (_g, nl) = laplacian_of_path(16);
    let out = cheb_heat_kernel_budgeted(&nl, 0.5, &seed_vector(16), 2.0, 16, &Budget::unlimited())
        .expect("chebyshev heat kernel");
    assert!(out.is_converged());
    check("linalg_chebyshev_converged", out.diagnostics());
}

#[test]
fn golden_linalg_chebyshev_exhausted() {
    let (_g, nl) = laplacian_of_path(16);
    let out =
        cheb_heat_kernel_budgeted(&nl, 0.5, &seed_vector(16), 2.0, 24, &Budget::iterations(5))
            .expect("chebyshev heat kernel");
    assert!(!out.is_converged());
    check("linalg_chebyshev_exhausted", out.diagnostics());
}

#[test]
fn golden_linalg_power_faulted() {
    // NaN injection after two clean applies: the solver must surface a
    // structured divergence, and the harness surfaces the corruption
    // count as a fault_injected event — the pattern every resilient
    // caller follows.
    let (_g, nl) = laplacian_of_path(16);
    let faulty = FaultyOp::new(&nl, FaultConfig::nans(1.0).after_clean_applies(2));
    let opts = PowerOptions {
        max_iters: 100,
        tol: 1e-10,
        deflate: vec![],
    };
    let mut out = power_method_budgeted(&faulty, &seed_vector(16), &opts, &Budget::unlimited())
        .expect("power method");
    assert!(!out.is_usable(), "NaN injection must not converge");
    out.diagnostics_mut()
        .fault_injected("nan", faulty.faults_injected());
    check("linalg_power_faulted", out.diagnostics());
}

// ----------------------------------------------------------------- local

#[test]
fn golden_local_ppr_push_converged() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let out =
        acir_local::ppr_push_budgeted(&g, &[0], 0.1, 1e-4, &Budget::unlimited()).expect("ppr push");
    assert!(out.is_converged());
    check("local_ppr_push_converged", out.diagnostics());
}

#[test]
fn golden_local_ppr_push_exhausted() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let out = acir_local::ppr_push_budgeted(&g, &[0], 0.05, 1e-6, &Budget::iterations(10))
        .expect("ppr push");
    assert!(!out.is_converged());
    check("local_ppr_push_exhausted", out.diagnostics());
}

#[test]
fn golden_local_hk_relax_converged() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let out = acir_local::hk_relax_budgeted(&g, 0, 5.0, 1e-4, 1e-6, &Budget::unlimited())
        .expect("hk relax");
    assert!(out.is_converged());
    check("local_hk_relax_converged", out.diagnostics());
}

// ------------------------------------------------------------------ flow

fn diamond_network() -> acir_flow::FlowNetwork {
    let mut net = acir_flow::FlowNetwork::new(6);
    for &(u, v, c) in &[
        (0usize, 1usize, 3.0f64),
        (0, 2, 2.0),
        (1, 3, 2.0),
        (1, 4, 1.0),
        (2, 3, 1.0),
        (2, 4, 2.0),
        (3, 5, 3.0),
        (4, 5, 2.0),
    ] {
        net.add_arc(u, v, c).expect("arc");
    }
    net
}

#[test]
fn golden_flow_dinic_converged() {
    let mut net = diamond_network();
    let out = net
        .max_flow_budgeted(0, 5, &Budget::unlimited())
        .expect("max flow");
    assert!(out.is_converged());
    check("flow_dinic_converged", out.diagnostics());
}

#[test]
fn golden_flow_dinic_exhausted() {
    let mut net = diamond_network();
    let out = net
        .max_flow_budgeted(0, 5, &Budget::iterations(1))
        .expect("max flow");
    assert!(!out.is_converged());
    check("flow_dinic_exhausted", out.diagnostics());
}

#[test]
fn golden_flow_push_relabel_converged() {
    let mut net = acir_flow::PushRelabelNetwork::new(6);
    for &(u, v, c) in &[
        (0usize, 1usize, 3.0f64),
        (0, 2, 2.0),
        (1, 3, 2.0),
        (1, 4, 1.0),
        (2, 3, 1.0),
        (2, 4, 2.0),
        (3, 5, 3.0),
        (4, 5, 2.0),
    ] {
        net.add_arc(u, v, c).expect("arc");
    }
    let out = net
        .max_flow_budgeted(0, 5, &Budget::unlimited())
        .expect("max flow");
    assert!(out.is_converged());
    check("flow_push_relabel_converged", out.diagnostics());
}

#[test]
fn golden_flow_mqi_converged() {
    let g = barbell(6, 2).expect("barbell");
    let side: Vec<u32> = (0..7).collect();
    let out = acir_flow::mqi_budgeted(&g, &side, &Budget::unlimited()).expect("mqi");
    assert!(out.is_converged());
    check("flow_mqi_converged", out.diagnostics());
}

// -------------------------------------------------------------- spectral

#[test]
fn golden_spectral_fiedler_converged() {
    let g = barbell(6, 0).expect("barbell");
    let out = acir_spectral::fiedler_vector_budgeted(&g, &Budget::unlimited()).expect("fiedler");
    assert!(out.is_converged());
    check("spectral_fiedler_converged", out.diagnostics());
}

#[test]
fn golden_spectral_pagerank_converged() {
    let g = grid2d(4, 4).expect("grid");
    let out = acir_spectral::pagerank_budgeted(
        &g,
        0.2,
        &acir_spectral::Seed::Node(0),
        &Budget::unlimited(),
    )
    .expect("pagerank");
    assert!(out.is_converged());
    check("spectral_pagerank_converged", out.diagnostics());
}

#[test]
fn golden_spectral_pagerank_power_sell() {
    // The SpMV layout routed through the context: the `spmv layout
    // sell` note in this snapshot pins that a per-request preference
    // reaches the kernel (and is recorded), and the identical residual
    // stream pins that SELL-C-σ execution is bit-identical to the
    // default layout.
    let g = grid2d(4, 4).expect("grid");
    let mut ctx =
        acir_runtime::KernelCtx::budgeted("spectral.pagerank_power", &Budget::unlimited())
            .with_spmv_layout(acir_runtime::SpmvLayout::Sell);
    let out =
        acir_spectral::pagerank_power_ctx(&g, 0.2, &acir_spectral::Seed::Node(0), 30, &mut ctx)
            .expect("pagerank power");
    assert!(out.is_converged());
    check("spectral_pagerank_power_sell", out.diagnostics());
}

#[test]
fn golden_spectral_heat_kernel_converged() {
    let g = grid2d(4, 4).expect("grid");
    let out = acir_spectral::heat_kernel_chebyshev_budgeted(
        &g,
        1.0,
        &acir_spectral::Seed::Node(0),
        12,
        &Budget::unlimited(),
    )
    .expect("heat kernel");
    assert!(out.is_converged());
    check("spectral_heat_kernel_converged", out.diagnostics());
}

// ------------------------------------------------------------- partition

#[test]
fn golden_partition_spectral_bisect_converged() {
    let g = barbell(6, 0).expect("barbell");
    let out = acir_partition::spectral_bisect_budgeted(&g, &Budget::unlimited())
        .expect("spectral bisect");
    assert!(out.is_converged());
    check("partition_spectral_bisect_converged", out.diagnostics());
}

#[test]
fn golden_partition_spectral_bisect_exhausted() {
    let g = barbell(6, 0).expect("barbell");
    let out = acir_partition::spectral_bisect_budgeted(&g, &Budget::iterations(3))
        .expect("spectral bisect");
    assert!(!out.is_converged());
    check("partition_spectral_bisect_exhausted", out.diagnostics());
}

fn ncp_opts() -> acir_partition::NcpOptions {
    acir_partition::NcpOptions {
        min_size: 2,
        max_size: 200,
        bins_per_decade: 6,
        seeds: 12,
        alphas: vec![0.2, 0.05],
        epsilons: vec![1e-3, 1e-4],
        threads: 2,
        ..Default::default()
    }
}

#[test]
fn golden_partition_ncp_local_converged() {
    let g = ring_of_cliques(6, 8).expect("ring of cliques");
    let out = acir_partition::ncp_local_spectral_budgeted(&g, &ncp_opts(), &Budget::unlimited())
        .expect("ncp");
    assert!(out.is_converged());
    check("partition_ncp_local_converged", out.diagnostics());
}

#[test]
fn golden_partition_ncp_local_exhausted() {
    let g = ring_of_cliques(6, 8).expect("ring of cliques");
    let out = acir_partition::ncp_local_spectral_budgeted(&g, &ncp_opts(), &Budget::iterations(5))
        .expect("ncp");
    assert!(!out.is_converged());
    check("partition_ncp_local_exhausted", out.diagnostics());
}

#[test]
fn golden_partition_ncp_metis_mqi() {
    let g = ring_of_cliques(6, 8).expect("ring of cliques");
    let (points, diags) =
        acir_partition::ncp_metis_mqi_traced(&g, &ncp_opts()).expect("metis+mqi ncp");
    assert!(!points.is_empty());
    check("partition_ncp_metis_mqi", &diags);
}

// ----------------------------------------------------------------- serve

/// A sketch-routed serve query's full stage progression —
/// `admitted → splice → certificate → responded:full` — plus the
/// hub-sketch build note, pinned structurally. A regression that stops
/// routing eligible queries through the splice path (or reorders the
/// ladder) shows up here as a stage-event diff.
#[test]
fn golden_serve_sketch_query() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let mut engine = acir::serve::Engine::new(
        g,
        acir::serve::EngineConfig {
            sketch_hubs: 4,
            ..acir::serve::EngineConfig::default()
        },
    );
    let admission = engine.submit(acir::serve::Query {
        seeds: vec![0],
        alpha: 0.1,
        epsilon: 1e-2,
        deadline: None,
        options: Default::default(),
    });
    assert!(admission.is_accepted());
    let rs = engine.run_pending();
    assert_eq!(rs[0].kind.name(), "full");
    assert_eq!(engine.stats().spliced, 1);
    let mut diags = engine.trace().clone();
    diags.finish_spans();
    check("serve_sketch_query", &diags);
}

/// The dynamic-graph stage progression — a query answered and cached,
/// then `delta applied → hub sketches repaired → certificate
/// (re-issued for the repaired answer) → answer cache accounting`,
/// then the repaired answer served as `cache_hit → responded:cached`
/// on the new epoch — pinned structurally. A regression that silently
/// reverts the delta path to purge-and-rebuild shows up here as a
/// missing `repaired` note or a dropped certificate event.
#[test]
fn golden_serve_delta_repair() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let mut engine = acir::serve::Engine::new(
        g,
        acir::serve::EngineConfig {
            // Sketches live at α = 0.1; the query runs at α = 0.2, so
            // its answer takes the raw push path and caches a
            // repairable residual vector (a spliced answer would not).
            sketch_hubs: 4,
            sketch_alpha: 0.1,
            ..acir::serve::EngineConfig::default()
        },
    );
    let q = acir::serve::Query {
        seeds: vec![0],
        alpha: 0.2,
        epsilon: 1e-2,
        deadline: None,
        options: Default::default(),
    };
    assert!(engine.submit(q.clone()).is_accepted());
    assert_eq!(engine.run_pending()[0].kind.name(), "full");
    let summary = engine
        .update_graph_delta(&[acir_graph::EdgeOp::Insert {
            u: 0,
            v: 12,
            weight: 2.0,
        }])
        .expect("delta applies");
    assert_eq!(summary.epoch, 1);
    assert_eq!(summary.answers_revalidated + summary.answers_repaired, 1);
    assert!(!summary.sketches_rebuilt);
    assert!(engine.submit(q).is_accepted());
    assert_eq!(engine.run_pending()[0].kind.name(), "cached");
    let mut diags = engine.trace().clone();
    diags.finish_spans();
    check("serve_delta_repair", &diags);
}

/// The snapshot-lifecycle stage progression (DESIGN.md §15): a query
/// answered and cached, then a *relabeling compaction staged to fire
/// between admission and batch execution* of a second query — which
/// still answers `full` against its pinned pre-compaction snapshot —
/// with the `compacted`, `hub sketches relabeled`, and `answer cache
/// relabeled` notes landing between its `admitted` and `responded`
/// stages, then the relabeled cache entry served as `cache_hit` on the
/// new epoch. A regression that un-pins in-flight requests, or reverts
/// the compaction path to purge-and-rebuild, shows up here as a stage
/// or note diff.
#[test]
fn golden_serve_compact_inflight() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let mut engine = acir::serve::Engine::new(
        g,
        acir::serve::EngineConfig {
            sketch_hubs: 4,
            sketch_alpha: 0.1,
            ..acir::serve::EngineConfig::default()
        },
    );
    let q = acir::serve::Query {
        seeds: vec![0],
        alpha: 0.2,
        epsilon: 1e-2,
        deadline: None,
        options: Default::default(),
    };
    assert!(engine.submit(q.clone()).is_accepted());
    assert_eq!(engine.run_pending()[0].kind.name(), "full");
    // A second query (fresh seed, so the cache cannot answer it early)
    // with the compaction staged to fire just before its batch runs.
    let acir::serve::Admission::Accepted { id, .. } = engine.submit(acir::serve::Query {
        seeds: vec![7],
        ..q.clone()
    }) else {
        panic!("query rejected");
    };
    engine.stage_write(
        acir::serve::PublishPoint::BeforeBatch,
        id,
        acir::serve::WriteOp::Compact(acir_graph::snapshot::CompactionOrder::Rcm),
    );
    let r = engine.run_pending().remove(0);
    // The pinned request is served in full from its pre-compaction
    // snapshot even though the head moved underneath it.
    assert_eq!(r.kind.name(), "full");
    assert_eq!(engine.epoch(), 1);
    assert!(engine.snapshot().is_relabeled());
    assert!(engine.submit(q).is_accepted());
    assert_eq!(engine.run_pending()[0].kind.name(), "cached");
    let mut diags = engine.trace().clone();
    diags.finish_spans();
    check("serve_compact_inflight", &diags);
}

// -------------------------------------------------- cross-cutting checks

/// A kernel trace round-trips through the JSONL sink and parses back as
/// one object per line with a `kind` field.
#[test]
fn traces_serialize_to_parseable_jsonl() {
    let g = ring_of_cliques(4, 6).expect("ring of cliques");
    let out =
        acir_local::ppr_push_budgeted(&g, &[0], 0.1, 1e-4, &Budget::unlimited()).expect("ppr push");
    let mut sink = acir_obs::JsonlSink::new(Vec::new());
    out.diagnostics().trace.replay_into(&mut sink);
    let buf = sink.into_inner();
    let text = String::from_utf8(buf).expect("utf8");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("valid json line");
        assert!(
            v.get("kind").and_then(|k| k.as_str()).is_some(),
            "line missing kind: {line}"
        );
    }
}

/// Budget exhaustion produces the full certified-outcome event triplet:
/// budget_exhausted, certificate_issued, and closed spans.
#[test]
fn exhausted_outcomes_carry_certificate_events() {
    let a = gapped_diag();
    let opts = PowerOptions {
        max_iters: usize::MAX,
        tol: 1e-14,
        deflate: vec![],
    };
    let out = power_method_budgeted(&a, &seed_vector(6), &opts, &Budget::iterations(4))
        .expect("power method");
    let counts = out.diagnostics().trace.counts();
    assert_eq!(counts.get("budget_exhausted").copied().unwrap_or(0), 1);
    assert_eq!(counts.get("certificate").copied().unwrap_or(0), 1);
    match out {
        SolverOutcome::BudgetExhausted { .. } => {}
        other => panic!("expected exhaustion, got {other:?}"),
    }
}
