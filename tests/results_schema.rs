//! Golden-schema tests for the committed experiment outputs under
//! `results/`.
//!
//! The CSVs are artifacts of the figure/case-study pipelines; these
//! tests pin their *schemas* (headers, column counts, field types) and
//! the invariants any valid run must satisfy (conductances in [0, 1],
//! positive sizes, finite errors), so a pipeline change that silently
//! alters the output shape fails here instead of in a plotting script
//! much later.

use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Split one CSV line on commas, keeping commas inside parentheses
/// (graph labels like `barbell(6,2)` are single fields).
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    fields.push(cur);
    // Compound parameter fields like `alpha=0.5519,k=1` are one field:
    // merge adjacent `key=value` tokens back together.
    let mut merged: Vec<String> = Vec::with_capacity(fields.len());
    for f in fields {
        match merged.last_mut() {
            Some(prev) if prev.contains('=') && f.contains('=') => {
                prev.push(',');
                prev.push_str(&f);
            }
            _ => merged.push(f),
        }
    }
    merged
}

/// Parse a CSV into (header, rows), verifying rectangular shape.
fn load_csv(name: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let path = results_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> =
        split_fields(lines.next().unwrap_or_else(|| panic!("{name} is empty")));
    let rows: Vec<Vec<String>> = lines.map(split_fields).collect();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            header.len(),
            "{name} row {i} has {} fields, header has {}",
            row.len(),
            header.len()
        );
    }
    assert!(!rows.is_empty(), "{name} has a header but no data rows");
    (header, rows)
}

fn as_f64(name: &str, row: &[String], col: usize) -> f64 {
    row[col]
        .parse()
        .unwrap_or_else(|e| panic!("{name}: `{}` is not a number: {e}", row[col]))
}

#[test]
fn fig1a_schema_and_invariants() {
    let (header, rows) = load_csv("fig1a.csv");
    assert_eq!(header, ["method", "size", "conductance"]);
    let mut methods = std::collections::BTreeSet::new();
    for row in &rows {
        methods.insert(row[0].clone());
        let size = as_f64("fig1a", row, 1);
        assert!(size >= 1.0 && size.fract() == 0.0, "bad size {size}");
        let phi = as_f64("fig1a", row, 2);
        assert!((0.0..=1.0).contains(&phi), "conductance {phi} out of [0,1]");
        assert!(phi > 0.0, "NCP minima must be positive, got {phi}");
    }
    // The Figure 1(a) overlay needs both NCP methods present.
    assert!(methods.contains("spectral"), "missing spectral NCP");
    assert!(methods.contains("flow"), "missing flow (Metis+MQI) NCP");
}

#[test]
fn fig1b_schema_and_invariants() {
    let (header, rows) = load_csv("fig1b.csv");
    assert_eq!(header, ["method", "size", "avg_shortest_path"]);
    for row in &rows {
        let size = as_f64("fig1b", row, 1);
        assert!(size >= 1.0 && size.fract() == 0.0);
        let asp = as_f64("fig1b", row, 2);
        // Average shortest path of a cluster of ≥ 2 nodes is ≥ 1 when
        // connected; disconnected clusters report infinity.
        assert!(
            asp >= 1.0 || asp.is_infinite(),
            "avg shortest path {asp} below 1"
        );
    }
}

#[test]
fn fig1c_schema_and_invariants() {
    let (header, rows) = load_csv("fig1c.csv");
    assert_eq!(header, ["method", "size", "ext_int_ratio"]);
    for row in &rows {
        let size = as_f64("fig1c", row, 1);
        assert!(size >= 1.0 && size.fract() == 0.0);
        let ratio = as_f64("fig1c", row, 2);
        assert!(
            ratio >= 0.0 || ratio.is_nan(),
            "ext/int ratio {ratio} negative"
        );
    }
}

#[test]
fn casestudy1_equivalence_schema_and_tolerance() {
    let (header, rows) = load_csv("casestudy1_equivalence.csv");
    assert_eq!(
        header,
        ["graph", "dynamics", "eta", "implied_param", "rel_error"]
    );
    let mut dynamics = std::collections::BTreeSet::new();
    for row in &rows {
        dynamics.insert(row[1].clone());
        let eta = as_f64("casestudy1_equivalence", row, 2);
        assert!(eta > 0.0, "eta must be positive");
        let err = as_f64("casestudy1_equivalence", row, 4);
        // The §3.1 theorem holds to numerical precision.
        assert!(
            (0.0..1e-8).contains(&err),
            "equivalence error {err} too large"
        );
    }
    for d in ["heat_kernel", "pagerank", "lazy_walk"] {
        assert!(dynamics.contains(d), "missing dynamics {d}");
    }
}

#[test]
fn casestudy1_regpath_schema_and_invariants() {
    let (header, rows) = load_csv("casestudy1_regpath.csv");
    assert_eq!(
        header,
        [
            "eta",
            "eff_rank",
            "tr_lx",
            "excess_over_lambda2",
            "walk_steps",
            "seed_dependence_tv"
        ]
    );
    let mut prev_eta = 0.0;
    for row in &rows {
        let eta = as_f64("casestudy1_regpath", row, 0);
        assert!(eta > prev_eta, "etas must increase along the path");
        prev_eta = eta;
        let eff_rank = as_f64("casestudy1_regpath", row, 1);
        assert!(eff_rank >= 1.0, "effective rank {eff_rank} below 1");
        let tv = as_f64("casestudy1_regpath", row, 5);
        assert!((0.0..=1.0).contains(&tv), "total variation {tv}");
    }
}

#[test]
fn casestudy3_locality_schema_and_invariants() {
    let (header, rows) = load_csv("casestudy3_locality.csv");
    assert_eq!(
        header,
        [
            "n",
            "method",
            "touched",
            "work",
            "phi_recovered",
            "phi_planted",
            "jaccard"
        ]
    );
    for row in &rows {
        let n = as_f64("casestudy3_locality", row, 0);
        let touched = as_f64("casestudy3_locality", row, 2);
        assert!(touched >= 1.0 && touched <= n, "touched {touched} vs n {n}");
        for col in [4, 5] {
            let phi = as_f64("casestudy3_locality", row, col);
            assert!((0.0..=1.0).contains(&phi), "conductance {phi}");
        }
        let jaccard = as_f64("casestudy3_locality", row, 6);
        assert!((0.0..=1.0).contains(&jaccard), "jaccard {jaccard}");
    }
}

#[test]
fn ablation_cheeger_schema_and_bound_columns() {
    let (header, rows) = load_csv("ablation_cheeger.csv");
    assert_eq!(
        header,
        [
            "graph",
            "lambda2",
            "lower",
            "phi_exact",
            "phi_sweep",
            "upper",
            "holds"
        ]
    );
    for row in &rows {
        let lower = as_f64("ablation_cheeger", row, 2);
        let phi_sweep = as_f64("ablation_cheeger", row, 4);
        let upper = as_f64("ablation_cheeger", row, 5);
        // The committed table must itself satisfy Cheeger.
        assert!(
            lower <= phi_sweep + 1e-12 && phi_sweep <= upper + 1e-12,
            "Cheeger sandwich violated: {lower} ≤ {phi_sweep} ≤ {upper}"
        );
        assert_eq!(row[6], "true", "holds column must be true");
    }
}

#[test]
fn all_result_csvs_are_rectangular_and_numeric_where_expected() {
    // Every committed CSV parses; every field that looks numeric in row
    // one stays numeric (or inf/nan) in all rows — a cheap guard
    // against half-written artifacts.
    for entry in std::fs::read_dir(results_dir()).expect("results dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("file name")
            .to_string();
        let (header, rows) = load_csv(&name);
        assert!(header.len() >= 2, "{name}: fewer than two columns");
        let numeric: Vec<bool> = (0..header.len())
            .map(|c| rows[0][c].parse::<f64>().is_ok())
            .collect();
        for (i, row) in rows.iter().enumerate() {
            for (c, is_num) in numeric.iter().enumerate() {
                if *is_num {
                    assert!(
                        row[c].parse::<f64>().is_ok() || row[c] == "-" || row[c].starts_with('~'),
                        "{name} row {i} col {c}: `{}` stopped being numeric",
                        row[c]
                    );
                }
            }
        }
    }
}
