//! The sketch-splice contract (DESIGN.md §13): a spliced PPR answer is
//! *equivalent* to a direct `ppr_push` at the same ε — not bit-equal,
//! but interchangeable under the ACL certificate. Concretely, for every
//! random (graph, seeds, α, ε, K) drawn below:
//!
//! * the spliced answer's certified `per_degree_bound` never exceeds
//!   the requested ε, and the answer sits within that bound of a
//!   near-exact reference push, node by node — the ACL invariant
//!   `residual(v) ≤ ε·deg(v)` measured rather than trusted;
//! * spliced and direct answers therefore agree within the *sum* of
//!   their certificates (triangle inequality through the exact vector);
//! * probability mass is conserved: estimate mass + certified residual
//!   mass = 1;
//! * the whole pipeline — parallel hub-sketch build plus splice — is
//!   bit-identical at `ACIR_THREADS` 1 and 4;
//! * `K = 0` (no sketches) degrades to the pure push loop bit-exactly.
//!
//! Deterministic companions pin the degenerate corners: seed-on-a-hub
//! (zero online pushes), empty/mismatched sketch stores (bit-exact
//! pure-push fallback), and a hub the diffusion cannot reach (splice
//! runs, harvests nothing, still certifies).

use acir_graph::gen::random::{barabasi_albert, forest_fire};
use acir_graph::traversal::largest_component;
use acir_graph::{Graph, NodeId};
use acir_local::{build_hub_sketches, ppr_push, ppr_push_spliced, PushResult, SketchSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS_ENV: &str = acir_exec::THREADS_ENV;

#[derive(Debug, Clone)]
struct Case {
    /// Power-law generator: Barabási–Albert or forest fire.
    ba: bool,
    n: usize,
    gen_seed: u64,
    seed_sels: Vec<u32>,
    alpha: f64,
    epsilon: f64,
    hubs: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        30usize..90,
        0u64..1_000_000,
        collection::vec(0u32..1024, 1..4),
        0u8..3,
        0u8..2,
        0usize..13,
    )
        .prop_map(|(n, gen_seed, seed_sels, a, e, hubs)| Case {
            ba: gen_seed % 2 == 0,
            n,
            gen_seed,
            seed_sels,
            alpha: [0.05, 0.1, 0.2][a as usize],
            epsilon: [1e-2, 3e-3][e as usize],
            hubs,
        })
}

fn build_graph(c: &Case) -> Graph {
    let mut rng = StdRng::seed_from_u64(c.gen_seed);
    let g = if c.ba {
        barabasi_albert(&mut rng, c.n, 3).unwrap()
    } else {
        forest_fire(&mut rng, c.n, 0.3).unwrap()
    };
    // Forest fire can leave isolated vertices; push seeds must have
    // outgoing mass somewhere, so test on the giant component.
    largest_component(&g).0
}

fn bits(v: &[(NodeId, f64)]) -> Vec<(NodeId, u64)> {
    v.iter().map(|&(u, x)| (u, x.to_bits())).collect()
}

fn dense(n: usize, v: &[(NodeId, f64)]) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for &(u, x) in v {
        out[u as usize] += x;
    }
    out
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The equivalence matrix over random power-law graphs × seeds ×
    /// α × ε × hub counts, checked at 1 and 4 threads. (All env
    /// flipping lives in this one test: tests in a binary run
    /// concurrently, and a second test racing on the process-global
    /// thread knob would corrupt exactly what is asserted here.)
    #[test]
    fn spliced_answers_are_equivalent_to_direct_push(c in arb_case()) {
        let g = build_graph(&c);
        let n = g.n();
        let seeds: Vec<NodeId> = c.seed_sels.iter().map(|&s| s % n as u32).collect();
        let eps_sketch = c.epsilon / 10.0;
        let eps_ref = c.epsilon / 50.0;

        let run = || {
            let set = build_hub_sketches(&g, c.hubs, c.alpha, eps_sketch).unwrap();
            let spliced = ppr_push_spliced(&g, &seeds, c.alpha, c.epsilon, &set).unwrap();
            (set, spliced)
        };
        let (set, spliced) = with_threads(1, run);
        let (set4, spliced4) = with_threads(4, run);

        // Thread-count invariance: the sketch build (parallel over
        // hubs) and the splice must be bit-identical end to end.
        for (a, b) in set.sketches().iter().zip(set4.sketches()) {
            prop_assert_eq!(a.hub, b.hub);
            prop_assert_eq!(bits(&a.estimate), bits(&b.estimate));
            prop_assert_eq!(bits(&a.residual), bits(&b.residual));
        }
        prop_assert_eq!(bits(&spliced.vector), bits(&spliced4.vector));
        prop_assert_eq!(spliced.per_degree_bound.to_bits(), spliced4.per_degree_bound.to_bits());

        // The certificate never weakens past the requested ε.
        prop_assert!(spliced.per_degree_bound <= c.epsilon * (1.0 + 1e-12));
        // Mass conservation: estimate + certified residual = 1.
        let p_mass: f64 = spliced.vector.iter().map(|&(_, x)| x).sum();
        prop_assert!(
            (p_mass + spliced.residual_mass - 1.0).abs() < 1e-9,
            "mass leak: {} + {} ≠ 1", p_mass, spliced.residual_mass
        );

        // ACL invariant, measured: against a near-exact reference,
        // every node's error is within the certified per-degree bound
        // (plus the reference's own slack).
        let direct = ppr_push(&g, &seeds, c.alpha, c.epsilon).unwrap();
        let reference = ppr_push(&g, &seeds, c.alpha, eps_ref).unwrap();
        let ds = dense(n, &spliced.vector);
        let dd = dense(n, &direct.vector);
        let dr = dense(n, &reference.vector);
        for u in 0..n {
            let deg = g.degree(u as NodeId);
            let slack = (spliced.per_degree_bound + eps_ref) * deg + 1e-12;
            prop_assert!(
                (ds[u] - dr[u]).abs() <= slack,
                "node {}: spliced {} vs reference {} exceeds certified {}",
                u, ds[u], dr[u], slack
            );
            // Direct push honors the same invariant, so spliced and
            // direct agree within the sum of their certificates.
            let both = (spliced.per_degree_bound + c.epsilon) * deg + 1e-12;
            prop_assert!((ds[u] - dd[u]).abs() <= both);
        }

        // K = 0 (and any empty set) is the pure push loop, bit-exactly.
        if c.hubs == 0 {
            prop_assert!(!spliced.used_sketches);
            prop_assert_eq!(bits(&spliced.vector), bits(&direct.vector));
            prop_assert_eq!(spliced.pushes, direct.pushes);
        }
    }
}

/// Querying from a sketched hub needs no online pushes at all: the
/// whole answer is the stored sketch, rescaled.
#[test]
fn seed_on_a_hub_short_circuits() {
    let g = build_graph(&Case {
        ba: true,
        n: 80,
        gen_seed: 7,
        seed_sels: vec![],
        alpha: 0.1,
        epsilon: 1e-2,
        hubs: 0,
    });
    let hub = (0..g.n() as NodeId)
        .max_by(|&a, &b| g.degree(a).total_cmp(&g.degree(b)))
        .unwrap();
    let set = build_hub_sketches(&g, 1, 0.1, 1e-4).unwrap();
    assert!(set.covers(hub), "top-degree node must be the first hub");
    let s = ppr_push_spliced(&g, &[hub], 0.1, 1e-2, &set).unwrap();
    assert!(s.used_sketches);
    assert_eq!(s.pushes, 0, "seed-on-hub must not push");
    assert_eq!(s.hubs_spliced, 1);
    assert!((s.hub_mass - 1.0).abs() < 1e-12);
    assert!(s.per_degree_bound <= 1e-2);
}

/// Empty stores and stores built for the wrong (α, ε) fall back to the
/// pure push loop, bit-identical to `ppr_push` — never a weaker answer.
#[test]
fn useless_stores_fall_back_bit_identically() {
    let g = build_graph(&Case {
        ba: false,
        n: 70,
        gen_seed: 11,
        seed_sels: vec![],
        alpha: 0.1,
        epsilon: 1e-2,
        hubs: 0,
    });
    let direct = ppr_push(&g, &[3], 0.1, 1e-2).unwrap();
    let check = |set: &SketchSet| {
        let s = ppr_push_spliced(&g, &[3], 0.1, 1e-2, set).unwrap();
        assert!(!s.used_sketches);
        let sp: PushResult = s.into();
        assert_eq!(bits(&sp.vector), bits(&direct.vector));
        assert_eq!(sp.pushes, direct.pushes);
        assert_eq!(sp.mass_pushed.to_bits(), direct.mass_pushed.to_bits());
    };
    check(&SketchSet::empty());
    // α mismatch.
    check(&build_hub_sketches(&g, 4, 0.2, 1e-4).unwrap());
    // ε_sketch not finer than the query ε.
    check(&build_hub_sketches(&g, 4, 0.1, 1e-2).unwrap());
}

/// A hub the diffusion cannot reach (disconnected component) gives zero
/// hub coverage at runtime: the splice runs, harvests nothing, and the
/// answer still certifies against the requested ε.
#[test]
fn unreachable_hubs_harvest_nothing_but_still_certify() {
    // Two components: a triangle (seed side) and a star on 5 nodes
    // whose center out-degrees everything on the seed side, so the
    // star center is the unique top-degree hub.
    let mut pairs = vec![(0u32, 1u32), (1, 2), (0, 2)];
    pairs.extend((4..8).map(|v| (3u32, v)));
    let g = Graph::from_pairs(8, pairs).unwrap();
    let set = build_hub_sketches(&g, 1, 0.1, 1e-4).unwrap();
    assert!(set.covers(3));
    let s = ppr_push_spliced(&g, &[0], 0.1, 1e-2, &set).unwrap();
    assert!(s.used_sketches);
    assert_eq!(s.hubs_spliced, 0, "no residual can park on node 3");
    assert_eq!(s.hub_mass, 0.0);
    assert!(s.per_degree_bound <= 1e-2);
    let direct = ppr_push(&g, &[0], 0.1, 1e-2).unwrap();
    let ds = dense(8, &s.vector);
    let dd = dense(8, &direct.vector);
    for u in 0..8 {
        assert!((ds[u] - dd[u]).abs() <= 2e-2 * g.degree(u as NodeId) + 1e-12);
    }
}
