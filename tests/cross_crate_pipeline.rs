//! Cross-crate integration: full pipelines that exercise generator →
//! spectral/local/flow → partition layers together.

use acir::prelude::*;
use acir_graph::gen::community::{planted_partition, social_network, SocialNetworkParams};
use acir_graph::traversal::largest_component;
use acir_local::mov::mov_embedding;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate → spectral partition → MQI polish: the polish never
/// worsens the spectral side, and often improves it.
#[test]
fn spectral_then_mqi_pipeline() {
    let mut rng = StdRng::seed_from_u64(8);
    let pc = planted_partition(&mut rng, 2, 40, 0.3, 0.01).unwrap();
    let (g, _) = largest_component(&pc.graph);
    let spec = spectral_bisect(&g).unwrap();
    // MQI needs the small-volume side.
    let total = g.total_volume();
    let side = if g.volume(&spec.sweep.set) <= total / 2.0 {
        spec.sweep.set.clone()
    } else {
        g.complement(&spec.sweep.set)
    };
    let polished = mqi(&g, &side).unwrap();
    assert!(polished.conductance <= spec.sweep.conductance + 1e-9);
    // The planted bisection is essentially recovered.
    assert!(polished.conductance < 0.1);
}

/// Four different algorithms, one planted answer: exact spectral,
/// truncated spectral, local push sweep, and FlowImprove all find the
/// barbell bottleneck.
#[test]
fn four_methods_agree_on_barbell() {
    let g = gen::deterministic::barbell(12, 0).unwrap();
    let clique_a: Vec<NodeId> = (0..12).collect();
    let phi_opt = conductance(&g, &clique_a).unwrap();

    let exact = spectral_bisect(&g).unwrap();
    assert!((exact.sweep.conductance - phi_opt).abs() < 1e-9);

    let truncated = spectral_bisect_truncated(&g, 2000).unwrap();
    assert!((truncated.sweep.conductance - phi_opt).abs() < 1e-9);

    let push = ppr_push(&g, &[5], 0.05, 1e-7).unwrap();
    let local = sweep_cut_support(&g, &push.to_dense(g.n()));
    assert!((local.conductance - phi_opt).abs() < 1e-9);

    let fi = flow_improve(&g, &clique_a[..10]).unwrap();
    assert!((fi.conductance - phi_opt).abs() < 1e-9);
    assert_eq!(fi.set, clique_a);
}

/// MOV with γ → λ₂ reproduces the global spectral cut; with γ very
/// negative it localizes: both ends of the interpolation are checked
/// against independent implementations.
#[test]
fn mov_interpolates_between_local_and_global() {
    let g = gen::deterministic::barbell(7, 1).unwrap();
    let f = fiedler_vector(&g).unwrap();

    let global_end = mov_vector(&g, &[0], f.lambda2 * 0.95).unwrap();
    assert!(
        acir_linalg::vector::alignment(&global_end.vector, &f.vector) > 0.98,
        "near-λ₂ MOV aligns with the Fiedler vector"
    );

    let local_end = mov_vector(&g, &[0], -100.0).unwrap();
    let emb = mov_embedding(&g, &local_end);
    // Strongly local: the seed's entry dominates.
    let seed_share = emb[0].abs() / emb.iter().map(|x| x.abs()).sum::<f64>();
    assert!(seed_share > 0.3, "seed share {seed_share}");
}

/// The social-network surrogate carries the structural properties the
/// DESIGN.md substitution argument promises, and the NCP machinery
/// runs end to end on it.
#[test]
fn surrogate_network_has_promised_structure() {
    let mut rng = StdRng::seed_from_u64(77);
    let params = SocialNetworkParams {
        core_nodes: 600,
        core_attach: 3,
        communities: 10,
        community_size_range: (6, 100),
        whiskers: 40,
        whisker_max_len: 8,
        ..Default::default()
    };
    let pc = social_network(&mut rng, &params).unwrap();
    let (g, _) = largest_component(&pc.graph);
    let summary = acir_graph::stats::summarize(&g);
    // Heavy tail: max degree far above mean.
    assert!(summary.degree_range.1 > 5.0 * summary.mean_degree);
    // Whiskers present.
    assert!(summary.whisker_nodes > 20);
    // Some clustering (communities).
    assert!(summary.clustering > 0.01);

    // NCP over it finds low-conductance clusters at small scales.
    let opts = NcpOptions {
        min_size: 3,
        max_size: 150,
        seeds: 16,
        alphas: vec![0.1, 0.02],
        epsilons: vec![1e-3, 1e-4],
        threads: 2,
        ..Default::default()
    };
    let ncp = ncp_local_spectral(&g, &opts).unwrap();
    let best = ncp
        .iter()
        .map(|p| p.conductance)
        .fold(f64::INFINITY, f64::min);
    assert!(best < 0.2, "best community conductance {best}");
}

/// Graph IO round trips through the partition pipeline: write, read,
/// and get identical cuts.
#[test]
fn io_roundtrip_preserves_cuts() {
    let g = gen::deterministic::lollipop(8, 5).unwrap();
    let mut buf = Vec::new();
    acir_graph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = acir_graph::io::read_edge_list(buf.as_slice(), 0).unwrap();
    assert_eq!(g, g2);
    let c1 = spectral_bisect(&g).unwrap();
    let c2 = spectral_bisect(&g2).unwrap();
    assert_eq!(c1.sweep.set, c2.sweep.set);
}

/// The regularized SDP layer consumes graphs from every generator
/// family without issue.
#[test]
fn sdp_layer_works_across_generators() {
    let mut rng = StdRng::seed_from_u64(5);
    let graphs = vec![
        gen::deterministic::cycle(9).unwrap(),
        gen::deterministic::grid2d(3, 4).unwrap(),
        gen::deterministic::hypercube(3).unwrap(),
        largest_component(&gen::random::erdos_renyi_gnp(&mut rng, 20, 0.3).unwrap()).0,
        gen::random::random_regular(&mut rng, 16, 3).unwrap(),
    ];
    for g in graphs {
        let sp = SpectralProblem::new(&g).unwrap();
        let sol = solve_regularized_sdp(&sp, Regularizer::Entropy, 1.0).unwrap();
        assert!((sol.x.trace() - 1.0).abs() < 1e-9);
        let r = check_heat_kernel(&sp, 1.0).unwrap();
        assert!(r.relative_error < 1e-9, "{}", r.relative_error);
    }
}
