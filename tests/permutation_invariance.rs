//! Graph reordering must be invisible to the mathematics: conductance,
//! spectral quantities, and locally-biased cluster discovery computed
//! on a permuted graph, mapped back through the inverse permutation,
//! must agree with the direct computation. (DESIGN.md §9: reordering is
//! a memory-layout optimization, never a semantic one.)
//!
//! Tolerances are chosen per quantity: cut/volume sums over unweighted
//! graphs are exact integer arithmetic in `f64`, so conductances must
//! match to the last bit; eigensolves iterate in a different order
//! after relabeling, so the Fiedler value gets a 1e-9 band; ACL push is
//! order-dependent at the `ε` truncation level, so PPR runs are
//! compared by their sweep-cut *sets* (robust under `ε`-perturbation on
//! clustered graphs), not vector bits.

use acir::prelude::*;
use acir_graph::gen::random::barabasi_albert;
use acir_graph::io::read_metis;
use acir_linalg::LinOp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two triangles joined by a bridge, as an inline METIS document
/// (1-based neighbor lists): communities {0,1,2} and {3,4,5}.
const METIS_TRIANGLES: &str = "\
% two triangles bridged 3-4
6 7
2 3
1 3
1 2 4
3 5 6
4 6
4 5
";

fn metis_fixture() -> Graph {
    read_metis(METIS_TRIANGLES.as_bytes()).unwrap()
}

fn orderings(g: &Graph) -> Vec<Permutation> {
    let n = g.n() as u32;
    // A rotation exercises the fully-general case alongside the two
    // locality orderings the binaries expose.
    let rotation =
        Permutation::from_new_of_old((0..n).map(|i| (i + n / 2 + 1) % n).collect()).unwrap();
    vec![
        Permutation::rcm(g),
        Permutation::degree_descending(g),
        rotation,
    ]
}

#[test]
fn conductance_is_bit_identical_under_relabeling() {
    let graphs = vec![
        metis_fixture(),
        gen::deterministic::ring_of_cliques(5, 6).unwrap(),
        barabasi_albert(&mut StdRng::seed_from_u64(11), 200, 3).unwrap(),
    ];
    for g in &graphs {
        let sets: Vec<Vec<NodeId>> = vec![
            (0..g.n() as NodeId / 2).collect(),
            vec![0, 1, 2],
            (0..g.n() as NodeId).step_by(3).collect(),
        ];
        for perm in orderings(g) {
            let gp = g.permute(&perm).unwrap();
            for set in &sets {
                let direct = conductance(g, set).unwrap();
                let mapped = conductance(&gp, &perm.map_nodes(set)).unwrap();
                assert_eq!(
                    direct.to_bits(),
                    mapped.to_bits(),
                    "conductance changed under relabeling: {direct} vs {mapped}"
                );
            }
        }
    }
}

#[test]
fn fiedler_value_is_invariant_under_relabeling() {
    let graphs = vec![
        metis_fixture(),
        gen::deterministic::ring_of_cliques(4, 7).unwrap(),
    ];
    for g in &graphs {
        let direct = fiedler_vector(g).unwrap();
        for perm in orderings(g) {
            let gp = g.permute(&perm).unwrap();
            let relabeled = fiedler_vector(&gp).unwrap();
            assert!(
                (direct.lambda2 - relabeled.lambda2).abs() <= 1e-9,
                "lambda2 moved under relabeling: {} vs {}",
                direct.lambda2,
                relabeled.lambda2
            );
            // λ2 can be degenerate (ring_of_cliques has rotational
            // symmetry), so the relabeled solve may return any vector
            // in the eigenspace — don't compare coordinates. The
            // permutation-invariant statement: the mapped-back vector
            // is still a λ2-eigenvector of the *original* Laplacian,
            // i.e. its Rayleigh quotient there matches.
            let back = perm.unmap_values(&relabeled.vector);
            let l = normalized_laplacian(g);
            let lx = l.apply_vec(&back);
            let num: f64 = back.iter().zip(&lx).map(|(a, b)| a * b).sum();
            let den: f64 = back.iter().map(|a| a * a).sum();
            let rayleigh = num / den;
            assert!(
                (rayleigh - direct.lambda2).abs() <= 1e-8,
                "mapped-back vector left the λ2 eigenspace: rayleigh {} vs λ2 {}",
                rayleigh,
                direct.lambda2
            );
        }
    }
}

#[test]
fn ppr_sweep_cut_sets_map_back_exactly() {
    let graphs = vec![
        metis_fixture(),
        gen::deterministic::barbell(8, 0).unwrap(),
        gen::deterministic::ring_of_cliques(6, 8).unwrap(),
    ];
    for g in &graphs {
        for perm in orderings(g) {
            let gp = g.permute(&perm).unwrap();
            for seed in [0 as NodeId, (g.n() / 2) as NodeId] {
                let direct = ppr_push(g, &[seed], 0.05, 1e-6).unwrap();
                let ds = sweep_cut_sparse(g, &direct.vector);
                let relabeled = ppr_push(&gp, &[perm.to_new(seed)], 0.05, 1e-6).unwrap();
                let rs = sweep_cut_sparse(&gp, &relabeled.vector).map_back(&perm);
                assert_eq!(
                    ds.set, rs.set,
                    "sweep-cut set changed under relabeling (seed {seed})"
                );
                assert_eq!(
                    ds.conductance.to_bits(),
                    rs.conductance.to_bits(),
                    "sweep-cut conductance changed under relabeling"
                );
            }
        }
    }
}

#[test]
fn local_clustering_minima_are_invariant_under_relabeling() {
    // A hand-rolled slice of the NCP inner loop: fixed seeds, the NCP
    // alpha/epsilon grid, best conductance per (seed, alpha). Running
    // the full `ncp_local_spectral` on a permuted graph would draw
    // *different* physical seeds (seed sampling is by node id), so the
    // invariance statement lives at the per-seed level.
    let g = gen::deterministic::ring_of_cliques(6, 8).unwrap();
    let seeds: Vec<NodeId> = (0..6).map(|i| i * 8).collect();
    for perm in orderings(&g) {
        let gp = g.permute(&perm).unwrap();
        for &seed in &seeds {
            for alpha in [0.1, 0.01] {
                let direct = ppr_push(&g, &[seed], alpha, 1e-4).unwrap();
                let ds = sweep_cut_sparse(&g, &direct.vector);
                let relabeled = ppr_push(&gp, &[perm.to_new(seed)], alpha, 1e-4).unwrap();
                let rs = sweep_cut_sparse(&gp, &relabeled.vector).map_back(&perm);
                assert_eq!(ds.set, rs.set, "seed {seed} alpha {alpha}");
                assert_eq!(ds.conductance.to_bits(), rs.conductance.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_permute_then_inverse_is_identity(
        n in 2usize..40,
        raw_edges in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
        k in 0usize..40,
    ) {
        let mut pairs: Vec<(NodeId, NodeId)> = raw_edges
            .into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let g = Graph::from_pairs(n, pairs).unwrap();

        let rotation = Permutation::from_new_of_old(
            (0..n as u32).map(|i| (i + k as u32) % n as u32).collect(),
        ).unwrap();
        for perm in [rotation, Permutation::rcm(&g), Permutation::degree_descending(&g)] {
            let round_trip = g.permute(&perm).unwrap().permute(&perm.inverse()).unwrap();
            prop_assert_eq!(&round_trip, &g);
        }
    }

    #[test]
    fn prop_bandwidth_is_what_the_permuted_graph_measures(
        n in 2usize..30,
        raw_edges in proptest::collection::vec((0u32..30, 0u32..30), 1..50),
    ) {
        let mut pairs: Vec<(NodeId, NodeId)> = raw_edges
            .into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let g = Graph::from_pairs(n, pairs).unwrap();
        let perm = Permutation::rcm(&g);
        let gp = g.permute(&perm).unwrap();
        // Recomputing bandwidth on the materialized permuted graph must
        // agree with measuring it through the permutation.
        let direct = bandwidth_stats(&gp);
        let mut max = 0usize;
        let mut total = 0usize;
        let mut arcs = 0usize;
        for (u, v, _) in g.edges() {
            let (nu, nv) = (perm.to_new(u), perm.to_new(v));
            let d = (nu).abs_diff(nv) as usize;
            max = max.max(d);
            total += 2 * d; // both arc directions
            arcs += 2;
        }
        prop_assert_eq!(direct.max, max);
        if arcs > 0 {
            prop_assert!((direct.mean - total as f64 / arcs as f64).abs() < 1e-12);
        }
    }
}
