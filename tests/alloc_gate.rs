//! Steady-state allocation gate for the strongly local kernels.
//!
//! The paper's locality argument (work ∝ cluster volume, not graph
//! size) dies in practice if every call re-allocates length-`n`
//! scratch. This binary installs the counting allocator and pins the
//! contract: after warm-up, `ppr_push_ws` with caller-held scratch and
//! output performs **zero** heap operations per call, and the pooled
//! public entry points stay within a small constant (the output
//! buffers they hand back).
//!
//! The counters are process-global, so every measurement lives in ONE
//! `#[test]` — a concurrent test's allocations would otherwise bleed
//! into the deltas. CI additionally runs this binary with
//! `--test-threads=1`.

use acir::prelude::*;

#[global_allocator]
static ALLOC: acir_mem::CountingAlloc = acir_mem::CountingAlloc;

#[test]
fn steady_state_allocation_budgets() {
    assert!(acir_mem::is_installed());

    // The libtest harness's main thread blocks in `mpsc::recv` while
    // this test runs, and its *first* park lazily allocates a
    // thread-local waker context (two one-time allocations). Whether
    // that init lands inside a measurement window below is a pure
    // scheduling race against this thread. Sleeping here guarantees
    // the main thread completes its first park — and with it the
    // once-per-thread init — before any window opens; it can never
    // allocate from that path again.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let g = gen::deterministic::ring_of_cliques(12, 10).unwrap();
    let seeds = [5 as NodeId];
    let (alpha, eps) = (0.05, 1e-5);
    const CALLS: u64 = 16;

    // --- ppr_push_ws: exactly zero heap events once warm. ---
    let mut ws = PushWorkspace::default();
    let mut out = PushResult::empty();
    for _ in 0..3 {
        ppr_push_ws(&g, &seeds, alpha, eps, &mut ws, &mut out).unwrap();
    }
    let before = acir_mem::snapshot();
    for _ in 0..CALLS {
        ppr_push_ws(&g, &seeds, alpha, eps, &mut ws, &mut out).unwrap();
    }
    let delta = acir_mem::snapshot().since(&before);
    assert_eq!(
        delta.heap_events(),
        0,
        "ppr_push_ws allocated in steady state: {delta:?}"
    );
    assert!(!out.vector.is_empty(), "kernel did real work");

    // --- pooled ppr_push: only the returned PushResult may allocate.
    // Measured at 7 events/call; the gate leaves headroom without
    // letting a per-node regression (O(n) events) through. ---
    for _ in 0..3 {
        ppr_push(&g, &seeds, alpha, eps).unwrap();
    }
    let before = acir_mem::snapshot();
    for _ in 0..CALLS {
        std::hint::black_box(ppr_push(&g, &seeds, alpha, eps).unwrap());
    }
    let delta = acir_mem::snapshot().since(&before);
    assert!(
        delta.heap_events() <= 16 * CALLS,
        "pooled ppr_push regressed to {} heap events over {CALLS} calls: {delta:?}",
        delta.heap_events()
    );

    // --- sparse sweep through its pooled membership set: output
    // (set/profile/order) allocates, scratch must not grow per call. ---
    let probe = ppr_push(&g, &seeds, alpha, eps).unwrap();
    for _ in 0..3 {
        sweep_cut_sparse(&g, &probe.vector);
    }
    let support = probe.vector.len() as u64;
    let before = acir_mem::snapshot();
    for _ in 0..CALLS {
        std::hint::black_box(sweep_cut_sparse(&g, &probe.vector));
    }
    let delta = acir_mem::snapshot().since(&before);
    assert!(
        delta.heap_events() <= (16 + support) * CALLS,
        "sweep_cut_sparse heap events {} exceed output-proportional budget: {delta:?}",
        delta.heap_events()
    );

    // --- matvec_multi_ws: with a caller-held workspace and reused
    // output batch, the sequential SpMM path (nnz·k below the parallel
    // threshold) performs exactly zero heap operations once warm —
    // the fix for the per-call Vec<Vec<f64>> the old matvec_multi
    // allocated every sweep. ---
    let m = acir_spectral::random_walk_matrix(&g);
    let xs: Vec<Vec<f64>> = (0..4)
        .map(|j| (0..g.n()).map(|i| ((i + j) as f64).sin()).collect())
        .collect();
    let mut mws = Workspace::default();
    let mut outs: Vec<Vec<f64>> = Vec::new();
    for _ in 0..3 {
        m.matvec_multi_ws(&xs, &mut mws, &mut outs);
    }
    let before = acir_mem::snapshot();
    for _ in 0..CALLS {
        m.matvec_multi_ws(&xs, &mut mws, &mut outs);
        std::hint::black_box(&outs);
    }
    let delta = acir_mem::snapshot().since(&before);
    assert_eq!(
        delta.heap_events(),
        0,
        "matvec_multi_ws allocated in steady state: {delta:?}"
    );
    assert!(outs.iter().all(|o| o.len() == g.n()), "SpMM did real work");
}
