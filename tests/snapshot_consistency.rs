//! Snapshot-consistency tier (DESIGN.md §15).
//!
//! The serving contract under concurrent mutation: every admitted
//! request pins the head [`GraphSnapshot`] at admission and runs
//! against it end to end, so a writer publishing a delta — or a
//! relabeling compaction — between any two stages of the request never
//! changes what it computes. The tests force publications at every
//! [`PublishPoint`] via [`Engine::stage_write`] (the deterministic
//! writer-interleaving hook) and assert *bit-identity* against a
//! serial replay of the same query on an engine whose graph never
//! moved.
//!
//! The second contract: a relabeling compaction carries derived state
//! *through* the permutation instead of rebuilding it — hub sketches
//! with zero fresh pushes, cached answers with fresh *measured*
//! residual-mass certificates — and externally-labeled responses are
//! unchanged bit for bit across the relabeling.
//!
//! CI runs this suite at `ACIR_THREADS` 1 and 4; the proptest
//! interleaving also flips the override in-process, so pinned reads
//! are checked against serial replay under both pool shapes either
//! way.

use acir::exec::THREADS_ENV;
use acir::serve::{
    Admission, Engine, EngineConfig, PublishPoint, Query, QueryOptions, Response, ResponseKind,
    WriteOp,
};
use acir_graph::gen::deterministic::{barbell, ring_of_cliques};
use acir_graph::snapshot::{CompactionOrder, GraphSnapshot};
use acir_graph::{EdgeOp, NodeId};
use acir_local::{ppr_push, sweep_cut_sparse};
use acir_runtime::Certificate;
use proptest::prelude::*;
use std::sync::Arc;

const ALPHA: f64 = 0.1;
const EPS: f64 = 1e-2;

fn query(seeds: &[NodeId]) -> Query {
    Query {
        seeds: seeds.to_vec(),
        alpha: ALPHA,
        epsilon: EPS,
        deadline: None,
        options: QueryOptions::default(),
    }
}

fn submit(e: &mut Engine, q: Query) -> u64 {
    match e.submit(q) {
        Admission::Accepted { id, .. } => id,
        Admission::Rejected(r) => panic!("query rejected: {:?}", r.reason),
    }
}

/// The serial-replay oracle: what the request's pinned snapshot says
/// the answer is, computed directly (seeds translated into the
/// snapshot's labeling, the result mapped back to external ids).
fn oracle(snap: &GraphSnapshot, seeds: &[NodeId]) -> Vec<(NodeId, f64)> {
    let internal: Vec<NodeId> = if snap.is_relabeled() {
        seeds.iter().map(|&s| snap.lineage().to_new(s)).collect()
    } else {
        seeds.to_vec()
    };
    let r = ppr_push(snap.graph(), &internal, ALPHA, EPS).expect("oracle push failed");
    if snap.is_relabeled() {
        snap.lineage().unmap_sparse(&r.vector)
    } else {
        r.vector
    }
}

/// A delta published between admission and batch execution leaves the
/// in-flight answer bit-identical to a serial run on an engine whose
/// graph never moved — and the writer really did fire mid-flight.
#[test]
fn pinned_query_across_delta_publish_matches_serial_replay() {
    let g = ring_of_cliques(4, 6).unwrap();
    let mut serial = Engine::new(g.clone(), EngineConfig::default());
    for point in [
        PublishPoint::BeforeCacheCheck,
        PublishPoint::BeforeBatch,
        PublishPoint::BeforeSupervise,
        PublishPoint::AfterRespond,
    ] {
        let mut e = Engine::new(g.clone(), EngineConfig::default());
        let id = submit(&mut e, query(&[0]));
        e.stage_write(
            point,
            id,
            WriteOp::Delta(vec![EdgeOp::Insert {
                u: 0,
                v: 12,
                weight: 2.0,
            }]),
        );
        let r = e.run_pending().remove(0);
        assert_eq!(e.staged_writes(), 0, "{point:?}: staged write never fired");
        assert_eq!(e.epoch(), 1, "{point:?}: delta did not publish");
        assert_eq!(r.kind, ResponseKind::Full);

        let sid = submit(&mut serial, query(&[0]));
        let want = serial.run_pending().remove(0);
        assert_eq!(want.id, sid);
        assert_eq!(
            r.cluster, want.cluster,
            "{point:?}: pinned answer diverged from serial replay"
        );
        assert_eq!(r.certificate, want.certificate);
        assert_eq!(r.epsilon_used, want.epsilon_used);
    }
}

/// Same contract with a relabeling compaction as the writer: the
/// pinned request computes on pre-compaction labels and answers in
/// external ids, bit-identical to the never-moved engine.
#[test]
fn pinned_query_across_relabeling_compaction_matches_serial_replay() {
    let g = barbell(10, 3).unwrap();
    let cfg = EngineConfig {
        sketch_hubs: 4,
        ..EngineConfig::default()
    };
    let mut serial = Engine::new(g.clone(), cfg.clone());
    let sid = submit(&mut serial, query(&[0]));
    let want = serial.run_pending().remove(0);
    assert_eq!(want.id, sid);

    for order in [CompactionOrder::Rcm, CompactionOrder::DegreeDescending] {
        let mut e = Engine::new(g.clone(), cfg.clone());
        let id = submit(&mut e, query(&[0]));
        e.stage_write(PublishPoint::BeforeBatch, id, WriteOp::Compact(order));
        let r = e.run_pending().remove(0);
        assert_eq!(e.epoch(), 1, "{order:?}: compaction did not publish");
        assert!(e.snapshot().is_relabeled(), "{order:?}: no relabeling");
        assert_eq!(r.kind, want.kind, "{order:?}");
        assert_eq!(
            r.cluster, want.cluster,
            "{order:?}: pinned answer diverged from serial replay"
        );
        assert_eq!(r.certificate, want.certificate);
    }
}

/// A relabeling compaction repairs derived state through the
/// permutation: every sketch carried (zero rebuilt), every cached
/// answer re-keyed with a fresh *measured* certificate, and an exact
/// repeat of the pre-compaction query is a Cached hit whose external
/// cluster is bit-identical to the original answer.
#[test]
fn compaction_carries_sketches_and_answers_through_the_permutation() {
    let g = barbell(10, 3).unwrap();
    let mut e = Engine::new(
        g,
        EngineConfig {
            sketch_hubs: 4,
            // Sketches at α = 0.1; query at α = 0.2 caches a raw-push
            // answer whose stored residuals survive a relabel repair.
            sketch_alpha: 0.1,
            ..EngineConfig::default()
        },
    );
    let q = Query {
        alpha: 0.2,
        ..query(&[0])
    };
    submit(&mut e, q.clone());
    let before = e.run_pending().remove(0);
    assert_eq!(before.kind, ResponseKind::Full);

    let summary = e.compact(CompactionOrder::Rcm).expect("compaction failed");
    assert_eq!(summary.epoch, 1);
    assert!(summary.relabeled);
    assert_eq!(summary.sketches_relabeled, 4, "a sketch was rebuilt");
    assert_eq!(summary.answers_relabeled, 1, "the cached answer was lost");
    assert_eq!(summary.answers_dropped, 0);

    submit(&mut e, q);
    let after = e.run_pending().remove(0);
    assert_eq!(after.kind, ResponseKind::Cached);
    assert_eq!(
        after.cluster, before.cluster,
        "relabeled cache entry changed the externally-labeled answer"
    );
    // The re-issued certificate is measured from the mapped residuals,
    // not copied: a real bound, strictly inside the requested ε.
    match after.certificate {
        Certificate::ResidualMass {
            remaining,
            per_degree_bound,
        } => {
            assert!(remaining > 0.0 && remaining.is_finite());
            assert!(
                per_degree_bound > 0.0 && per_degree_bound <= EPS,
                "bound {per_degree_bound:e} not a fresh measurement under ε {EPS:e}"
            );
        }
        other => panic!("unexpected certificate {other:?}"),
    }
}

/// An order-preserving compaction is the degenerate case: the epoch
/// advances, nothing is relabeled, and the cache still hits bitwise.
#[test]
fn preserve_order_compaction_keeps_identity_lineage() {
    let g = ring_of_cliques(4, 6).unwrap();
    let mut e = Engine::new(g, EngineConfig::default());
    submit(&mut e, query(&[3]));
    let before = e.run_pending().remove(0);
    let summary = e
        .compact(CompactionOrder::Preserve)
        .expect("compaction failed");
    assert_eq!(summary.epoch, 1);
    assert!(!summary.relabeled);
    assert!(!e.snapshot().is_relabeled());
    submit(&mut e, query(&[3]));
    let after = e.run_pending().remove(0);
    assert_eq!(after.kind, ResponseKind::Cached);
    assert_eq!(after.cluster, before.cluster);
}

/// The opt-in sweep stage: a fresh compute and a cache hit both attach
/// the best-conductance prefix cut over the PPR support, identical to
/// sweeping the response vector directly while the lineage is the
/// identity — and still present (same conductance to float-sum
/// tolerance) after a relabeling compaction maps it back.
#[test]
fn sweep_option_attaches_a_cut_and_survives_relabeling() {
    let g = ring_of_cliques(4, 6).unwrap();
    let mut e = Engine::new(g.clone(), EngineConfig::default());
    let q = Query {
        options: QueryOptions { sweep: true },
        ..query(&[0])
    };
    submit(&mut e, q.clone());
    let r = e.run_pending().remove(0);
    assert_eq!(r.kind, ResponseKind::Full);
    let cut = r.sweep.expect("sweep requested but absent");
    let direct = sweep_cut_sparse(&g, &r.cluster);
    assert_eq!(cut.set, direct.set);
    assert_eq!(cut.conductance.to_bits(), direct.conductance.to_bits());

    // Off by default.
    submit(&mut e, query(&[1]));
    assert!(e.run_pending().remove(0).sweep.is_none());

    // Cache hit after a relabeling compaction: sweep recomputed on the
    // relabeled snapshot, mapped back to external ids.
    e.compact(CompactionOrder::Rcm).expect("compaction failed");
    submit(&mut e, q);
    let hit = e.run_pending().remove(0);
    assert_eq!(hit.kind, ResponseKind::Cached);
    let mapped = hit.sweep.expect("sweep absent on cache hit");
    assert!((mapped.conductance - cut.conductance).abs() < 1e-9);
    assert!(mapped.set.iter().all(|&u| (u as usize) < g.n()));
}

// ---------------------------------------------------------------- proptest

/// One step of a property-tested schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Submit a query from this seed.
    Query(u32),
    /// Stage a delta insert against the most recent admission, at the
    /// publish point selected by the second field.
    StageDelta(u32, u8),
    /// Stage a compaction (order selected by the field) likewise.
    StageCompact(u8),
    /// Run the service cycle and check every response.
    Run,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    ((0u8..9), (0u32..24), (0u8..4)).prop_map(|(sel, v, p)| match sel {
        0..=3 => Step::Query(v),
        4 | 5 => Step::StageDelta(v, p),
        6 => Step::StageCompact(p),
        _ => Step::Run,
    })
}

fn point(sel: u8) -> PublishPoint {
    match sel % 4 {
        0 => PublishPoint::BeforeCacheCheck,
        1 => PublishPoint::BeforeBatch,
        2 => PublishPoint::BeforeSupervise,
        _ => PublishPoint::AfterRespond,
    }
}

fn order(sel: u8) -> CompactionOrder {
    match sel % 3 {
        0 => CompactionOrder::Preserve,
        1 => CompactionOrder::Rcm,
        _ => CompactionOrder::DegreeDescending,
    }
}

/// Drive one schedule and return `(admitted, answered)` ids, checking
/// every Full/Cached response bitwise against the serial-replay oracle
/// on its pinned snapshot.
fn drive(schedule: &[Step]) -> (Vec<u64>, Vec<Response>) {
    let g = ring_of_cliques(4, 6).unwrap();
    let mut e = Engine::new(g, EngineConfig::default());
    // Pinned snapshot and seeds per in-flight admission.
    let mut inflight: Vec<(u64, Arc<GraphSnapshot>, Vec<NodeId>)> = Vec::new();
    let mut admitted = Vec::new();
    let mut responses = Vec::new();
    let mut last_id = None;
    let check = |rs: Vec<Response>,
                 inflight: &mut Vec<(u64, Arc<GraphSnapshot>, Vec<NodeId>)>,
                 responses: &mut Vec<Response>| {
        for r in rs {
            let slot = inflight
                .iter()
                .position(|(id, _, _)| *id == r.id)
                .expect("response for an unknown admission");
            let (_, snap, seeds) = inflight.remove(slot);
            assert!(
                matches!(r.kind, ResponseKind::Full | ResponseKind::Cached),
                "request {} degraded unexpectedly: {:?}",
                r.id,
                r.kind
            );
            let want = oracle(&snap, &seeds);
            assert_eq!(
                r.cluster, want,
                "request {}: pinned read diverged from serial replay (a torn \
                 or half-applied publication was observed)",
                r.id
            );
            responses.push(r);
        }
    };
    for step in schedule {
        match step {
            Step::Query(seed) => {
                let seeds = vec![*seed as NodeId];
                let snap = e.snapshot();
                let id = submit(&mut e, query(&seeds));
                admitted.push(id);
                last_id = Some(id);
                inflight.push((id, snap, seeds));
            }
            Step::StageDelta(v, p) => {
                let op = EdgeOp::Insert {
                    u: 0,
                    v: *v as NodeId,
                    weight: 1.5,
                };
                match last_id {
                    // Writers with no request to interleave against
                    // publish immediately.
                    None => {
                        e.update_graph_delta(&[op]).expect("delta failed");
                    }
                    Some(id) => e.stage_write(point(*p), id, WriteOp::Delta(vec![op])),
                }
            }
            Step::StageCompact(sel) => match last_id {
                None => {
                    e.compact(order(*sel)).expect("compaction failed");
                }
                Some(id) => e.stage_write(point(*sel), id, WriteOp::Compact(order(*sel))),
            },
            Step::Run => {
                let rs = e.run_pending();
                check(rs, &mut inflight, &mut responses);
            }
        }
    }
    loop {
        let rs = e.run_pending();
        if rs.is_empty() && e.staged_writes() == 0 {
            break;
        }
        check(rs, &mut inflight, &mut responses);
        if e.staged_writes() > 0 && admitted.len() == responses.len() {
            // Staged writes keyed to an already-answered request can
            // never fire; that is fine — they model a writer whose
            // interleaving point never arrived.
            break;
        }
    }
    assert!(inflight.is_empty(), "admitted requests left unanswered");
    (admitted, responses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of {query, delta publish, compaction}
    /// forced between arbitrary request stages: every admitted request
    /// is answered exactly once, bit-identically to a serial replay
    /// against its admission snapshot — at both worker-pool shapes.
    #[test]
    fn interleaved_writers_never_tear_a_pinned_read(
        schedule in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let (admitted, responses) = drive(&schedule);
        prop_assert_eq!(admitted.len(), responses.len());

        // The same schedule is bit-identical across thread counts.
        std::env::set_var(THREADS_ENV, "1");
        let (_, r1) = drive(&schedule);
        std::env::set_var(THREADS_ENV, "4");
        let (_, r4) = drive(&schedule);
        std::env::remove_var(THREADS_ENV);
        prop_assert_eq!(r1.len(), r4.len());
        for (a, b) in r1.iter().zip(&r4) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.cluster, &b.cluster);
        }
    }
}
